"""Benchmark regenerating Figure 7 (asynchronous remote-read bandwidth, mesh NOC)."""

from bench_params import BANDWIDTH_SIZES, BENCH_MEASURE_CYCLES, BENCH_WARMUP_CYCLES, run_spec


def test_bench_fig7(benchmark):
    result = benchmark.pedantic(
        run_spec,
        args=("fig7",),
        kwargs={
            "sizes": BANDWIDTH_SIZES,
            "warmup_cycles": BENCH_WARMUP_CYCLES,
            "measure_cycles": BENCH_MEASURE_CYCLES,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())
    edge = result.column("NIedge (GBps)")
    split = result.column("NIsplit (GBps)")
    per_tile = result.column("NIper-tile (GBps)")
    # Paper shape: NIedge suffers at the smallest transfers (QP ping-pong),
    # NIsplit matches or beats it everywhere, and NIper-tile falls behind the
    # edge-backend designs for bulk transfers.
    assert edge[0] < 0.7 * split[0]
    assert split[-1] >= 0.9 * edge[-1]
    assert per_tile[-1] < split[-1]
    # All designs move hundreds of GBps at the bulk end (NOC-limited regime).
    assert split[-1] > 100.0
