"""Benchmark regenerating Figure 10 (asynchronous bandwidth on NOC-Out)."""

from bench_params import BANDWIDTH_SIZES, BENCH_MEASURE_CYCLES, BENCH_WARMUP_CYCLES, run_spec


def test_bench_fig10(benchmark):
    result = benchmark.pedantic(
        run_spec,
        args=("fig10",),
        kwargs={
            "sizes": BANDWIDTH_SIZES,
            "warmup_cycles": BENCH_WARMUP_CYCLES,
            "measure_cycles": BENCH_MEASURE_CYCLES,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())
    edge = result.column("NIedge (GBps)")
    split = result.column("NIsplit (GBps)")
    assert all(value > 0 for value in edge + split)
    # The contended 8-bank LLC row is the NOC-Out bottleneck.
    assert max(result.column("LLC bank utilization, NIsplit")) > 0.8


def test_bench_fig10_peak_below_mesh(benchmark):
    """Paper: NOC-Out's peak bandwidth is significantly below the mesh's (§6.3.1)."""

    def run_both():
        nocout = run_spec("fig10", sizes=(512,), warmup_cycles=BENCH_WARMUP_CYCLES,
                          measure_cycles=BENCH_MEASURE_CYCLES)
        mesh = run_spec("fig7", sizes=(512,), warmup_cycles=BENCH_WARMUP_CYCLES,
                        measure_cycles=BENCH_MEASURE_CYCLES)
        return nocout, mesh

    nocout, mesh = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert nocout.column("NIsplit (GBps)")[0] < 0.8 * mesh.column("NIsplit (GBps)")[0]
