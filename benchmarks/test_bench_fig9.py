"""Benchmark regenerating Figure 9 (synchronous latency on NOC-Out)."""

from bench_params import LATENCY_ITERATIONS, LATENCY_SIZES, LATENCY_WARMUP, run_spec


def test_bench_fig9(benchmark):
    result = benchmark.pedantic(
        run_spec,
        args=("fig9",),
        kwargs={
            "sizes": LATENCY_SIZES,
            "iterations": LATENCY_ITERATIONS,
            "warmup": LATENCY_WARMUP,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())
    edge = result.column("NIedge (ns)")
    split = result.column("NIsplit (ns)")
    per_tile = result.column("NIper-tile (ns)")
    # Paper shape: QP interactions still penalize NIedge on a latency-optimized
    # NOC, and NIper-tile remains the slowest for the largest transfers.
    assert edge[0] > 1.1 * split[0]
    assert per_tile[-1] > split[-1]


def test_bench_fig9_vs_mesh_small_transfers(benchmark):
    """NOC-Out lowers small-transfer latency relative to the mesh (§6.3.1)."""

    def run_both():
        nocout = run_spec("fig9", sizes=(64,), iterations=LATENCY_ITERATIONS,
                          warmup=LATENCY_WARMUP)
        mesh = run_spec("fig6", sizes=(64,), iterations=LATENCY_ITERATIONS,
                        warmup=LATENCY_WARMUP)
        return nocout, mesh

    nocout, mesh = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert nocout.column("NIsplit (ns)")[0] < mesh.column("NIsplit (ns)")[0]
    assert nocout.column("NIedge (ns)")[0] < mesh.column("NIedge (ns)")[0]
