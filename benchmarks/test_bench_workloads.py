"""Benchmarks for the application-level workloads (key-value store, graph traversal).

These are not paper figures; they exercise the public API end to end on the
two application classes the paper's introduction motivates and track their
throughput over time.
"""

from repro.config import NIDesign, SystemConfig
from repro.workloads.graphproc import GraphTraversalWorkload, SyntheticPowerLawGraph
from repro.workloads.kvstore import KeyValueStoreWorkload


def test_bench_kvstore_gets(benchmark):
    workload = KeyValueStoreWorkload(
        SystemConfig.paper_defaults().with_design(NIDesign.SPLIT),
        value_bytes=512,
        active_cores=8,
        gets_per_core=12,
        rack_nodes=64,
    )
    result = benchmark.pedantic(workload.run, rounds=1, iterations=1)
    assert result.remote_gets > 0
    assert result.throughput_mops > 0
    assert result.mean_latency_ns > 0


def test_bench_graph_traversal(benchmark):
    graph = SyntheticPowerLawGraph(vertices=2048, edges_per_vertex=8, seed=2)
    workload = GraphTraversalWorkload(
        SystemConfig.paper_defaults().with_design(NIDesign.SPLIT),
        graph=graph,
        rack_nodes=64,
        active_cores=4,
        max_vertices=80,
    )
    result = benchmark.pedantic(workload.run, rounds=1, iterations=1)
    assert result.remote_vertex_fetches > 0
    assert result.edges_per_microsecond > 0
