"""Benchmarks regenerating Tables 1, 2 and 3 (analytical, sub-second)."""

from bench_params import run_spec

from repro.config import NIDesign


def test_bench_table1(benchmark):
    """Table 1: QP-based model vs load/store NUMA, single-block remote read."""
    result = benchmark.pedantic(run_spec, args=("table1",), rounds=1, iterations=1)
    totals = [row for row in result.rows if str(row[0]).startswith("Total")]
    assert totals and totals[0][1] == 710 and totals[0][3] == 395


def test_bench_table2(benchmark):
    """Table 2: modelled system parameters."""
    result = benchmark.pedantic(run_spec, args=("table2",), rounds=1, iterations=1)
    assert any("MESI" in str(row[1]) for row in result.rows)


def test_bench_table3(benchmark):
    """Table 3: zero-load latency breakdown per NI design."""
    result = benchmark.pedantic(run_spec, args=("table3",), rounds=1, iterations=1)
    analytical = dict(zip(result.column("Design"), result.column("Analytical cycles")))
    assert analytical == {"edge": 710, "per_tile": 445, "split": 447, "numa": 395}


def test_bench_table3_simulated_cross_check(benchmark):
    """Table 3 cross-checked against the discrete-event simulator."""
    result = benchmark.pedantic(
        run_spec, args=("table3",), kwargs={"simulate": True, "iterations": 3},
        rounds=1, iterations=1,
    )
    simulated = dict(zip(result.column("Design"), result.column("Simulated cycles")))
    paper = dict(zip(result.column("Design"), result.column("Paper cycles")))
    # The simulated end-to-end latency must stay within 20% of the paper's
    # detailed-model numbers for every design, and preserve the ordering.
    for design in (NIDesign.EDGE, NIDesign.PER_TILE, NIDesign.SPLIT, NIDesign.NUMA):
        measured = simulated[design.value]
        assert abs(measured - paper[design.value]) / paper[design.value] < 0.20
    assert simulated["edge"] > simulated["split"]
    assert simulated["edge"] > simulated["per_tile"]
