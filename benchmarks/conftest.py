"""Pytest configuration for the benchmark harness.

Shared constants and helpers live in :mod:`bench_params` so that benchmark
modules can import them unambiguously (bare ``conftest`` imports resolve to
whichever conftest.py pytest happened to load first).
"""

from __future__ import annotations
