"""Benchmark regenerating Figure 5 (latency projection vs hop count)."""

import pytest

from bench_params import run_spec


def test_bench_fig5(benchmark):
    result = benchmark.pedantic(run_spec, args=("fig5",), rounds=1, iterations=1)
    hops = result.column("Hops")
    assert hops == list(range(13))
    edge = result.column("NIedge overhead (%)")
    split = result.column("NIsplit overhead (%)")
    # Paper: 28.6% vs 4.7% at six hops, 16.2% vs 2.6% at the torus diameter.
    assert edge[6] == pytest.approx(28.6, abs=0.5)
    assert split[6] == pytest.approx(4.7, abs=0.3)
    assert edge[12] == pytest.approx(16.2, abs=0.5)
    assert split[12] == pytest.approx(2.6, abs=0.3)
    assert result.metadata.experiment == "fig5"
