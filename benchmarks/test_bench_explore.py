"""Benchmark of the design-space exploration engine, feeding the perf baseline.

Runs a seeded ``evolve`` exploration of a tiny real ``load_sweep`` space
(NI design x arrival process, one offered load, shortened windows) through
the full engine path — strategy rounds, campaign execution, objective
extraction, Pareto and sensitivity bookkeeping — so the baseline tracks
what exploration costs on top of the raw sweeps it orchestrates.
"""

from __future__ import annotations

from bench_params import record_baseline
from repro.explore import Explorer, build_space
from repro.sim import perf

EXPLORE_DIMS = ("design=edge,split", "arrivals=poisson,deterministic")
EXPLORE_FIXED = {
    "loads": (6.0,),
    "warmup_cycles": 1_000.0,
    "measure_cycles": 4_000.0,
}
EXPLORE_SEED = 7
EXPLORE_BUDGET = 4


def test_bench_explore():
    """Seeded evolve exploration of the 2x2 smoke space."""
    with perf.session() as session:
        space = build_space("load_sweep", list(EXPLORE_DIMS), EXPLORE_FIXED)
        report = Explorer(
            space, strategy="evolve", seed=EXPLORE_SEED, budget=EXPLORE_BUDGET,
        ).run()
    assert report.totals["evaluations"] == EXPLORE_BUDGET
    assert report.totals["feasible"] == EXPLORE_BUDGET
    assert report.pareto
    assert session.events_per_s > 0
    record_baseline("explore", {
        "evaluations": report.totals["evaluations"],
        "rounds": len(report.rounds),
        "pareto_size": len(report.pareto),
        "events": session.events,
        "wall_s": session.wall_s,
        "events_per_s": session.events_per_s,
        "peak_pending_events": session.peak_pending_events,
        "fused_hops": session.fused_hops,
        "fast_events": session.fast_events,
    })
    print("\nexplore: %.0f events/s (%d evaluations, %d on the front, %.3f s)"
          % (session.events_per_s, report.totals["evaluations"],
             len(report.pareto), session.wall_s))
