"""Microbenchmarks of the simulation core, recording a JSON perf baseline.

Unlike the figure benchmarks (which regenerate paper results), these measure
the *simulator itself*: raw event-kernel throughput and packet injection
through the mesh NOC fabric.  Each run writes a machine-readable baseline
(``perf_baseline.json`` next to this file, or ``$PERF_BASELINE_PATH``) so
future optimisation PRs have a trajectory to compare against; see the
"Performance methodology" section of the README for the format.

The assertions are deliberately loose sanity checks (rates must be positive
and the workloads must complete) — regressions are judged from the recorded
baselines, not by gating thresholds that would flake across machines.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from bench_params import BASELINE_SCHEMA, baseline_path as _baseline_path, \
    record_baseline as _record
from repro.config import MessageClass, SystemConfig
from repro.noc.fabric import NocFabric
from repro.noc.mesh import MeshTopology
from repro.scenario.builder import MachineBuilder
from repro.scenario.spec import ScenarioSpec
from repro.sim import perf
from repro.sim.engine import Simulator

#: Events executed by the pure-kernel benchmark.
KERNEL_EVENTS = 200_000
#: Packets injected by the NOC fast-path benchmark.
INJECTED_PACKETS = 40_000
#: Operations per core driven by the scenario-composition benchmark.
SCENARIO_OPS_PER_CORE = 32


def test_bench_event_kernel():
    """Self-rescheduling callback chains: pure heap push/pop/dispatch cost."""
    sim = Simulator()
    remaining = [KERNEL_EVENTS]  # shared budget across all chains

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(1, tick)

    chains = 64
    started = time.perf_counter()
    for _ in range(chains):
        sim.schedule(1, tick)
    sim.run()
    wall = time.perf_counter() - started
    assert sim.events_executed >= KERNEL_EVENTS
    events_per_s = sim.events_executed / wall
    assert events_per_s > 0
    _record("event_kernel", {
        "events": sim.events_executed,
        "wall_s": wall,
        "events_per_s": events_per_s,
        "peak_pending_events": sim.peak_pending_events,
    })
    print("\nevent kernel: %.0f events/s (%d events in %.3f s)"
          % (events_per_s, sim.events_executed, wall))


def test_bench_packet_injection():
    """Deterministic all-to-all packet mix on the 8x8 mesh (CDR-extended)."""
    config = SystemConfig.paper_defaults()
    classes = list(MessageClass)
    with perf.session() as session:
        sim = Simulator()
        topology = MeshTopology(8, config.noc)
        fabric = NocFabric(sim, topology, config.noc)
        for i in range(INJECTED_PACKETS):
            src = topology.tile_coord(i % 64)
            dst = topology.tile_coord((i * 7 + 13) % 64)
            fabric.send(src, dst, 64 * (1 + i % 4), classes[i % len(classes)])
            if i % 64 == 63:
                sim.run()
        sim.run()
    assert fabric.packets_delivered == INJECTED_PACKETS
    assert session.packets_per_s > 0
    _record("packet_injection", {
        "packets": session.packets,
        "events": session.events,
        "wall_s": session.wall_s,
        "packets_per_s": session.packets_per_s,
        "events_per_s": session.events_per_s,
        "peak_pending_events": session.peak_pending_events,
        "fused_hops": session.fused_hops,
        "fast_events": session.fast_events,
        "route_cache_entries": len(fabric._bound_routes),
    })
    print("\npacket injection: %.0f packets/s, %.0f events/s (%d packets in %.3f s)"
          % (session.packets_per_s, session.events_per_s, session.packets, session.wall_s))


def test_bench_packet_injection_obs(tmp_path):
    """The ``packet_injection`` mix with live telemetry enabled.

    Identical deterministic all-to-all src/dst/size/class mix, but sampled
    by the obs subsystem: a session with the ``throughput`` and
    ``heap_health`` probes streams JSONL to a scratch file, and the sampler
    fires between injection batches (the batched drain-to-quiescence ``run``
    calls leave no bounded horizon for self-scheduled ticks).  The baseline
    row tracks the overhead of observability on the hottest path; CI
    soft-gates the obs-enabled ``packets_per_s`` at <= 5% below the plain
    benchmark's via ``tools/check_perf_baseline.py``.
    """
    from repro.obs.probes import ProbeContext
    from repro.obs.sampler import Sampler
    from repro.obs.session import ObsSession
    from repro.obs.stream import ObsStream

    config = SystemConfig.paper_defaults()
    classes = list(MessageClass)
    stream_path = str(tmp_path / "bench_obs.jsonl")
    obs = ObsSession(
        ObsStream.open(stream_path),
        probes=["throughput", "heap_health"],
        sample_cycles=200.0,
    )
    with perf.session() as session:
        with obs.activate(run="packet_injection_obs"):
            sim = Simulator()
            topology = MeshTopology(8, config.noc)
            fabric = NocFabric(sim, topology, config.noc)
            sampler = Sampler(
                obs, sim, ProbeContext(sim=sim, fabric=fabric), horizon=0.0
            )
            for i in range(INJECTED_PACKETS):
                src = topology.tile_coord(i % 64)
                dst = topology.tile_coord((i * 7 + 13) % 64)
                fabric.send(src, dst, 64 * (1 + i % 4), classes[i % len(classes)])
                if i % 64 == 63:
                    sim.run()
                    sampler.sample_now()
            sim.run()
            sampler.sample_now()
    records = obs.stream.records
    obs.close()
    assert fabric.packets_delivered == INJECTED_PACKETS
    assert records > 0 and session.packets_per_s > 0
    _record("packet_injection_obs", {
        "packets": session.packets,
        "events": session.events,
        "wall_s": session.wall_s,
        "packets_per_s": session.packets_per_s,
        "events_per_s": session.events_per_s,
        "peak_pending_events": session.peak_pending_events,
        "fused_hops": session.fused_hops,
        "fast_events": session.fast_events,
        "obs_records": records,
    })
    print("\npacket injection (obs): %.0f packets/s, %d stream records"
          % (session.packets_per_s, records))


def test_bench_packet_injection_fused():
    """Low-load injection: one packet in flight, the regime hop fusion owns.

    The same all-to-all src/dst/size/class mix as ``packet_injection``, but
    self-paced — each delivery callback injects the next packet (a
    ``tail=True`` send, satisfying the tail-send contract), so the NOC is
    otherwise idle and every k-hop route collapses into a single delivery
    event.  This is the regime of the paper's latency figures (fig6, table1).
    """
    config = SystemConfig.paper_defaults()
    classes = list(MessageClass)
    topology = MeshTopology(8, config.noc)
    plan = [
        (topology.tile_coord(i % 64), topology.tile_coord((i * 7 + 13) % 64),
         64 * (1 + i % 4), classes[i % len(classes)])
        for i in range(INJECTED_PACKETS)
    ]
    requests = iter(plan)
    with perf.session() as session:
        sim = Simulator()
        # Fusion pinned on explicitly: this benchmark *measures* the fused
        # path, so a REPRO_HOP_FUSION=0 A/B environment must not break its
        # one-event-per-packet assertions.
        fabric = NocFabric(sim, topology, config.noc, hop_fusion=True)
        send = fabric.send

        def inject(_packet=None):
            request = next(requests, None)
            if request is not None:
                send(request[0], request[1], request[2], request[3], inject, tail=True)

        inject()
        sim.run()
    assert fabric.packets_delivered == INJECTED_PACKETS
    assert session.packets_per_s > 0
    assert session.fused_hops > 0
    # Fully fused low-load injection needs exactly one event per packet.
    assert session.events == INJECTED_PACKETS
    _record("packet_injection_fused", {
        "packets": session.packets,
        "events": session.events,
        "wall_s": session.wall_s,
        "packets_per_s": session.packets_per_s,
        "events_per_s": session.events_per_s,
        "peak_pending_events": session.peak_pending_events,
        "fused_hops": session.fused_hops,
        "fast_events": session.fast_events,
    })
    print("\nfused packet injection: %.0f packets/s, %.0f events/s, %d hops fused"
          % (session.packets_per_s, session.events_per_s, session.fused_hops))


def test_bench_scenario_hotspot():
    """Registry-composed hotspot scenario on the full 64-core chip.

    Exercises the whole MachineBuilder path (spec resolution, registry
    lookups, SoC construction) plus the contended hot-window traffic of the
    new workload, so the baseline tracks scenario-composition overhead as
    well as raw simulation throughput.
    """
    spec = ScenarioSpec(
        design="split",
        workload="hotspot",
        workload_params={"active_cores": 16, "ops_per_core": SCENARIO_OPS_PER_CORE},
    )
    with perf.session() as session:
        result = MachineBuilder(spec).run()
    expected_ops = 16 * SCENARIO_OPS_PER_CORE
    assert result.metrics["completed_ops"] == expected_ops
    assert session.events_per_s > 0
    _record("scenario_hotspot", {
        "completed_ops": result.metrics["completed_ops"],
        "elapsed_cycles": result.metrics["elapsed_cycles"],
        "application_gbps": result.metrics["application_gbps"],
        "max_link_utilization": result.metrics["max_link_utilization"],
        "events": session.events,
        "wall_s": session.wall_s,
        "events_per_s": session.events_per_s,
        "fused_hops": session.fused_hops,
        "fast_events": session.fast_events,
        "scenario_fingerprint": result.scenario_fingerprint,
    })
    print("\nscenario hotspot: %.0f events/s (%d ops in %.3f s)"
          % (session.events_per_s, expected_ops, session.wall_s))


def test_baseline_file_is_valid_json():
    """A written baseline must round-trip and carry sane counters."""
    path = _baseline_path()
    if not os.path.exists(path):
        pytest.skip("no baseline written yet (benchmarks not run)")
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["schema"] == BASELINE_SCHEMA
    assert document["benchmarks"]
    for counters in document["benchmarks"].values():
        assert counters["wall_s"] > 0
        assert counters["events_per_s"] > 0
