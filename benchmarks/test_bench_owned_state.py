"""Benchmark for the NI-cache owned-state ablation (§3.4)."""

from bench_params import run_spec


def test_bench_owned_state_ablation(benchmark):
    result = benchmark.pedantic(
        run_spec, args=("owned-state",), kwargs={"iterations": 4}, rounds=1, iterations=1
    )
    print()
    print(result.format())
    rows = {(row[0], row[1]): row[2] for row in result.rows}
    # Disabling the owned state adds an LLC round trip to every CQ poll of a
    # dirty block, so it can never be faster.
    assert rows[("split", "off")] >= rows[("split", "on")]
    assert rows[("per_tile", "off")] >= rows[("per_tile", "on")]
