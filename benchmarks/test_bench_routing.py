"""Benchmark for the on-chip routing ablation (§4.3, §6.2 text)."""

from bench_params import BENCH_MEASURE_CYCLES, BENCH_WARMUP_CYCLES, run_spec


def test_bench_routing_ablation(benchmark):
    result = benchmark.pedantic(
        run_spec,
        args=("routing",),
        kwargs={
            "transfer_bytes": 2048,
            "policies": ("xy", "cdr", "cdr_extended"),
            "warmup_cycles": BENCH_WARMUP_CYCLES,
            "measure_cycles": BENCH_MEASURE_CYCLES,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())
    bandwidth = dict(zip(result.column("Routing"), result.column("Application (GBps)")))
    # Paper: class-based routing clearly outperforms plain dimension-order
    # routing, which turns the MC/NI edge columns into hotspots.
    assert bandwidth["cdr_extended"] > bandwidth["xy"]
    assert bandwidth["cdr"] > 0 and bandwidth["xy"] > 0
