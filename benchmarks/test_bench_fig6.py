"""Benchmark regenerating Figure 6 (synchronous remote-read latency, mesh NOC)."""

from bench_params import LATENCY_ITERATIONS, LATENCY_SIZES, LATENCY_WARMUP, run_spec


def test_bench_fig6(benchmark):
    result = benchmark.pedantic(
        run_spec,
        args=("fig6",),
        kwargs={
            "sizes": LATENCY_SIZES,
            "iterations": LATENCY_ITERATIONS,
            "warmup": LATENCY_WARMUP,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())
    edge = result.column("NIedge (ns)")
    split = result.column("NIsplit (ns)")
    per_tile = result.column("NIper-tile (ns)")
    numa = result.column("NUMA projection (ns)")
    # Paper shape: for small transfers NIedge is clearly slower than NIsplit,
    # which is close to NIper-tile; NUMA is the lower bound; for the largest
    # transfers NIper-tile becomes the slowest design (source-tile unrolling).
    assert edge[0] > 1.2 * split[0]
    assert abs(split[0] - per_tile[0]) / per_tile[0] < 0.15
    assert numa[0] < split[0]
    assert per_tile[-1] > split[-1]
    assert per_tile[-1] >= edge[-1] * 0.95
    # Latency grows monotonically with the transfer size for every design.
    for series in (edge, split, per_tile):
        assert series == sorted(series)
