"""Benchmark of the open-loop load subsystem, feeding the perf baseline.

Runs a scaled-down ``load_sweep`` (two load points, one below and one beyond
the default scenario's saturation knee) through the declarative spec
registry, so the baseline tracks the cost of the whole open-loop path:
arrival-clock event scheduling, bounded-queue feeding, exact-histogram
latency recording and the SLO evaluation.
"""

from __future__ import annotations

from bench_params import record_baseline, run_spec
from repro.sim import perf

#: One pre-knee and one post-knee offered load (requests per kcycle).
SWEEP_LOADS = (5.0, 40.0)
BENCH_WARMUP_CYCLES = 2_000.0
BENCH_MEASURE_CYCLES = 8_000.0


def test_bench_load_sweep():
    """Scaled-down saturation sweep of the default kvstore/split scenario."""
    with perf.session() as session:
        result = run_spec(
            "load_sweep",
            loads=SWEEP_LOADS,
            warmup_cycles=BENCH_WARMUP_CYCLES,
            measure_cycles=BENCH_MEASURE_CYCLES,
        )
    assert len(result.rows) == len(SWEEP_LOADS)
    assert result.metadata.events["requests_completed"] > 0
    assert session.events_per_s > 0
    injected = result.metadata.events["requests_injected"]
    record_baseline("load_sweep", {
        "load_points": result.metadata.events["load_points"],
        "requests_injected": injected,
        "requests_completed": result.metadata.events["requests_completed"],
        "p99_ns_low_load": result.rows[0][result.headers.index("p99 (ns)")],
        "p99_ns_high_load": result.rows[-1][result.headers.index("p99 (ns)")],
        "events": session.events,
        "wall_s": session.wall_s,
        "events_per_s": session.events_per_s,
        "peak_pending_events": session.peak_pending_events,
        "fused_hops": session.fused_hops,
        "fast_events": session.fast_events,
    })
    print("\nload sweep: %.0f events/s (%d requests in %.3f s)"
          % (session.events_per_s, injected, session.wall_s))


def test_bench_chaos_sweep():
    """Scaled-down faulted sweep: the load path plus fault-hook overhead.

    One offered load, one fault intensity, plus the in-experiment fault-free
    baseline twin — the baseline entry tracks what fault-state checks and
    windowed tail recording cost on top of the plain load path.
    """
    with perf.session() as session:
        result = run_spec(
            "chaos_sweep",
            loads=(8.0,),
            intensities=(0.5,),
            warmup_cycles=1_000.0,
            measure_cycles=4_000.0,
            mtbf_cycles=1_200.0,
            mttr_cycles=600.0,
        )
    assert result.metadata.events["requests_completed"] > 0
    assert result.metadata.events["fault_windows"] > 0
    assert session.events_per_s > 0
    injected = result.metadata.events["requests_injected"]
    record_baseline("chaos_sweep", {
        "load_points": result.metadata.events["load_points"],
        "fault_intensities": result.metadata.events["fault_intensities"],
        "requests_injected": injected,
        "requests_completed": result.metadata.events["requests_completed"],
        "fault_windows": result.metadata.events["fault_windows"],
        "fault_drops": result.metadata.events["fault_drops"],
        "events": session.events,
        "wall_s": session.wall_s,
        "events_per_s": session.events_per_s,
        "peak_pending_events": session.peak_pending_events,
        "fused_hops": session.fused_hops,
        "fast_events": session.fast_events,
        "fault_hits": session.fault_hits,
    })
    print("\nchaos sweep: %.0f events/s (%d requests in %.3f s)"
          % (session.events_per_s, injected, session.wall_s))
