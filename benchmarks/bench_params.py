"""Shared parameters and helpers for the benchmark harness.

Importable under its own name (unlike ``conftest``, whose bare-module import
is resolved against whichever conftest.py pytest loaded first when both
``tests/`` and ``benchmarks/`` are collected).

Each benchmark regenerates one table or figure of the paper through the
declarative spec registry (:func:`run_spec`).  The simulator-backed figures
use shortened warm-up/measurement windows and a subset of the x-axis so the
whole harness finishes in minutes on a laptop; the full sweeps are available
through ``repro-experiments`` or by running a spec with its default
parameters.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_spec

#: Schema tag of the machine-readable perf baseline the benchmarks write.
#: /2 added the low-load ``packet_injection_fused`` benchmark and fused-hop /
#: fast-event counters (``fused_hops``, ``fast_events``) to the entries.
#: /3 added the faulted-load ``chaos_sweep`` benchmark and its fault
#: counters (``fault_windows``, ``fault_hits``).
#: /4 added the design-space ``explore`` benchmark (seeded evolve search
#: over a tiny load_sweep space) and its evaluation/Pareto counters.
#: /5 added the obs-enabled ``packet_injection_obs`` benchmark (live
#: telemetry probes + JSONL stream on the hot path) and its record counter.
BASELINE_SCHEMA = "repro-perf-baseline/5"

#: Warm-up and measurement windows (cycles) for bandwidth benchmarks.
BENCH_WARMUP_CYCLES = 3_000
BENCH_MEASURE_CYCLES = 8_000

#: Transfer sizes exercised by the latency benchmarks (subset of Fig. 6/9).
LATENCY_SIZES = (64, 1024, 8192)
#: Transfer sizes exercised by the bandwidth benchmarks (subset of Fig. 7/10).
BANDWIDTH_SIZES = (64, 512, 4096)

#: Iterations per latency measurement.
LATENCY_ITERATIONS = 3
LATENCY_WARMUP = 1


def run_spec(name: str, **params: object) -> ExperimentResult:
    """Run a registered experiment through its spec (validates the overrides)."""
    return get_spec(name).run(**params)


def baseline_path() -> str:
    """Where the perf baseline JSON lives (``$PERF_BASELINE_PATH`` overrides)."""
    return os.environ.get(
        "PERF_BASELINE_PATH",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "perf_baseline.json"),
    )


def record_baseline(name: str, payload: dict) -> None:
    """Merge one benchmark's counters into the baseline file.

    Read-merge-write (rather than a module-global accumulated dict) keeps the
    file complete when tests are selected individually or split across
    pytest-xdist workers.
    """
    benchmarks: dict = {}
    path = baseline_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if existing.get("schema") == BASELINE_SCHEMA:
            benchmarks = dict(existing.get("benchmarks", {}))
    except (OSError, ValueError):
        pass
    benchmarks[name] = payload
    document = {
        "schema": BASELINE_SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": benchmarks,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
