"""Shared parameters and helpers for the benchmark harness.

Importable under its own name (unlike ``conftest``, whose bare-module import
is resolved against whichever conftest.py pytest loaded first when both
``tests/`` and ``benchmarks/`` are collected).

Each benchmark regenerates one table or figure of the paper through the
declarative spec registry (:func:`run_spec`).  The simulator-backed figures
use shortened warm-up/measurement windows and a subset of the x-axis so the
whole harness finishes in minutes on a laptop; the full sweeps are available
through ``repro-experiments`` or by running a spec with its default
parameters.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_spec

#: Warm-up and measurement windows (cycles) for bandwidth benchmarks.
BENCH_WARMUP_CYCLES = 3_000
BENCH_MEASURE_CYCLES = 8_000

#: Transfer sizes exercised by the latency benchmarks (subset of Fig. 6/9).
LATENCY_SIZES = (64, 1024, 8192)
#: Transfer sizes exercised by the bandwidth benchmarks (subset of Fig. 7/10).
BANDWIDTH_SIZES = (64, 512, 4096)

#: Iterations per latency measurement.
LATENCY_ITERATIONS = 3
LATENCY_WARMUP = 1


def run_spec(name: str, **params: object) -> ExperimentResult:
    """Run a registered experiment through its spec (validates the overrides)."""
    return get_spec(name).run(**params)
