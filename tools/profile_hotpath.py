#!/usr/bin/env python
"""cProfile recipe for the simulation hot path.

Profiles either the NOC packet-injection microbenchmark (the same mix the
perf baseline measures, at a chosen load regime) or any registered
experiment spec, and prints the top functions by internal time.  This is
the tool that found the wins behind lookahead hop fusion and the
allocation-free event fast path — start here before optimising anything.

Examples::

    # Low-load injection (one packet in flight, fusion fully engaged):
    python tools/profile_hotpath.py

    # Contended injection (64 packets per batch, fusion falls back):
    python tools/profile_hotpath.py --batch 64

    # Fusion force-disabled, for before/after comparisons:
    REPRO_HOP_FUSION=0 python tools/profile_hotpath.py

    # A whole experiment through the spec registry:
    python tools/profile_hotpath.py --experiment fig6 --set sizes=64,1024 \
        --set iterations=2 --sort cumtime
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def profile_injection(packets: int, batch: int) -> cProfile.Profile:
    from repro.config import MessageClass, SystemConfig
    from repro.noc.fabric import NocFabric
    from repro.noc.mesh import MeshTopology
    from repro.sim.engine import Simulator

    config = SystemConfig.paper_defaults()
    classes = list(MessageClass)
    topology = MeshTopology(8, config.noc)
    plan = [
        (topology.tile_coord(i % 64), topology.tile_coord((i * 7 + 13) % 64),
         64 * (1 + i % 4), classes[i % len(classes)])
        for i in range(packets)
    ]
    sim = Simulator()
    fabric = NocFabric(sim, topology, config.noc)
    profiler = cProfile.Profile()
    profiler.enable()
    if batch <= 1:
        # Self-paced chain: each delivery injects the next packet (tail-send
        # contract holds — the callback does nothing after the send).
        requests = iter(plan)
        send = fabric.send

        def inject(_packet=None):
            request = next(requests, None)
            if request is not None:
                send(request[0], request[1], request[2], request[3], inject, tail=True)

        inject()
        sim.run()
    else:
        for position, (src, dst, nbytes, cls) in enumerate(plan):
            fabric.send(src, dst, nbytes, cls)
            if position % batch == batch - 1:
                sim.run()
        sim.run()
    profiler.disable()
    assert fabric.packets_delivered == packets
    print("%d packets, %d events, %d hops fused\n"
          % (packets, sim.events_executed, fabric.lifetime_fused_hops))
    return profiler


def profile_experiment(name: str, assignments: list) -> cProfile.Profile:
    from repro.experiments.registry import get_spec

    spec = get_spec(name)
    params = spec.parse_overrides(assignments)
    profiler = cProfile.Profile()
    profiler.enable()
    spec.run(**params)
    profiler.disable()
    return profiler


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", help="profile a registered spec instead "
                        "of the injection microbenchmark")
    parser.add_argument("--set", dest="assignments", action="append", default=[],
                        metavar="NAME=VALUE", help="experiment parameter override "
                        "(repeatable; only with --experiment)")
    parser.add_argument("--packets", type=int, default=40_000,
                        help="packets for the injection profile (default 40000)")
    parser.add_argument("--batch", type=int, default=1,
                        help="packets injected per drain; 1 = low load (default)")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumtime", "ncalls"],
                        help="pstats sort column (default tottime)")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows to print (default 25)")
    args = parser.parse_args(argv)

    if args.experiment:
        profiler = profile_experiment(args.experiment, args.assignments)
    else:
        profiler = profile_injection(args.packets, args.batch)
    pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
