#!/usr/bin/env python
"""CI guard: validate the registry inventory against the checked-in manifest.

Runs ``repro-experiments list --json`` in-process and compares the component
registries and experiment names it reports against
``tests/data/registry_manifest.json``.  An accidental component removal (or
an addition without a manifest update) fails the build with a diff-style
message.

Usage::

    python tools/check_registry_manifest.py [--inventory CATALOG.json] [MANIFEST_PATH]

With ``--inventory`` the catalog JSON previously written by
``repro-experiments list --json CATALOG.json`` is validated; without it the
catalog is generated in-process.
"""

from __future__ import annotations

import io
import json
import os
import sys
from contextlib import redirect_stdout

DEFAULT_MANIFEST = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "data", "registry_manifest.json",
)


def catalog_inventory(inventory_path: str = None) -> dict:
    """The inventory, from a saved catalog file or the in-process CLI."""
    if inventory_path is not None:
        with open(inventory_path, "r", encoding="utf-8") as handle:
            catalog = json.load(handle)
    else:
        from repro.cli import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            status = main(["list", "--json"])
        if status != 0:
            raise SystemExit("repro-experiments list --json failed with status %d" % status)
        catalog = json.loads(buffer.getvalue())
    return {
        "designs": [item["name"] for item in catalog["registries"]["designs"]],
        "topologies": [item["name"] for item in catalog["registries"]["topologies"]],
        "workloads": [item["name"] for item in catalog["registries"]["workloads"]],
        "arrivals": [item["name"] for item in catalog["registries"].get("arrivals", [])],
        "faults": [item["name"] for item in catalog["registries"].get("faults", [])],
        "experiments": [item["name"] for item in catalog["experiments"]],
    }


def main(argv: list) -> int:
    inventory_path = None
    if "--inventory" in argv:
        index = argv.index("--inventory")
        try:
            inventory_path = argv[index + 1]
        except IndexError:
            raise SystemExit("--inventory requires a path argument")
        argv = argv[:index] + argv[index + 2:]
    manifest_path = argv[0] if argv else DEFAULT_MANIFEST
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    actual = catalog_inventory(inventory_path)
    failures = []
    for key, names in actual.items():
        expected = manifest.get(key, [])
        missing = sorted(set(expected) - set(names))
        extra = sorted(set(names) - set(expected))
        if missing:
            failures.append("%s: missing from the live registry: %s" % (key, ", ".join(missing)))
        if extra:
            failures.append("%s: not in the manifest: %s" % (key, ", ".join(extra)))
    if failures:
        print("registry inventory drifted from %s" % manifest_path, file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        print("update tests/data/registry_manifest.json if the change is intentional",
              file=sys.stderr)
        return 1
    print("registry inventory matches %s (%d designs, %d topologies, %d workloads, "
          "%d arrival processes, %d fault models, %d experiments)" % (
              manifest_path, len(actual["designs"]), len(actual["topologies"]),
              len(actual["workloads"]), len(actual["arrivals"]),
              len(actual["faults"]), len(actual["experiments"])))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
