#!/usr/bin/env python
"""CI guard: validate the registry inventory against the checked-in manifest.

Thin shim kept for CI compatibility — the inventory check now lives in
:mod:`repro.lint.manifest`, alongside lint rule REP004 (which enforces the
same manifest statically as part of ``repro-experiments lint``).

Usage::

    python tools/check_registry_manifest.py [--inventory CATALOG.json] [MANIFEST_PATH]

With ``--inventory`` the catalog JSON previously written by
``repro-experiments list --json CATALOG.json`` is validated; without it the
catalog is generated in-process.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.lint import manifest  # noqa: E402

DEFAULT_MANIFEST = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "data", "registry_manifest.json",
)


def main(argv: list) -> int:
    # Anchor the default manifest at the repo root (not the cwd) so the shim
    # behaves identically to the pre-lint tool wherever it is invoked from.
    positionals = [arg for arg in argv if not arg.startswith("--")]
    if "--inventory" in argv:
        # The --inventory value is not a manifest path.
        index = argv.index("--inventory")
        if index + 1 < len(argv) and argv[index + 1] in positionals:
            positionals.remove(argv[index + 1])
    if not positionals:
        argv = list(argv) + [DEFAULT_MANIFEST]
    return manifest.main(list(argv))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
