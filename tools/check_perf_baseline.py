#!/usr/bin/env python
"""Soft perf gate: compare a freshly measured baseline to the committed one.

CI runs the engine microbenchmarks (``benchmarks/test_bench_engine.py`` and
``benchmarks/test_bench_load.py``), which write a machine-readable baseline
JSON, then calls this script to compare the fresh numbers against the
baseline committed in ``benchmarks/perf_baseline.json``.  The job fails when
a *gated* benchmark's ``events_per_s`` regresses by more than the allowed
fraction (default 30% — generous enough to absorb runner jitter, tight
enough to catch a hot path accidentally falling off the fast path).

The job also soft-gates **observability overhead**: within the *fresh*
document (same machine, same run) the obs-enabled ``packet_injection_obs``
benchmark's ``packets_per_s`` must stay within ``--max-obs-overhead``
(default 5%) of the plain ``packet_injection``'s — live telemetry must
never meaningfully tax the hottest path.

Benchmarks present in only one of the two documents are reported but never
fail the gate (new benchmarks land before their baseline does), and a
committed baseline with an older schema downgrades the run to report-only —
after a schema bump the first regenerated baseline has nothing comparable
to gate against.

Usage::

    python tools/check_perf_baseline.py --fresh perf_baseline.json \
        [--committed benchmarks/perf_baseline.json] [--max-regression 0.30] \
        [--max-obs-overhead 0.05]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Benchmarks whose events_per_s regression fails the gate.
GATED_BENCHMARKS = ("event_kernel", "packet_injection")

#: (plain, obs-enabled) benchmark pair compared for observability overhead.
OBS_OVERHEAD_PAIR = ("packet_injection", "packet_injection_obs")

DEFAULT_COMMITTED = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "benchmarks", "perf_baseline.json",
)


def load_document(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "benchmarks" not in document:
        raise SystemExit("%s: not a perf-baseline document" % path)
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="baseline JSON written by this run's benchmarks")
    parser.add_argument("--committed", default=DEFAULT_COMMITTED,
                        help="checked-in reference baseline (default: %(default)s)")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional events_per_s drop (default 0.30)")
    parser.add_argument("--max-obs-overhead", type=float, default=0.05,
                        help="allowed fractional packets_per_s cost of live "
                             "telemetry vs the plain benchmark, compared "
                             "within the fresh document (default 0.05)")
    args = parser.parse_args(argv)

    fresh = load_document(args.fresh)
    committed = load_document(args.committed)
    gating = fresh.get("schema") == committed.get("schema")
    if not gating:
        print("schema mismatch (%s fresh vs %s committed): reporting only, not gating"
              % (fresh.get("schema"), committed.get("schema")))

    failures = []
    for name in sorted(set(fresh["benchmarks"]) | set(committed["benchmarks"])):
        new = fresh["benchmarks"].get(name)
        old = committed["benchmarks"].get(name)
        if new is None or old is None:
            print("%-24s only in %s baseline — not gated"
                  % (name, "committed" if new is None else "fresh"))
            continue
        new_rate = float(new.get("events_per_s", 0.0))
        old_rate = float(old.get("events_per_s", 0.0))
        if old_rate <= 0:
            print("%-24s committed rate is zero — not gated" % name)
            continue
        change = new_rate / old_rate - 1.0
        gated = gating and name in GATED_BENCHMARKS
        verdict = "ok"
        if change < -args.max_regression:
            verdict = "REGRESSION" if gated else "regression (not gated)"
            if gated:
                failures.append(name)
        print("%-24s %12.0f -> %12.0f events/s (%+6.1f%%) %s"
              % (name, old_rate, new_rate, change * 100.0, verdict))

    plain_name, obs_name = OBS_OVERHEAD_PAIR
    plain = fresh["benchmarks"].get(plain_name)
    obs = fresh["benchmarks"].get(obs_name)
    if plain is None or obs is None:
        print("%-24s pair incomplete in fresh baseline — obs overhead not gated"
              % obs_name)
    else:
        plain_rate = float(plain.get("packets_per_s", 0.0))
        obs_rate = float(obs.get("packets_per_s", 0.0))
        if plain_rate <= 0:
            print("%-24s plain rate is zero — obs overhead not gated" % obs_name)
        else:
            overhead = 1.0 - obs_rate / plain_rate
            verdict = "ok"
            if overhead > args.max_obs_overhead:
                verdict = "OBS OVERHEAD"
                failures.append("%s (obs overhead %.1f%%)"
                                % (obs_name, overhead * 100.0))
            print("%-24s %12.0f vs %12.0f packets/s (obs overhead %+5.1f%%, "
                  "max %.0f%%) %s"
                  % (obs_name, plain_rate, obs_rate, overhead * 100.0,
                     args.max_obs_overhead * 100.0, verdict))

    if failures:
        print("\nperf gate FAILED: %s" % ", ".join(failures))
        print("If the slowdown is intentional, regenerate benchmarks/perf_baseline.json "
              "(see README, 'Performance methodology') and commit it with the change.")
        return 1
    print("\nperf gate passed (threshold: %.0f%% on %s)"
          % (args.max_regression * 100.0, ", ".join(GATED_BENCHMARKS)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
