#!/usr/bin/env python
"""Soft perf gate: compare a freshly measured baseline to the committed one.

CI runs the engine microbenchmarks (``benchmarks/test_bench_engine.py`` and
``benchmarks/test_bench_load.py``), which write a machine-readable baseline
JSON, then calls this script to compare the fresh numbers against the
baseline committed in ``benchmarks/perf_baseline.json``.  The job fails when
a *gated* benchmark's ``events_per_s`` regresses by more than the allowed
fraction (default 30% — generous enough to absorb runner jitter, tight
enough to catch a hot path accidentally falling off the fast path).

Benchmarks present in only one of the two documents are reported but never
fail the gate (new benchmarks land before their baseline does), and a
committed baseline with an older schema downgrades the run to report-only —
after a schema bump the first regenerated baseline has nothing comparable
to gate against.

Usage::

    python tools/check_perf_baseline.py --fresh perf_baseline.json \
        [--committed benchmarks/perf_baseline.json] [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Benchmarks whose events_per_s regression fails the gate.
GATED_BENCHMARKS = ("event_kernel", "packet_injection")

DEFAULT_COMMITTED = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "benchmarks", "perf_baseline.json",
)


def load_document(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "benchmarks" not in document:
        raise SystemExit("%s: not a perf-baseline document" % path)
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="baseline JSON written by this run's benchmarks")
    parser.add_argument("--committed", default=DEFAULT_COMMITTED,
                        help="checked-in reference baseline (default: %(default)s)")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional events_per_s drop (default 0.30)")
    args = parser.parse_args(argv)

    fresh = load_document(args.fresh)
    committed = load_document(args.committed)
    gating = fresh.get("schema") == committed.get("schema")
    if not gating:
        print("schema mismatch (%s fresh vs %s committed): reporting only, not gating"
              % (fresh.get("schema"), committed.get("schema")))

    failures = []
    for name in sorted(set(fresh["benchmarks"]) | set(committed["benchmarks"])):
        new = fresh["benchmarks"].get(name)
        old = committed["benchmarks"].get(name)
        if new is None or old is None:
            print("%-24s only in %s baseline — not gated"
                  % (name, "committed" if new is None else "fresh"))
            continue
        new_rate = float(new.get("events_per_s", 0.0))
        old_rate = float(old.get("events_per_s", 0.0))
        if old_rate <= 0:
            print("%-24s committed rate is zero — not gated" % name)
            continue
        change = new_rate / old_rate - 1.0
        gated = gating and name in GATED_BENCHMARKS
        verdict = "ok"
        if change < -args.max_regression:
            verdict = "REGRESSION" if gated else "regression (not gated)"
            if gated:
                failures.append(name)
        print("%-24s %12.0f -> %12.0f events/s (%+6.1f%%) %s"
              % (name, old_rate, new_rate, change * 100.0, verdict))

    if failures:
        print("\nperf gate FAILED: %s regressed more than %.0f%% vs the committed "
              "baseline" % (", ".join(failures), args.max_regression * 100.0))
        print("If the slowdown is intentional, regenerate benchmarks/perf_baseline.json "
              "(see README, 'Performance methodology') and commit it with the change.")
        return 1
    print("\nperf gate passed (threshold: %.0f%% on %s)"
          % (args.max_regression * 100.0, ", ".join(GATED_BENCHMARKS)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
