"""Tests for repro.config."""

import dataclasses
import math

import pytest

from repro.config import (
    CACHE_BLOCK_BYTES,
    LatencyCalibration,
    MemoryConfig,
    NIDesign,
    NocConfig,
    RackConfig,
    RoutingAlgorithm,
    SystemConfig,
    TopologyKind,
)
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_defaults_match_table2(self):
        cfg = SystemConfig.paper_defaults()
        assert cfg.cores.count == 64
        assert cfg.cores.frequency_ghz == 2.0
        assert cfg.cores.l1_latency_cycles == 3
        assert cfg.llc.total_size_mib == 16
        assert cfg.llc.latency_cycles == 6
        assert cfg.noc.link_bytes == 16
        assert cfg.noc.mesh_hop_cycles == 3
        assert cfg.memory.latency_ns == 50.0
        assert cfg.ni.rrpp_count == 8
        assert cfg.ni.wq_entries == 128
        assert cfg.rack.nodes == 512
        assert cfg.rack.network_hop_ns == 35.0

    def test_derived_cycle_conversions(self):
        cfg = SystemConfig.paper_defaults()
        assert cfg.memory_latency_cycles == 100
        assert cfg.network_hop_cycles == 70
        assert cfg.ns_to_cycles(35.0) == 70
        assert cfg.cycles_to_ns(70) == pytest.approx(35.0)

    def test_mesh_side_and_tile_count(self):
        cfg = SystemConfig.paper_defaults()
        assert cfg.mesh_side == 8
        assert cfg.tile_count == 64

    def test_bisection_bandwidth_matches_paper(self):
        # 8 links x 16 B x 2 GHz x 2 directions = 512 GBps (§6.2).
        cfg = SystemConfig.paper_defaults()
        assert cfg.noc_bisection_bandwidth_gbps == pytest.approx(512.0)

    def test_flits_per_block_packet(self):
        cfg = SystemConfig.paper_defaults()
        assert cfg.blocks_per_noc_packet_flits == 5  # 1 header + 4 data flits

    def test_noc_out_defaults(self):
        cfg = SystemConfig.noc_out_defaults()
        assert cfg.noc.topology is TopologyKind.NOC_OUT

    def test_describe_mentions_key_parameters(self):
        text = SystemConfig.paper_defaults().describe()
        assert "64" in text and "MESI" in text.upper()


class TestDerivation:
    def test_with_design_returns_new_config(self):
        cfg = SystemConfig.paper_defaults()
        derived = cfg.with_design(NIDesign.EDGE)
        assert derived.ni.design is NIDesign.EDGE
        assert cfg.ni.design is NIDesign.SPLIT  # original untouched

    def test_with_routing(self):
        cfg = SystemConfig.paper_defaults().with_routing(RoutingAlgorithm.XY)
        assert cfg.noc.routing is RoutingAlgorithm.XY

    def test_with_topology(self):
        cfg = SystemConfig.paper_defaults().with_topology(TopologyKind.NOC_OUT)
        assert cfg.noc.topology is TopologyKind.NOC_OUT

    def test_messaging_designs_excludes_numa(self):
        designs = NIDesign.messaging_designs()
        assert NIDesign.NUMA not in designs
        assert len(designs) == 3


class TestValidation:
    def test_non_square_core_count_rejected_on_mesh(self):
        base = SystemConfig.paper_defaults()
        with pytest.raises(ConfigurationError):
            base.replace(cores=dataclasses.replace(base.cores, count=60))

    def test_negative_memory_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(latency_ns=-1).validate()

    def test_zero_link_width_rejected(self):
        with pytest.raises(ConfigurationError):
            NocConfig(link_bytes=0).validate()

    def test_torus_dims_must_match_node_count(self):
        with pytest.raises(ConfigurationError):
            RackConfig(nodes=512, torus_dims=(8, 8, 4)).validate()

    def test_negative_calibration_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyCalibration(rrpp_service_cycles=-1).validate()

    def test_cache_block_constant(self):
        assert CACHE_BLOCK_BYTES == 64


class TestCalibrationTotals:
    def test_table3_component_sums(self):
        """The calibrated constants must add up to the paper's totals."""
        cal = LatencyCalibration()
        network = 2 * 70
        edge = (cal.edge_wq_write_cycles + cal.edge_wq_read_cycles + network
                + cal.rrpp_service_cycles + cal.edge_cq_write_cycles + cal.edge_cq_read_cycles)
        per_tile = (cal.wq_write_instruction_cycles + cal.qp_entry_local_transfer_cycles
                    + cal.rgp_processing_cycles + cal.tile_to_edge_transfer_cycles + network
                    + cal.rrpp_service_cycles + cal.tile_to_edge_transfer_cycles
                    + cal.rcp_processing_cycles + cal.qp_entry_local_transfer_cycles
                    + cal.cq_read_instruction_cycles)
        split = (cal.wq_write_instruction_cycles + cal.qp_entry_local_transfer_cycles
                 + cal.rgp_frontend_cycles + cal.tile_to_edge_transfer_cycles
                 + cal.rgp_backend_cycles + network + cal.rrpp_service_cycles
                 + cal.rcp_backend_cycles + cal.tile_to_edge_transfer_cycles
                 + cal.rcp_frontend_cycles + cal.qp_entry_local_transfer_cycles
                 + cal.cq_read_instruction_cycles)
        numa = (cal.numa_issue_cycles + 2 * cal.tile_to_edge_transfer_cycles
                + network + cal.rrpp_service_cycles)
        assert edge == 710
        assert per_tile == 445
        assert split == 447
        assert numa == 395
