"""Tests for the idealized NUMA baseline."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.numa.machine import NumaMachine


class TestProjection:
    def test_single_block_latency_matches_table1(self):
        numa = NumaMachine()
        assert numa.remote_read_cycles(hops=1) == 395
        assert numa.remote_read_ns(hops=1) == pytest.approx(197.5)

    def test_breakdown_components(self):
        numa = NumaMachine()
        components = numa.breakdown(hops=1)
        labels = [component.label for component in components]
        assert any("single load" in label for label in labels)
        assert sum(c.cycles for c in components) == 395

    def test_latency_scales_with_hops(self):
        numa = NumaMachine()
        assert numa.remote_read_cycles(hops=6) == 395 + 5 * 140
        with pytest.raises(ConfigurationError):
            numa.remote_read_cycles(hops=-1)

    def test_transfer_latency_grows_with_size(self):
        numa = NumaMachine()
        single = numa.transfer_latency_cycles(64)
        large = numa.transfer_latency_cycles(8192)
        assert single == 395
        assert large > single
        # 128 blocks streamed at 5 flit-cycles apart after the first.
        assert large == 395 + 127 * 5

    def test_respects_custom_config(self):
        config = SystemConfig.paper_defaults()
        numa = NumaMachine(config)
        assert numa.remote_read_cycles() == 395


class TestSimulatedPath:
    def test_simulated_single_block_read_close_to_projection(self):
        numa = NumaMachine()
        simulated = numa.simulate_remote_read_cycles(tile_id=27, hops=1)
        projected = numa.remote_read_cycles(hops=1)
        # The simulated on-chip traversal replaces the calibrated 23-cycle
        # constants, so allow a modest tolerance.
        assert abs(simulated - projected) / projected < 0.15

    def test_simulated_latency_increases_with_hops(self):
        numa = NumaMachine()
        assert numa.simulate_remote_read_cycles(hops=4) > numa.simulate_remote_read_cycles(hops=1)
