"""Tests for the queue-pair layer."""

import pytest

from repro.errors import QueueError
from repro.qp.entries import CompletionQueueEntry, RemoteOp, WorkQueueEntry
from repro.qp.manager import QPManager
from repro.qp.queues import CompletionQueue, WorkQueue


def read_entry(length=64, offset=0):
    return WorkQueueEntry(op=RemoteOp.READ, ctx_id=0, dst_node=1,
                          remote_offset=offset, local_buffer=0x1000, length=length)


class TestEntries:
    def test_invalid_entries_rejected(self):
        with pytest.raises(QueueError):
            WorkQueueEntry(RemoteOp.READ, 0, 1, 0, 0, length=0)
        with pytest.raises(QueueError):
            WorkQueueEntry(RemoteOp.READ, 0, -1, 0, 0, length=64)
        with pytest.raises(QueueError):
            CompletionQueueEntry(wq_index=-1)


class TestWorkQueue:
    def test_post_and_pop_fifo(self):
        wq = WorkQueue(4, base_addr=0)
        indices = [wq.post(read_entry(offset=i * 64)) for i in range(3)]
        assert indices == [0, 1, 2]
        assert wq.count == 3
        assert wq.pop().remote_offset == 0
        assert wq.count == 2

    def test_full_queue_raises(self):
        wq = WorkQueue(2, base_addr=0)
        wq.post(read_entry())
        wq.post(read_entry())
        assert wq.is_full()
        with pytest.raises(QueueError):
            wq.post(read_entry())
        assert wq.full_stalls == 1

    def test_empty_queue_raises(self):
        wq = WorkQueue(2, base_addr=0)
        assert wq.peek() is None
        with pytest.raises(QueueError):
            wq.pop()

    def test_wraparound(self):
        wq = WorkQueue(2, base_addr=0)
        for round_ in range(3):
            wq.post(read_entry(offset=round_ * 64))
            assert wq.pop().remote_offset == round_ * 64

    def test_entry_block_addresses_pack_two_entries_per_block(self):
        wq = WorkQueue(8, base_addr=0x1000)
        assert wq.entries_per_block == 2
        assert wq.entry_block_address(0) == wq.entry_block_address(1)
        assert wq.entry_block_address(2) == 0x1040
        assert wq.footprint_blocks() == 4

    def test_head_and_tail_block_addresses(self):
        wq = WorkQueue(4, base_addr=0x1000)
        assert wq.head_block_address() == 0x1000
        wq.post(read_entry())
        wq.post(read_entry())
        assert wq.tail_block_address() == 0x1040

    def test_misaligned_base_rejected(self):
        with pytest.raises(QueueError):
            WorkQueue(4, base_addr=10)

    def test_out_of_range_index_rejected(self):
        wq = WorkQueue(4, base_addr=0)
        with pytest.raises(QueueError):
            wq.entry_address(4)


class TestCompletionQueue:
    def test_post_sets_no_index_on_entry(self):
        cq = CompletionQueue(4, base_addr=0x2000)
        index = cq.post(CompletionQueueEntry(wq_index=3))
        assert index == 0
        assert cq.pop().wq_index == 3


class TestQPManager:
    def test_create_allocates_disjoint_block_ranges(self):
        manager = QPManager(wq_entries=8, cq_entries=8)
        qp0 = manager.create(owner_core=0)
        qp1 = manager.create(owner_core=1)
        blocks0 = set(qp0.qp_blocks())
        blocks1 = set(qp1.qp_blocks())
        assert blocks0.isdisjoint(blocks1)
        assert len(manager) == 2

    def test_duplicate_core_rejected(self):
        manager = QPManager()
        manager.create(owner_core=0)
        with pytest.raises(QueueError):
            manager.create(owner_core=0)

    def test_lookup_by_core_and_id(self):
        manager = QPManager()
        qp = manager.create(owner_core=5, servicing_ni="ni[0]")
        assert manager.for_core(5) is qp
        assert manager.get(qp.qp_id) is qp
        assert qp.servicing_ni == "ni[0]"
        with pytest.raises(QueueError):
            manager.for_core(6)
        with pytest.raises(QueueError):
            manager.get(999)

    def test_all_pairs_ordered(self):
        manager = QPManager()
        for core in (3, 1, 2):
            manager.create(owner_core=core)
        assert [qp.qp_id for qp in manager.all_pairs()] == [0, 1, 2]
