"""Tests for the cache complex and the NI-cache owned-state optimization (§3.4)."""

import pytest

from repro.coherence.caches import L1Cache, NICache, TileCacheComplex
from repro.coherence.states import CacheState
from repro.errors import CoherenceError

BLOCK = 0x1000


def make_collocated_complex(owned_state: bool = True) -> TileCacheComplex:
    """A per-tile/split style complex: L1 plus back-side NI cache."""
    return TileCacheComplex(
        entity_id=("tile", 0),
        node=(0, 0),
        l1=L1Cache(0, access_latency=3),
        ni_cache=NICache("ni0", access_latency=2, owned_state_enabled=owned_state),
    )


class TestStates:
    def test_state_properties(self):
        assert CacheState.MODIFIED.readable and CacheState.MODIFIED.writable
        assert CacheState.SHARED.readable and not CacheState.SHARED.writable
        assert not CacheState.INVALID.readable
        assert CacheState.OWNED.dirty and not CacheState.OWNED.writable
        assert CacheState.EXCLUSIVE.writable and not CacheState.EXCLUSIVE.dirty


class TestCacheArray:
    def test_fill_and_drop(self):
        l1 = L1Cache(0)
        l1.fill(BLOCK, dirty=True)
        assert l1.has_copy(BLOCK) and l1.is_dirty(BLOCK)
        assert l1.drop(BLOCK) is True
        assert not l1.has_copy(BLOCK)

    def test_clean_clears_dirty_bit(self):
        l1 = L1Cache(0)
        l1.fill(BLOCK, dirty=True)
        l1.clean(BLOCK)
        assert l1.has_copy(BLOCK) and not l1.is_dirty(BLOCK)

    def test_ni_cache_owned_marking_requires_presence(self):
        ni = NICache("ni")
        with pytest.raises(CoherenceError):
            ni.mark_owned(BLOCK)


class TestComplexConstruction:
    def test_requires_at_least_one_cache(self):
        with pytest.raises(CoherenceError):
            TileCacheComplex(entity_id=0, node=(0, 0))

    def test_edge_style_complex_has_only_ni_cache(self):
        complex_ = TileCacheComplex(entity_id=("ni_edge", 0), node=(0, 0), ni_cache=NICache("ni"))
        assert complex_.l1 is None
        with pytest.raises(CoherenceError):
            complex_.local_lookup("core", BLOCK, write=False)


class TestInstallAndDirectoryActions:
    def test_install_sets_external_state_and_copy_location(self):
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.MODIFIED, into="core")
        assert complex_.state(BLOCK) is CacheState.MODIFIED
        assert complex_.l1.has_copy(BLOCK)
        assert not complex_.ni_cache.has_copy(BLOCK)
        assert complex_.holds_dirty(BLOCK)

    def test_invalidate_clears_everything(self):
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.MODIFIED, into="ni")
        assert complex_.invalidate(BLOCK) is True
        assert complex_.state(BLOCK) is CacheState.INVALID
        assert not complex_.ni_cache.has_copy(BLOCK)

    def test_downgrade_moves_to_shared_and_cleans(self):
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.MODIFIED, into="core")
        complex_.downgrade(BLOCK)
        assert complex_.state(BLOCK) is CacheState.SHARED
        assert not complex_.holds_dirty(BLOCK)

    def test_install_invalid_state_rejected(self):
        complex_ = make_collocated_complex()
        with pytest.raises(CoherenceError):
            complex_.install(BLOCK, CacheState.INVALID, into="core")


class TestLocalLookups:
    def test_core_write_hit_in_l1(self):
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.MODIFIED, into="core")
        lookup = complex_.local_lookup("core", BLOCK, write=True)
        assert lookup.hit and lookup.source == "l1"
        assert lookup.latency == 3

    def test_miss_when_external_state_is_invalid(self):
        complex_ = make_collocated_complex()
        lookup = complex_.local_lookup("core", BLOCK, write=True)
        assert not lookup.hit

    def test_write_miss_when_only_shared(self):
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.SHARED, into="core")
        lookup = complex_.local_lookup("core", BLOCK, write=True)
        assert not lookup.hit

    def test_ni_read_of_dirty_l1_block_transfers_locally(self):
        """The WQ-read path of the per-tile/split designs (5-cycle transfer)."""
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.MODIFIED, into="core")
        lookup = complex_.local_lookup("ni", BLOCK, write=False)
        assert lookup.hit and lookup.source == "l1"
        assert lookup.latency == 2 + TileCacheComplex.LOCAL_TRANSFER_CYCLES
        # The external state does not change; the core can still write locally.
        assert complex_.state(BLOCK) is CacheState.MODIFIED
        followup = complex_.local_lookup("core", BLOCK, write=True)
        assert followup.hit

    def test_core_read_of_dirty_cq_block_uses_owned_fast_path(self):
        """The CQ-poll path with the owned-state optimization enabled."""
        complex_ = make_collocated_complex(owned_state=True)
        complex_.install(BLOCK, CacheState.MODIFIED, into="ni")
        lookup = complex_.local_lookup("core", BLOCK, write=False)
        assert lookup.hit and not lookup.requires_writeback
        assert complex_.ni_cache.is_owned(BLOCK)
        assert complex_.ni_cache.owned_fast_forwards == 1
        # The NI cache keeps the dirty data for an eventual write-back.
        assert complex_.ni_cache.is_dirty(BLOCK)

    def test_core_read_of_dirty_cq_block_without_owned_state_needs_writeback(self):
        complex_ = make_collocated_complex(owned_state=False)
        complex_.install(BLOCK, CacheState.MODIFIED, into="ni")
        lookup = complex_.local_lookup("core", BLOCK, write=False)
        assert lookup.hit and lookup.requires_writeback
        assert complex_.ni_cache.writebacks == 1

    def test_ni_write_after_owned_forward_hits_locally(self):
        """The next CQ write finds the block still writable inside the complex."""
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.MODIFIED, into="ni")
        complex_.local_lookup("core", BLOCK, write=False)
        lookup = complex_.local_lookup("ni", BLOCK, write=True)
        assert lookup.hit
        assert complex_.ni_cache.is_dirty(BLOCK)

    def test_local_transfer_counter(self):
        complex_ = make_collocated_complex()
        complex_.install(BLOCK, CacheState.MODIFIED, into="core")
        complex_.local_lookup("ni", BLOCK, write=False)
        assert complex_.local_transfers == 1

    def test_unknown_requester_rejected(self):
        complex_ = make_collocated_complex()
        with pytest.raises(CoherenceError):
            complex_.local_lookup("dma", BLOCK, write=False)
