"""Tests for the command-line interface (subcommands + legacy forms)."""

import json

import pytest

from repro.campaign import load_report, load_results
from repro.cli import _normalize_legacy, build_parser, main


class TestParser:
    def test_run_collects_experiment_names(self):
        args = build_parser().parse_args(["run", "table1", "fig5"])
        assert args.command == "run" and args.experiments == ["table1", "fig5"]

    def test_sweep_collects_assignments(self):
        args = build_parser().parse_args(
            ["sweep", "fig6", "--set", "design=edge,split", "--parallel", "4"])
        assert args.experiment == "fig6"
        assert args.assignments == ["design=edge,split"] and args.parallel == 4

    def test_legacy_argv_normalization(self):
        assert _normalize_legacy(["--list"]) == ["list"]
        assert _normalize_legacy(["table1", "fig5"]) == ["run", "table1", "fig5"]
        assert _normalize_legacy(["--fast"]) == ["run", "--fast"]
        assert _normalize_legacy([]) == ["run"]
        assert _normalize_legacy(["sweep", "fig6"]) == ["sweep", "fig6"]


class TestList:
    def test_list_prints_experiment_names(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "fig7" in output

    def test_legacy_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_list_json_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert catalog["schema"] == "repro-catalog/1"
        by_name = {item["name"]: item for item in catalog["experiments"]}
        assert by_name["fig6"]["parameters"][0]["choices"] == ["edge", "per_tile", "split"]
        assert by_name["table1"]["fast"] is True

    def test_list_json_registries(self, capsys):
        assert main(["list", "--json"]) == 0
        registries = json.loads(capsys.readouterr().out)["registries"]
        assert len(registries["designs"]) >= 4
        assert len(registries["topologies"]) >= 3
        assert len(registries["workloads"]) >= 5
        designs = {item["name"]: item for item in registries["designs"]}
        assert designs["numa"]["messaging"] is False
        assert designs["split"]["label"] == "NIsplit"
        workloads = {item["name"]: item for item in registries["workloads"]}
        assert "transfer_bytes" in workloads["hotspot"]["parameters"]

    def test_list_registry_flags(self, capsys):
        assert main(["list", "--workloads"]) == 0
        output = capsys.readouterr().out
        assert "hotspot" in output and "rw_mix" in output
        assert "fig6" not in output  # experiments suppressed by the flag

    def test_scenario_run_with_workload_override(self, capsys):
        assert main(["run", "scenario", "--set", "workload=hotspot",
                     "--set", "params=active_cores=2,ops_per_core=4"]) == 0
        output = capsys.readouterr().out
        assert "hotspot@split/mesh" in output
        assert "application_gbps" in output


class TestRun:
    def test_run_named_analytical_experiments(self, capsys):
        assert main(["run", "table1", "table3"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 3" in output

    def test_legacy_positional_names(self, capsys):
        assert main(["table1", "table3"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 3" in output

    def test_fast_flag_runs_only_analytical_experiments(self, capsys):
        assert main(["--fast"]) == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output and "Figure 7" not in output

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        assert main(["run", "table1", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Table 1" in target.read_text()

    def test_set_overrides_apply_to_declaring_experiments(self, capsys):
        assert main(["run", "table1", "table2", "--set", "hops=3", "--json"]) == 0
        report_doc = json.loads(capsys.readouterr().out)
        params = {entry["request"]["experiment"]: entry["request"]["params"]
                  for entry in report_doc["entries"]}
        assert params["table1"] == {"hops": 3}
        assert params["table2"] == {}  # table2 declares no hops parameter

    def test_json_output_round_trips(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["run", "table1", "--json", str(target)]) == 0
        results = load_results(str(target))
        assert len(results) == 1 and results[0].name == "Table 1"

    def test_csv_output(self, capsys):
        assert main(["run", "table3", "--csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("experiment,")
        assert any(line.startswith("table3,") for line in lines[1:])

    def test_unknown_experiment_reports_error(self, capsys):
        assert main(["run", "not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_set_value_reports_error(self, capsys):
        assert main(["run", "table1", "--set", "hops=x"]) == 2
        assert "hops" in capsys.readouterr().err

    def test_set_matching_no_experiment_reports_error(self, capsys):
        assert main(["run", "table1", "--set", "bogus=1"]) == 2
        assert "matches no parameter" in capsys.readouterr().err


class TestSweep:
    def test_sweep_expands_axis(self, tmp_path, capsys):
        target = tmp_path / "sweep.json"
        assert main(["sweep", "table1", "--set", "hops=1,2,3", "--json", str(target)]) == 0
        report = load_report(str(target))
        assert report.succeeded == 3
        assert [entry.request.params["hops"] for entry in report.entries] == [1, 2, 3]

    def test_sweep_results_round_trip(self, tmp_path, capsys):
        target = tmp_path / "sweep.json"
        assert main(["sweep", "table3", "--set", "hops=1,2", "--json", str(target)]) == 0
        results = load_results(str(target))
        assert len(results) == 2
        assert results[0].column("Design") == results[1].column("Design")

    def test_sweep_rejects_unknown_parameter(self, capsys):
        assert main(["sweep", "table1", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err


class TestReport:
    def test_report_rerenders_saved_json(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["sweep", "table1", "--set", "hops=1,2", "--json", str(target)]) == 0
        capsys.readouterr()
        assert main(["report", str(target)]) == 0
        output = capsys.readouterr().out
        assert output.count("== Table 1 ==") == 2 and "campaign:" in output

    def test_report_missing_file_reports_error(self, capsys):
        assert main(["report", "does-not-exist.json"]) == 2
        assert "cannot read campaign report" in capsys.readouterr().err

    def test_report_csv(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["run", "table1", "--json", str(target)]) == 0
        capsys.readouterr()
        assert main(["report", str(target), "--csv"]) == 0
        assert capsys.readouterr().out.startswith("experiment,")

    def test_report_csv_still_honors_output(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        text_target = tmp_path / "report.txt"
        assert main(["run", "table1", "--json", str(target)]) == 0
        capsys.readouterr()
        assert main(["report", str(target), "--csv", "-", "--output", str(text_target)]) == 0
        capsys.readouterr()
        assert "== Table 1 ==" in text_target.read_text()


class TestCacheDir:
    def test_cache_dir_reuses_results_across_invocations(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "table1", "--cache-dir", cache_dir, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert [entry["cached"] for entry in first["entries"]] == [False]
        assert main(["run", "table1", "--cache-dir", cache_dir, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert [entry["cached"] for entry in second["entries"]] == [True]
