"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_flag(self):
        args = build_parser().parse_args(["--list"])
        assert args.list is True

    def test_experiment_names_collected(self):
        args = build_parser().parse_args(["table1", "fig5"])
        assert args.experiments == ["table1", "fig5"]


class TestMain:
    def test_list_prints_experiment_names(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "fig7" in output

    def test_run_named_analytical_experiments(self, capsys):
        assert main(["table1", "table3"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 3" in output

    def test_fast_flag_runs_only_analytical_experiments(self, capsys):
        assert main(["--fast"]) == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output and "Figure 7" not in output

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        assert main(["table1", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Table 1" in target.read_text()

    def test_unknown_experiment_raises(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            main(["not-an-experiment"])
