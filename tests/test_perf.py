"""Tests for the simulation-performance instrumentation and its surfacing."""

import itertools

import pytest

from repro.campaign.report import CampaignEntry, CampaignReport
from repro.campaign.request import RunRequest
from repro.experiments.base import ExperimentResult, ResultMetadata
from repro.experiments.registry import get_spec
from repro.noc.mesh import MeshTopology
from repro.noc.nocout import NocOutTopology
from repro.sim import perf
from repro.sim.engine import Simulator
from repro.workloads.microbench import RemoteReadBandwidthBenchmark

from helpers import small_config


class TestPerfSession:
    def test_session_counts_events_of_enclosed_simulators(self):
        with perf.session() as session:
            sim = Simulator()
            for i in range(5):
                sim.schedule(i + 1, lambda: None)
            sim.run()
        assert session.events == 5
        assert session.wall_s > 0
        assert session.events_per_s > 0
        assert session.peak_pending_events == 5

    def test_simulators_outside_session_are_invisible(self):
        outside = Simulator()
        outside.schedule(1, lambda: None)
        outside.run()
        with perf.session() as session:
            pass
        assert session.events == 0
        assert session.packets == 0

    def test_nested_sessions_both_observe(self):
        with perf.session() as outer:
            with perf.session() as inner:
                sim = Simulator()
                sim.schedule(1, lambda: None)
                sim.run()
        assert inner.events == 1
        assert outer.events == 1

    def test_summary_is_json_native(self):
        with perf.session() as session:
            sim = Simulator()
            sim.schedule(1, lambda: None)
            sim.run()
        summary = session.summary()
        assert set(summary) == {
            "events", "packets", "wall_s", "events_per_s", "packets_per_s",
            "peak_pending_events", "fused_hops", "fast_events",
            "fault_windows", "fault_hits",
        }
        assert all(isinstance(value, float) for value in summary.values())

    def test_fabric_packets_survive_reset_stats(self):
        from repro.config import MessageClass, SystemConfig
        from repro.noc.fabric import NocFabric

        config = SystemConfig.paper_defaults()
        with perf.session() as session:
            sim = Simulator()
            fabric = NocFabric(sim, MeshTopology(4, config.noc), config.noc)
            for i in range(3):
                fabric.send((0, 0), (3, 3), 64, MessageClass.NI_DATA)
                sim.run()
            fabric.reset_stats()
            assert fabric.packets_sent == 0
        assert session.packets == 3


class TestMetadataSurfacing:
    def test_simulated_experiment_gets_perf_metadata(self):
        result = get_spec("fig6").run(sizes=(64,), iterations=1, warmup=0)
        assert result.metadata.perf
        assert result.metadata.perf["events"] > 0
        assert result.metadata.perf["events_per_s"] > 0

    def test_analytical_experiment_has_empty_perf_block(self):
        result = get_spec("table1").run()
        assert result.metadata.perf == {}

    def test_perf_and_warnings_round_trip_through_json(self):
        result = ExperimentResult(
            name="t", description="", headers=["a"], rows=[[1]],
            metadata=ResultMetadata(
                perf={"events": 10.0, "events_per_s": 5.0},
                warnings=["did not converge"],
            ),
        )
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.metadata.perf == {"events": 10.0, "events_per_s": 5.0}
        assert restored.metadata.warnings == ["did not converge"]


class TestConvergencePropagation:
    def test_benchmark_flags_window_budget_exhaustion(self):
        bench = RemoteReadBandwidthBenchmark(
            small_config(),
            warmup_cycles=500,
            measure_cycles=500,
            converge=True,
            tolerance=1e-12,
            max_windows=2,
        )
        run = bench.run(512)
        assert run.measurement_windows == 2
        assert run.converged_naturally is False
        assert run.convergence_warning is not None

    def test_benchmark_converges_with_loose_tolerance(self):
        bench = RemoteReadBandwidthBenchmark(
            small_config(),
            warmup_cycles=2_000,
            measure_cycles=2_000,
            converge=True,
            tolerance=0.5,
            max_windows=8,
        )
        run = bench.run(512)
        assert run.converged_naturally is True
        assert run.convergence_warning is None

    def test_fixed_window_run_has_no_convergence_fields(self):
        bench = RemoteReadBandwidthBenchmark(
            small_config(), warmup_cycles=500, measure_cycles=1_000
        )
        run = bench.run(512)
        assert run.measurement_windows == 0
        assert run.converged_naturally is None
        assert run.convergence_warning is None

    def test_fig7_propagates_warning_into_result_metadata(self):
        result = get_spec("fig7").run(
            design="split",
            sizes=(512,),
            warmup_cycles=500.0,
            measure_cycles=500.0,
            converge=True,
            tolerance=1e-12,
            max_windows=2,
        )
        assert result.metadata.warnings
        assert "did not converge" in result.metadata.warnings[0]


class TestCampaignSurfacing:
    def _entry(self, perf_block=None, warnings=None):
        result = ExperimentResult(
            name="t", description="", headers=["a"], rows=[[1]],
            metadata=ResultMetadata(
                perf=dict(perf_block or {}),
                warnings=list(warnings or []),
            ),
        )
        return CampaignEntry(request=RunRequest("fig6"), result=result)

    def test_summary_includes_simulated_event_rate(self):
        report = CampaignReport(entries=[
            self._entry(perf_block={"events": 1000.0, "wall_s": 0.5}),
            self._entry(perf_block={"events": 500.0, "wall_s": 0.5}),
        ])
        assert report.simulated_events == 1500
        summary = report.summary()
        assert "1500 simulated event(s)" in summary
        assert "1500 events/s" in summary

    def test_summary_without_perf_stays_unchanged(self):
        report = CampaignReport(entries=[self._entry()])
        assert "simulated event(s)" not in report.summary()

    def test_cached_entries_do_not_double_count(self):
        cached = self._entry(perf_block={"events": 1000.0, "wall_s": 0.5})
        cached.cached = True
        report = CampaignReport(entries=[cached])
        assert report.simulated_events == 0

    def test_format_lists_warnings(self):
        report = CampaignReport(entries=[self._entry(warnings=["w1"])])
        formatted = report.format()
        assert "warning: fig6: w1" in formatted


class TestExperimentDeterminismWithCache:
    """fig6/table1 outputs must be byte-identical with the cache bypassed."""

    def _strip_timing(self, result):
        result.metadata.wall_time_s = 0.0
        result.metadata.perf = {}
        return result

    def _run_with_cache_state(self, monkeypatch, disabled, spec_name, **params):
        import repro.noc.packet as packet_module

        if disabled:
            monkeypatch.setattr(
                MeshTopology, "route_cache_key", lambda self, *a, **k: None
            )
            monkeypatch.setattr(
                NocOutTopology, "route_cache_key", lambda self, *a, **k: None
            )
        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        return self._strip_timing(get_spec(spec_name).run(**params))

    def test_fig6_byte_identical_with_and_without_cache(self, monkeypatch):
        params = dict(sizes=(64, 1024), iterations=2, warmup=1)
        with monkeypatch.context() as patch:
            cached = self._run_with_cache_state(patch, False, "fig6", **params)
        with monkeypatch.context() as patch:
            uncached = self._run_with_cache_state(patch, True, "fig6", **params)
        assert cached.to_csv() == uncached.to_csv()
        assert cached.format() == uncached.format()
        assert cached.to_dict() == uncached.to_dict()

    def test_table1_byte_identical_with_and_without_cache(self, monkeypatch):
        with monkeypatch.context() as patch:
            cached = self._run_with_cache_state(patch, False, "table1")
        with monkeypatch.context() as patch:
            uncached = self._run_with_cache_state(patch, True, "table1")
        assert cached.to_csv() == uncached.to_csv()
        assert cached.to_dict() == uncached.to_dict()

    def test_fig7_byte_identical_with_and_without_cache(self, monkeypatch):
        params = dict(
            design="split", sizes=(256,), warmup_cycles=200.0, measure_cycles=400.0
        )
        with monkeypatch.context() as patch:
            cached = self._run_with_cache_state(patch, False, "fig7", **params)
        with monkeypatch.context() as patch:
            uncached = self._run_with_cache_state(patch, True, "fig7", **params)
        assert cached.to_csv() == uncached.to_csv()
        assert cached.to_dict() == uncached.to_dict()
