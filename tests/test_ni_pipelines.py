"""Tests for the RGP/RCP/RRPP pipelines and the design assemblies."""

import pytest

from helpers import small_config

from repro.config import NIDesign
from repro.core.base import TransferTable
from repro.errors import PlacementError, ProtocolError
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.sonuma.wire import RemoteRequest


class TestTransferTable:
    def test_create_get_retire(self):
        table = TransferTable()
        record = table.create(core_id=1, qp=None, entry=None, total_blocks=2, issued_at=0.0)
        assert record.transfer_id in table
        assert not record.is_complete
        record.blocks_completed = 2
        assert record.is_complete
        retired = table.retire(record.transfer_id)
        assert retired is record
        assert table.in_flight == 0
        assert table.retired == 1

    def test_retire_incomplete_rejected(self):
        table = TransferTable()
        record = table.create(0, None, None, total_blocks=4, issued_at=0.0)
        with pytest.raises(ProtocolError):
            table.retire(record.transfer_id)

    def test_unknown_transfer_rejected(self):
        with pytest.raises(ProtocolError):
            TransferTable().get(42)


def run_transfer(config, core_id=0, length=256):
    """Drive one transfer through the NI pipelines without a CoreModel."""
    soc = ManycoreSoc(config)
    soc.register_context(0, size_bytes=1 << 22)
    emulator = RemoteEndEmulator(soc, hops=1)
    qp = soc.create_queue_pair(core_id)
    entry = WorkQueueEntry(RemoteOp.READ, 0, 1, 0, 0x900_0000, length)
    index = qp.wq.post(entry)
    soc.ni.frontend_for_core(core_id).post_doorbell(qp, core_id, entry, index)
    soc.run()
    return soc, emulator, qp


class TestRequestGeneration:
    def test_split_backend_unrolls_to_block_requests(self, split_config):
        soc, emulator, qp = run_transfer(split_config, length=512)
        backend = soc.ni.backends[soc.placement.backend_index_for_tile(0)]
        assert backend.transfers_started == 1
        assert backend.blocks_injected == 8
        assert emulator.outgoing_requests == 8

    def test_completion_writes_exactly_one_cq_entry(self, split_config):
        soc, _, qp = run_transfer(split_config, length=512)
        assert qp.cq.count == 1
        assert qp.cq.peek().length == 512

    def test_per_tile_requests_cross_the_noc_to_the_port(self, per_tile_config):
        soc, emulator, _ = run_transfer(per_tile_config, core_id=5, length=256)
        # Core 5 sits at (1, 1) in a 4x4 mesh: its requests and responses
        # must traverse the on-chip network, unlike the edge/split backends.
        assert soc.fabric.packets_sent > 4
        assert emulator.outgoing_requests == 4

    def test_frontend_without_backend_rejected(self, split_config):
        soc = ManycoreSoc(split_config)
        frontend = soc.ni.frontend_for_core(0)
        frontend.backend = None
        with pytest.raises(ProtocolError):
            frontend.post_doorbell(None, 0, None, 0)

    def test_transfer_retired_after_completion(self, split_config):
        soc, _, _ = run_transfer(split_config)
        assert soc.ni.transfers.in_flight == 0
        assert soc.ni.transfers.retired == 1


class TestRemoteRequestProcessing:
    def test_incoming_request_is_serviced_and_answered(self, split_config):
        soc = ManycoreSoc(split_config)
        soc.register_context(0, size_bytes=1 << 22)
        emulator = RemoteEndEmulator(soc, hops=1)
        request = RemoteRequest(RemoteOp.READ, src_node=1, dst_node=0, ctx_id=0, offset=4096)
        soc.deliver_remote_request(request)
        soc.run()
        rrpp = soc.ni.rrpp_for_request(request)
        assert rrpp.requests_received == 1
        assert rrpp.responses_sent == 1
        assert rrpp.payload_bytes_serviced == 64
        assert emulator.outgoing_responses == 1
        assert rrpp.service_latency.mean > 100  # includes the DRAM access

    def test_rrpp_steering_is_address_interleaved(self, split_config):
        soc = ManycoreSoc(split_config)
        block = split_config.cache_block_bytes
        slices = soc.placement.llc_slice_count
        rrpps = len(soc.ni.rrpps)
        seen = set()
        for block_index in range(slices):
            request = RemoteRequest(RemoteOp.READ, 1, 0, 0, offset=block_index * block)
            seen.add(soc.ni.rrpp_for_request(request).index)
        assert seen == set(range(rrpps))

    def test_remote_write_request_updates_memory(self, split_config):
        soc = ManycoreSoc(split_config)
        soc.register_context(0, size_bytes=1 << 22)
        RemoteEndEmulator(soc, hops=1)
        request = RemoteRequest(RemoteOp.WRITE, 1, 0, 0, offset=0)
        soc.deliver_remote_request(request)
        soc.run()
        writes = sum(mc.dram.writes for mc in soc.memory_controllers)
        assert writes == 1


class TestAssemblyRouting:
    def test_unknown_core_rejected(self, split_config):
        soc = ManycoreSoc(split_config)
        with pytest.raises(PlacementError):
            soc.ni.frontend_for_core(999)

    def test_average_rrpp_latency_starts_at_zero(self, split_config):
        soc = ManycoreSoc(split_config)
        assert soc.ni.average_rrpp_latency() == 0.0

    def test_design_markers(self):
        from repro.core.edge import NIEdgeDesign
        from repro.core.per_tile import NIPerTileDesign
        from repro.core.split import NISplitDesign
        assert NIEdgeDesign.design is NIDesign.EDGE
        assert NIPerTileDesign.design is NIDesign.PER_TILE
        assert NISplitDesign.design is NIDesign.SPLIT

    def test_factory_rejects_numa(self, split_config):
        from repro.core.factory import build_ni_design
        from repro.errors import ConfigurationError
        soc = ManycoreSoc(split_config)
        soc.config = small_config(NIDesign.NUMA)
        with pytest.raises(ConfigurationError):
            build_ni_design(soc, soc.placement)
