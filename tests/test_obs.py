"""Tests for repro.obs: probes, the stream channel, sampling, and watch.

The two contracts under test, straight from the subsystem's charter:

* **obs disabled** — running any experiment with no active session produces
  byte-identical results to a tree without the subsystem (sampling hooks
  cost one truthiness check and change nothing);
* **obs enabled** — a seeded run's stream is deterministic in *content*:
  re-running, or splitting the same campaign across ``--parallel`` worker
  counts, yields identical sorted streams (only interleaving varies).
"""

import io
import itertools
import json

import pytest

import repro.noc.packet as packet_module
from repro.campaign import Campaign, RunRequest, expand_grid
from repro.errors import ExperimentError, ObsError, RegistryError
from repro.experiments.registry import get_spec
from repro.obs import hooks
from repro.obs.probes import (
    FaultWindowsProbe,
    HeapHealthProbe,
    ProbeContext,
    QueueDepthProbe,
    RollingTailsProbe,
    TelemetryProbe,
    ThroughputProbe,
)
from repro.obs.sampler import Sampler
from repro.obs.session import DEFAULT_SAMPLE_CYCLES, ObsSession
from repro.obs.stream import (
    STREAM_SCHEMA,
    ObsStream,
    read_stream,
    validate_record,
)
from repro.obs.watch import WatchState, render, watch_command
from repro.scenario.registry import PROBES
from repro.sim.engine import Simulator

ALL_PROBES = ["fault_windows", "heap_health", "queue_depth", "rolling_tails",
              "throughput"]

#: A short but real open-loop sweep, used wherever a stream with actual
#: samples is needed.  Small windows keep each run around a dozen ticks.
SWEEP_PARAMS = {"loads": [5.0, 20.0], "warmup_cycles": 1000.0,
                "measure_cycles": 4000.0}


def _session(tmp_path, name="stream.jsonl", **kwargs):
    path = str(tmp_path / name)
    return ObsSession(ObsStream.open(path), **kwargs), path


def _reset_packet_ids(patch):
    patch.setattr(packet_module, "_packet_ids", itertools.count())


class TestProbeRegistry:
    def test_probes_are_the_eighth_registry(self):
        assert PROBES.names() == ALL_PROBES

    def test_lookup_and_resolve(self):
        assert PROBES.get("throughput") is ThroughputProbe
        assert PROBES.resolve("rolling_tails") == "rolling_tails"

    def test_unknown_probe_rejected(self):
        with pytest.raises(RegistryError):
            PROBES.resolve("bogus_probe")

    def test_every_probe_declares_slots(self):
        # REP008 enforces this statically; here we prove it holds at runtime
        # (a slotted instance has no per-instance __dict__).
        for name in PROBES.names():
            probe = PROBES.get(name).from_params()
            assert not hasattr(probe, "__dict__"), name

    def test_from_params_rejects_unknown(self):
        with pytest.raises(ObsError, match="unknown parameter"):
            RollingTailsProbe.from_params(window=10)

    def test_from_params_applies_defaults_and_overrides(self):
        assert RollingTailsProbe.from_params().window_cycles == 500.0
        assert RollingTailsProbe.from_params(window_cycles=250.0).window_cycles == 250.0
        with pytest.raises(ObsError):
            RollingTailsProbe.from_params(window_cycles=0.0)

    def test_base_sample_is_abstract(self):
        class Dummy(TelemetryProbe):
            __slots__ = ()

        with pytest.raises(NotImplementedError):
            Dummy().sample(ProbeContext())


class TestProbeSampling:
    def test_probes_skip_when_source_missing(self):
        empty = ProbeContext()
        assert RollingTailsProbe().sample(empty) is None
        assert ThroughputProbe().sample(empty) is None
        assert QueueDepthProbe().sample(empty) is None
        assert FaultWindowsProbe().sample(empty) is None
        assert HeapHealthProbe().sample(empty) is None

    def test_heap_health_reads_kernel_counters(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        payload = HeapHealthProbe().sample(ProbeContext(sim=sim))
        assert payload == {"pending": 1, "peak_pending": 1,
                           "cancelled_backlog": 0, "executed": 0}

    def test_throughput_tracks_deltas(self):
        sim = Simulator()
        probe = ThroughputProbe()
        first = probe.sample(ProbeContext(sim=sim))
        assert first["delta_events"] == 0 and first["packets"] == 0
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        second = probe.sample(ProbeContext(sim=sim))
        assert second["events"] == 3 and second["delta_events"] == 3

    def test_payloads_are_json_native(self):
        sim = Simulator()
        for probe_cls in (HeapHealthProbe, ThroughputProbe):
            payload = probe_cls().sample(ProbeContext(sim=sim))
            assert json.loads(json.dumps(payload)) == payload


class TestStreamSchema:
    def test_emit_stamps_schema_and_counts(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        stream = ObsStream.open(path)
        stream.emit({"event": "entry_started", "index": 0, "entry": "table1",
                     "fingerprint": "abc"})
        stream.close()
        records = read_stream(path)
        assert stream.records == 1 and len(records) == 1
        assert records[0]["schema"] == STREAM_SCHEMA

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        stream = ObsStream.open(path)
        stream.emit({"event": "explore_round", "round": 1, "proposed": 4,
                     "evaluated": 4})
        stream.close()
        with open(path) as handle:
            line = handle.read().strip()
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))

    def test_validate_rejects_non_objects_and_unknown_events(self):
        assert validate_record([1, 2]) == ["record is not a JSON object"]
        problems = validate_record({"schema": STREAM_SCHEMA, "event": "nope"})
        assert any("unknown event" in p for p in problems)

    def test_validate_requires_event_fields(self):
        problems = validate_record({"schema": STREAM_SCHEMA, "event": "sample"})
        missing = {p for p in problems if "missing field" in p}
        assert len(missing) == 5  # run, sim, t, probe, data

    def test_validate_type_checks(self):
        base = {"schema": STREAM_SCHEMA, "event": "sample", "run": "r",
                "sim": 0, "t": 10.0, "probe": "throughput", "data": {}}
        assert validate_record(base) == []
        for field, bad, fragment in [
            ("t", "10", "'t' must be sim time"),
            ("t", True, "'t' must be sim time"),
            ("sim", "0", "'sim' must be an integer"),
            ("probe", 3, "'probe' must be a string"),
            ("data", [1], "'data' must be an object"),
        ]:
            record = dict(base)
            record[field] = bad
            assert any(fragment in p for p in validate_record(record)), field

    def test_validate_ok_must_be_boolean(self):
        record = {"schema": STREAM_SCHEMA, "event": "entry_finished",
                  "index": 0, "fingerprint": "abc", "ok": 1}
        assert any("'ok' must be a boolean" in p for p in validate_record(record))

    def test_wall_clock_keys_banned_at_any_depth(self):
        record = {"schema": STREAM_SCHEMA, "event": "sample", "run": "r",
                  "sim": 0, "t": 1.0, "probe": "p",
                  "data": {"nested": [{"wall_s": 0.1}]}}
        problems = validate_record(record)
        assert any("data.nested[0].wall_s" in p for p in problems)
        top = {"schema": STREAM_SCHEMA, "event": "explore_round", "round": 1,
               "proposed": 1, "evaluated": 1, "timestamp": 12345}
        assert any("'timestamp'" in p for p in validate_record(top))

    def test_emit_refuses_invalid_records(self, tmp_path):
        stream = ObsStream.open(str(tmp_path / "s.jsonl"))
        with pytest.raises(ObsError, match="refusing to emit"):
            stream.emit({"event": "sample"})
        assert stream.records == 0
        stream.close()

    def test_read_stream_reports_bad_json_with_line_number(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"ok": true}\nnot json\n')
        with pytest.raises(ObsError, match=":2:"):
            read_stream(path)

    def test_open_truncates_but_attach_appends(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        record = {"event": "explore_round", "round": 1, "proposed": 1,
                  "evaluated": 1}
        first = ObsStream.open(path)
        first.emit(record)
        first.close()
        attached = ObsStream.attach(path)
        attached.emit(record)
        attached.close()
        assert len(read_stream(path)) == 2
        reopened = ObsStream.open(path)
        reopened.close()
        assert read_stream(path) == []


class TestHooksAndSession:
    def test_no_session_by_default(self):
        assert hooks.active() is None
        assert hooks.register_simulator(object()) is None

    def test_activate_pushes_and_pops(self, tmp_path):
        session, _ = _session(tmp_path)
        assert hooks.active() is None
        with session.activate(run="outer"):
            assert hooks.active() is session
        assert hooks.active() is None
        session.close()

    def test_nested_sessions_innermost_wins(self, tmp_path):
        outer, _ = _session(tmp_path, "a.jsonl")
        inner, _ = _session(tmp_path, "b.jsonl")
        with outer.activate():
            with inner.activate():
                assert hooks.active() is inner
            assert hooks.active() is outer
        outer.close()
        inner.close()

    def test_simulator_indices_restart_per_run(self, tmp_path):
        session, _ = _session(tmp_path)
        session.set_run("first")
        assert [session.register_simulator(object()) for _ in range(3)] == [0, 1, 2]
        session.set_run("second")
        assert session.register_simulator(object()) == 0
        assert session.run_label == "second"
        session.close()

    def test_simulator_self_registers_while_active(self, tmp_path):
        session, _ = _session(tmp_path)
        with session.activate(run="r"):
            assert Simulator()._obs_index == 0
            assert Simulator()._obs_index == 1
        assert Simulator()._obs_index is None
        session.close()

    def test_default_probe_set_and_cadence(self, tmp_path):
        session, _ = _session(tmp_path)
        assert session.probe_names == ALL_PROBES
        assert session.sample_cycles == DEFAULT_SAMPLE_CYCLES
        session.close()

    def test_probe_subset_resolved_and_validated(self, tmp_path):
        session, _ = _session(tmp_path, probes=["throughput"])
        assert session.probe_names == ["throughput"]
        session.close()
        with pytest.raises(RegistryError):
            _session(tmp_path, name="x.jsonl", probes=["bogus"])

    def test_cadence_must_be_positive(self, tmp_path):
        with pytest.raises(ObsError, match="cadence"):
            _session(tmp_path, sample_cycles=0.0)

    def test_worker_spec_round_trip(self, tmp_path):
        session, path = _session(tmp_path, probes=["heap_health"],
                                 sample_cycles=250.0)
        spec = session.worker_spec()
        assert spec == {"path": path, "probes": ["heap_health"],
                        "sample_cycles": 250.0}
        rebuilt = ObsSession.from_worker_spec(spec)
        assert rebuilt.probe_names == ["heap_health"]
        assert rebuilt.sample_cycles == 250.0
        rebuilt.close()
        session.close()

    def test_pathless_sink_has_no_worker_spec(self):
        session = ObsSession(ObsStream(io.StringIO()))
        assert session.worker_spec() is None


class TestSampler:
    def test_sample_now_emits_one_record_per_live_probe(self, tmp_path):
        session, path = _session(tmp_path, probes=["heap_health", "queue_depth"])
        with session.activate(run="r"):
            sim = Simulator()
            # queue_depth has no states here, so only heap_health fires.
            Sampler(session, sim, ProbeContext(sim=sim), horizon=0.0).sample_now()
        session.close()
        records = read_stream(path)
        assert [r["probe"] for r in records] == ["heap_health"]
        assert records[0]["run"] == "r" and records[0]["sim"] == 0

    def test_install_ticks_at_cadence_up_to_horizon(self, tmp_path):
        session, path = _session(tmp_path, probes=["heap_health"],
                                 sample_cycles=10.0)
        with session.activate(run="r"):
            sim = Simulator()
            sampler = Sampler(session, sim, ProbeContext(sim=sim), horizon=35.0)
            sampler.install()
            sim.schedule(100.0, lambda: None)  # keep the run going past it
            sim.run()
        session.close()
        # Ticks at t=10, 20, 30; t=40 would overshoot the horizon.
        assert [r["t"] for r in read_stream(path)] == [10.0, 20.0, 30.0]

    def test_sampler_never_keeps_a_drained_sim_alive(self, tmp_path):
        session, _ = _session(tmp_path, sample_cycles=10.0)
        with session.activate(run="r"):
            sim = Simulator()
            Sampler(session, sim, ProbeContext(sim=sim), horizon=1000.0).install()
            sim.run()  # no other work: must terminate, not tick forever
            assert sim.now <= 1000.0
        session.close()


class TestDriverIntegration:
    def test_load_sweep_stream_has_expected_probes(self, tmp_path, monkeypatch):
        session, path = _session(tmp_path)
        _reset_packet_ids(monkeypatch)
        with session.activate(run="load_sweep"):
            get_spec("load_sweep").run(**SWEEP_PARAMS)
        session.close()
        records = read_stream(path)
        assert records, "driver produced no samples"
        for record in records:
            assert validate_record(record) == []
        probes_seen = {r["probe"] for r in records}
        # Fault-free run: the sampler installs WindowedTails for
        # rolling_tails, and fault_windows correctly never fires.
        assert {"rolling_tails", "throughput", "queue_depth",
                "heap_health"} <= probes_seen
        assert "fault_windows" not in probes_seen
        assert all(r["run"] == "load_sweep" for r in records)

    def test_chaos_sweep_streams_fault_windows(self, tmp_path, monkeypatch):
        session, path = _session(tmp_path, probes=["fault_windows"])
        _reset_packet_ids(monkeypatch)
        with session.activate(run="chaos"):
            get_spec("chaos_sweep").run(
                faults="router_degrade", loads=(5.0,), intensities=(0.5,),
                warmup_cycles=1000.0, measure_cycles=4000.0)
        session.close()
        records = read_stream(path)
        assert records and all(r["probe"] == "fault_windows" for r in records)
        assert {r["data"]["model"] for r in records} == {"router_degrade"}

    def test_sample_times_follow_cadence(self, tmp_path, monkeypatch):
        session, path = _session(tmp_path, probes=["heap_health"],
                                 sample_cycles=1000.0)
        _reset_packet_ids(monkeypatch)
        with session.activate(run="r"):
            get_spec("load_sweep").run(loads=[5.0], warmup_cycles=1000.0,
                                       measure_cycles=3000.0)
        session.close()
        times = [r["t"] for r in read_stream(path)]
        assert times == [1000.0, 2000.0, 3000.0, 4000.0]


class TestObsOffEquivalence:
    """Obs disabled must be byte-identical to obs never having existed."""

    def _run(self, monkeypatch, spec_name, obs, tmp_path, **params):
        with monkeypatch.context() as patch:
            _reset_packet_ids(patch)
            if not obs:
                result = get_spec(spec_name).run(**params)
            else:
                session, _ = _session(tmp_path, name="eq-%s.jsonl" % spec_name)
                with session.activate(run=spec_name):
                    result = get_spec(spec_name).run(**params)
                session.close()
        result.metadata.wall_time_s = 0.0
        result.metadata.perf = {}
        return result

    def _compare(self, monkeypatch, tmp_path, spec_name, **params):
        on = self._run(monkeypatch, spec_name, True, tmp_path, **params)
        off = self._run(monkeypatch, spec_name, False, tmp_path, **params)
        assert on.to_csv() == off.to_csv()
        assert on.format() == off.format()
        assert json.dumps(on.to_dict(), sort_keys=True) == \
            json.dumps(off.to_dict(), sort_keys=True)

    def test_fig6_unperturbed_by_obs(self, monkeypatch, tmp_path):
        self._compare(monkeypatch, tmp_path, "fig6", sizes=(64, 1024),
                      iterations=2, warmup=1)

    def test_table1_unperturbed_by_obs(self, monkeypatch, tmp_path):
        self._compare(monkeypatch, tmp_path, "table1")

    def test_load_sweep_unperturbed_by_obs(self, monkeypatch, tmp_path):
        self._compare(monkeypatch, tmp_path, "load_sweep", **SWEEP_PARAMS)

    def test_fingerprints_unperturbed_by_obs(self, monkeypatch, tmp_path):
        on = self._run(monkeypatch, "load_sweep", True, tmp_path, **SWEEP_PARAMS)
        off = self._run(monkeypatch, "load_sweep", False, tmp_path, **SWEEP_PARAMS)
        assert on.metadata.config_fingerprint == off.metadata.config_fingerprint


class TestStreamDeterminism:
    def _sorted_stream(self, tmp_path, name, max_workers=1):
        session, path = _session(tmp_path, name)
        requests = expand_grid("load_sweep", {"loads": [[5.0], [20.0]],
                                              "warmup_cycles": [1000.0],
                                              "measure_cycles": [4000.0]})
        Campaign(requests, max_workers=max_workers, obs=session).run()
        session.close()
        with open(path) as handle:
            return sorted(line for line in handle if line.strip())

    def test_rerun_is_identical(self, tmp_path):
        assert self._sorted_stream(tmp_path, "a.jsonl") == \
            self._sorted_stream(tmp_path, "b.jsonl")

    def test_worker_count_only_permutes_the_stream(self, tmp_path):
        inline = self._sorted_stream(tmp_path, "inline.jsonl")
        pooled = self._sorted_stream(tmp_path, "pooled.jsonl", max_workers=2)
        assert inline and inline == pooled


class TestCampaignEvents:
    def test_started_and_finished_pairs(self, tmp_path):
        session, path = _session(tmp_path, probes=["heap_health"])
        requests = expand_grid("table1", {"hops": [1, 2]})
        Campaign(requests, obs=session).run()
        session.close()
        records = read_stream(path)
        events = [r["event"] for r in records]
        assert events.count("entry_started") == 2
        assert events.count("entry_finished") == 2
        finished = [r for r in records if r["event"] == "entry_finished"]
        assert all(r["ok"] for r in finished)
        fingerprints = {r.fingerprint() for r in requests}
        assert {r["fingerprint"] for r in finished} == fingerprints

    def test_cached_entries_emit_entry_cached(self, tmp_path):
        from repro.campaign import ResultCache

        cache = ResultCache()
        request = RunRequest("table1")
        Campaign([request], cache=cache).run()  # warm, unstreamed
        session, path = _session(tmp_path)
        Campaign([request], cache=cache, obs=session).run()
        session.close()
        events = [r["event"] for r in read_stream(path)]
        assert events == ["entry_cached"]

    def test_failed_entry_streams_error_with_fingerprint(self, tmp_path):
        session, path = _session(tmp_path, probes=["heap_health"])
        request = RunRequest("load_sweep", {"measure_cycles": -5.0,
                                            "loads": [5.0],
                                            "warmup_cycles": 100.0})
        Campaign([request], obs=session).run()
        session.close()
        finished = [r for r in read_stream(path)
                    if r["event"] == "entry_finished"]
        assert len(finished) == 1 and finished[0]["ok"] is False
        assert "[config %s]" % request.fingerprint() in finished[0]["error"]

    def test_sample_runs_are_labelled_by_fingerprint(self, tmp_path):
        session, path = _session(tmp_path, probes=["heap_health"])
        request = RunRequest("load_sweep", dict(SWEEP_PARAMS, loads=[5.0]))
        Campaign([request], obs=session).run()
        session.close()
        samples = [r for r in read_stream(path) if r["event"] == "sample"]
        assert samples
        assert {r["run"] for r in samples} == {request.fingerprint()}


class TestExploreEvents:
    def test_explore_streams_rounds_and_points(self, tmp_path):
        from repro.explore import Explorer, build_space

        session, path = _session(tmp_path, probes=["heap_health"])
        space = build_space(
            "load_sweep",
            ["design=edge,split"],
            {"loads": [6.0], "warmup_cycles": 1000.0, "measure_cycles": 2000.0},
        )
        Explorer(space, strategy="grid_screen", objectives=["p99"], seed=3,
                 budget=2, obs=session).run()
        session.close()
        records = read_stream(path)
        for record in records:
            assert validate_record(record) == []
        events = [r["event"] for r in records]
        assert events.count("explore_round") >= 1
        assert events.count("explore_point") == 2
        points = [r for r in records if r["event"] == "explore_point"]
        assert all("objectives" in r and r["fingerprint"] for r in points)


class TestWatch:
    def _sample(self, run="abc", t=100.0, probe="throughput", data=None):
        return {"schema": STREAM_SCHEMA, "event": "sample", "run": run,
                "sim": 0, "t": t, "probe": probe,
                "data": data if data is not None else {}}

    def test_state_folds_entries_and_runs(self):
        state = WatchState()
        state.feed({"schema": STREAM_SCHEMA, "event": "entry_started",
                    "index": 0, "entry": "load_sweep", "fingerprint": "abc"})
        state.feed(self._sample(t=100.0, data={"events": 5, "packets": 10}))
        state.feed(self._sample(t=200.0, data={"events": 9, "packets": 30}))
        state.feed(self._sample(t=200.0, probe="rolling_tails",
                                data={"p99": 42.0}))
        state.feed({"schema": STREAM_SCHEMA, "event": "entry_finished",
                    "index": 0, "fingerprint": "abc", "ok": True})
        assert state.entries[0]["status"] == "ok"
        run = state.runs["abc"]
        assert run["samples"] == 3 and run["t"] == 200.0
        assert run["p99"] == 42.0
        # 20 packets over 100 cycles = 200 per kilocycle.
        assert run["pk_per_kcycle"] == 200.0

    def test_render_contains_the_summary(self):
        state = WatchState()
        state.feed({"schema": STREAM_SCHEMA, "event": "entry_cached",
                    "index": 1, "entry": "table1", "fingerprint": "feed"})
        state.feed({"schema": STREAM_SCHEMA, "event": "explore_round",
                    "round": 0, "proposed": 4, "evaluated": 4})
        text = render(state)
        assert "repro-obs-stream/1: 2 record(s)" in text
        assert "[1] cached  feed table1" in text
        assert "explore: 1 round(s)" in text

    def test_failed_entry_renders_error(self):
        state = WatchState()
        state.feed({"schema": STREAM_SCHEMA, "event": "entry_finished",
                    "index": 0, "fingerprint": "abc", "ok": False,
                    "error": "boom [config abc]"})
        text = render(state)
        assert "failed" in text and "error: boom [config abc]" in text

    def test_feed_line_check_collects_problems(self):
        state = WatchState()
        state.feed_line("not json", check=True)
        state.feed_line(json.dumps({"schema": "wrong/9", "event": "sample"}),
                        check=True)
        assert len(state.invalid) >= 2
        assert state.records == 0

    def test_watch_command_ok_stream(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        stream = ObsStream.open(path)
        stream.emit({"event": "sample", "run": "r", "sim": 0, "t": 5.0,
                     "probe": "heap_health", "data": {"pending": 1}})
        stream.close()
        out = io.StringIO()
        assert watch_command(path, check=True, out=out) == 0
        assert "1 record(s)" in out.getvalue()

    def test_watch_command_flags_invalid_lines(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"schema": "repro-obs-stream/1", "event": "nope"}\n')
        out = io.StringIO()
        assert watch_command(path, check=True, out=out) == 1
        assert "INVALID records: 1" in out.getvalue()

    def test_watch_without_check_tolerates_schema_drift(self, tmp_path):
        # No --check: unparseable JSON still fails, schema problems do not.
        path = str(tmp_path / "drift.jsonl")
        with open(path, "w") as handle:
            handle.write('{"schema": "repro-obs-stream/99", "event": "sample"}\n')
        out = io.StringIO()
        assert watch_command(path, check=False, out=out) == 0


class TestCli:
    def test_list_probes(self, capsys):
        from repro.cli import main

        assert main(["list", "--probes"]) == 0
        output = capsys.readouterr().out
        for name in ALL_PROBES:
            assert name in output

    def test_json_catalog_includes_probes(self, capsys):
        from repro.cli import main

        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        names = [item["name"] for item in catalog["registries"]["probes"]]
        assert names == ALL_PROBES

    def test_probes_flag_requires_stream(self, capsys):
        from repro.cli import main

        assert main(["run", "table1", "--probes", "heap_health"]) == 2
        assert "require --stream" in capsys.readouterr().err

    def test_run_with_stream_produces_valid_records(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.jsonl")
        assert main(["run", "load_sweep", "--set", "loads=5",
                     "--set", "warmup_cycles=1000",
                     "--set", "measure_cycles=3000",
                     "--stream", path, "--probes", "heap_health,throughput",
                     "--sample-cycles", "1000"]) == 0
        capsys.readouterr()
        records = read_stream(path)
        assert records
        for record in records:
            assert validate_record(record) == []
        probes_seen = {r["probe"] for r in records if r["event"] == "sample"}
        assert probes_seen == {"heap_health", "throughput"}

    def test_watch_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "w.jsonl")
        stream = ObsStream.open(path)
        stream.emit({"event": "entry_started", "index": 0, "entry": "table1",
                     "fingerprint": "abc"})
        stream.emit({"event": "entry_finished", "index": 0,
                     "fingerprint": "abc", "ok": True})
        stream.close()
        assert main(["watch", path, "--check"]) == 0
        output = capsys.readouterr().out
        assert "[0] ok" in output
