"""Tests for repro.lint: the determinism & kernel-contract linter.

Every REP rule is proven both ways: a deliberately seeded violation fixture
must produce the finding, and its clean twin must not.  A whole-tree test
then asserts ``repro lint src/repro`` reports zero findings — the same gate
CI runs with the committed (empty) baseline.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.errors import LintError, RegistryError
from repro.lint import (
    Baseline,
    Finding,
    LINT_RULES,
    LintRule,
    lint_paths,
    parse_report,
    register_lint_rule,
    render_json,
    render_text,
)
from repro.lint import manifest as lint_manifest
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_TREE = os.path.join(REPO_ROOT, "src", "repro")
COMMITTED_BASELINE = os.path.join(REPO_ROOT, "tools", "lint_baseline.json")
COMMITTED_MANIFEST = os.path.join(REPO_ROOT, "tests", "data", "registry_manifest.json")


def run_fixture(tmp_path, files, rules=None, manifest=None):
    """Write fixture sources under tmp_path and lint them."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    manifest_path = None
    if manifest is not None:
        manifest_file = tmp_path.parent / (tmp_path.name + "_manifest.json")
        manifest_file.write_text(json.dumps(manifest))
        manifest_path = str(manifest_file)
    return lint_paths([str(tmp_path)], rules=rules, manifest_path=manifest_path)


def codes(findings):
    return [finding.code for finding in findings]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestLintRegistry:
    def test_builtin_rules_registered(self):
        assert LINT_RULES.names() == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
            "REP008", "REP009",
        ]

    def test_rules_have_titles_and_doc_urls(self):
        for entry in LINT_RULES.entries():
            assert entry.metadata.get("title")
            rule = entry.component()
            assert rule.code == entry.name
            assert rule.doc_url.startswith("README.md#rep")

    def test_duplicate_registration_fails(self):
        with pytest.raises(RegistryError):
            @register_lint_rule("REP001", title="dup")
            class Dup(LintRule):
                code = "REP001"

    def test_custom_rule_plugs_in(self, tmp_path):
        @register_lint_rule("X001", title="no TODO comments")
        class NoTodoRule(LintRule):
            code = "X001"
            title = "no TODO comments"

            def check(self, module, context):
                for lineno, line in enumerate(module.source.splitlines(), start=1):
                    if "TODO" in line:
                        yield Finding(self.code, module.relpath, lineno, 0,
                                      "TODO left in source", self.doc_url)

        try:
            findings = run_fixture(tmp_path, {"a.py": "x = 1  # TODO fix\n"},
                                   rules=["X001"])
            assert codes(findings) == ["X001"]
        finally:
            LINT_RULES.unregister("X001")

    def test_unknown_rule_code_suggests(self):
        with pytest.raises(RegistryError, match="REP001"):
            lint_paths([SRC_TREE], rules=["REP01"])


# ----------------------------------------------------------------------
# REP001 — wall-clock ban
# ----------------------------------------------------------------------
class TestREP001WallClock:
    def test_time_time_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"noc/stamp.py": """
            import time

            def stamp():
                return time.time()
        """}, rules=["REP001"])
        assert codes(findings) == ["REP001"]
        assert "time.time" in findings[0].message

    def test_from_import_and_alias_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"load/clock.py": """
            import time as t
            from time import perf_counter

            def sample():
                return t.monotonic() + perf_counter()
        """}, rules=["REP001"])
        assert codes(findings) == ["REP001", "REP001"]

    def test_datetime_now_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"faults/when.py": """
            import datetime

            def now():
                return datetime.datetime.now()
        """}, rules=["REP001"])
        assert codes(findings) == ["REP001"]

    def test_perf_module_allowlisted(self, tmp_path):
        findings = run_fixture(tmp_path, {"sim/perf.py": """
            import time

            def wall():
                return time.perf_counter()
        """}, rules=["REP001"])
        assert findings == []

    def test_simulated_time_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"noc/clean.py": """
            def stamp(sim):
                return sim.now
        """}, rules=["REP001"])
        assert findings == []


# ----------------------------------------------------------------------
# REP002 — unseeded randomness
# ----------------------------------------------------------------------
class TestREP002UnseededRandom:
    def test_module_level_call_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"workloads/w.py": """
            import random

            def pick(items):
                return items[random.randrange(len(items))]
        """}, rules=["REP002"])
        assert codes(findings) == ["REP002"]
        assert "random.randrange" in findings[0].message

    def test_from_import_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"workloads/w.py": """
            from random import shuffle
        """}, rules=["REP002"])
        assert codes(findings) == ["REP002"]

    def test_seeded_instance_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"workloads/w.py": """
            import random

            class W:
                def __init__(self, seed):
                    self._rng = random.Random(seed)

                def pick(self, items):
                    return items[self._rng.randrange(len(items))]
        """}, rules=["REP002"])
        assert findings == []

    def test_import_alias_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"workloads/w.py": """
            import random as rnd

            def roll():
                return rnd.random()
        """}, rules=["REP002"])
        assert codes(findings) == ["REP002"]


# ----------------------------------------------------------------------
# REP003 — nondeterministic iteration
# ----------------------------------------------------------------------
class TestREP003NondetIteration:
    def test_set_iteration_flagged_in_kernel_module(self, tmp_path):
        findings = run_fixture(tmp_path, {"noc/route.py": """
            def visit(nodes):
                for node in set(nodes):
                    node.touch()
        """}, rules=["REP003"])
        assert codes(findings) == ["REP003"]

    def test_comprehension_over_set_literal_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"sim/kernel.py": """
            def weights():
                return [w * 2 for w in {1, 2, 3}]
        """}, rules=["REP003"])
        assert codes(findings) == ["REP003"]

    def test_dict_dunder_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"fabric/links.py": """
            def fields(obj):
                for name in obj.__dict__:
                    yield name
        """}, rules=["REP003"])
        assert codes(findings) == ["REP003"]

    def test_sorted_wrap_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"noc/route.py": """
            def visit(nodes):
                for node in sorted(set(nodes)):
                    node.touch()
        """}, rules=["REP003"])
        assert findings == []

    def test_non_kernel_module_out_of_scope(self, tmp_path):
        findings = run_fixture(tmp_path, {"workloads/free.py": """
            def visit(nodes):
                for node in set(nodes):
                    node.touch()
        """}, rules=["REP003"])
        assert findings == []


# ----------------------------------------------------------------------
# REP004 — registry discipline
# ----------------------------------------------------------------------
class TestREP004RegistryDiscipline:
    def test_registration_missing_from_manifest(self, tmp_path):
        findings = run_fixture(tmp_path, {"plugins.py": """
            from repro.scenario.registry import register_workload

            @register_workload("my_workload")
            class MyWorkload:
                pass
        """}, rules=["REP004"], manifest={"workloads": []})
        assert codes(findings) == ["REP004"]
        assert "my_workload" in findings[0].message

    def test_registration_in_manifest_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"plugins.py": """
            from repro.scenario.registry import register_workload

            @register_workload("my_workload")
            class MyWorkload:
                pass
        """}, rules=["REP004"], manifest={"workloads": ["my_workload"]})
        assert findings == []

    def test_experiment_decorator_covered(self, tmp_path):
        findings = run_fixture(tmp_path, {"exp.py": """
            from repro.experiments.spec import experiment

            @experiment("ghost_exp", title="t", description="d")
            def run_ghost(config):
                pass
        """}, rules=["REP004"], manifest={"experiments": []})
        assert codes(findings) == ["REP004"]
        assert "ghost_exp" in findings[0].message

    def test_manifest_name_registered_nowhere(self, tmp_path):
        # The reverse check only fires on whole-package trees (identified by
        # core/factory.py), so partial-tree lints don't false-positive.
        findings = run_fixture(tmp_path, {
            "core/factory.py": "def build(services):\n    return None\n",
            "plugins.py": """
                from repro.scenario.registry import register_workload

                @register_workload("real")
                class Real:
                    pass
            """,
        }, rules=["REP004"], manifest={"workloads": ["real", "ghost"]})
        assert codes(findings) == ["REP004"]
        assert "ghost" in findings[0].message

    def test_partial_tree_skips_reverse_check(self, tmp_path):
        findings = run_fixture(tmp_path, {"plugins.py": "x = 1\n"},
                               rules=["REP004"], manifest={"workloads": ["ghost"]})
        assert findings == []

    def test_factory_dispatch_branch_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"core/factory.py": """
            def build(name, services, placement):
                if name == "edge":
                    return EdgeDesign(services, placement)
                elif name == "split":
                    return SplitDesign(services, placement)
                return None
        """}, rules=["REP004"])
        assert codes(findings) == ["REP004", "REP004"]

    def test_factory_registry_lookup_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"core/factory.py": """
            from repro.scenario.registry import NI_DESIGNS

            def build(name, services, placement):
                return NI_DESIGNS.get(name)(services, placement)
        """}, rules=["REP004"])
        assert findings == []


# ----------------------------------------------------------------------
# REP005 — schedule_fast contract
# ----------------------------------------------------------------------
class TestREP005ScheduleFast:
    def test_result_assignment_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"node/driver.py": """
            class Driver:
                def start(self, sim):
                    self._tick = sim.schedule_fast(1, self._fire)

                def _fire(self):
                    pass
        """}, rules=["REP005"])
        assert codes(findings) == ["REP005"]
        assert "returns no handle" in findings[0].message

    def test_fast_then_cancel_same_callable_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"node/driver.py": """
            class Driver:
                def start(self, sim):
                    sim.schedule_fast(1, self._fire)

                def abort(self, sim):
                    sim.cancel(self._fire)

                def _fire(self):
                    pass
        """}, rules=["REP005"])
        assert codes(findings) == ["REP005"]
        assert "non-cancellable" in findings[0].message

    def test_schedule_with_cancel_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"node/driver.py": """
            class Driver:
                def start(self, sim):
                    self._event = sim.schedule(1, self._fire)

                def abort(self, sim):
                    sim.cancel(self._event)

                def _fire(self):
                    pass
        """}, rules=["REP005"])
        assert findings == []

    def test_fast_without_cancel_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"node/driver.py": """
            class Driver:
                def start(self, sim):
                    sim.schedule_fast(1, self._fire)

                def _fire(self):
                    pass
        """}, rules=["REP005"])
        assert findings == []


# ----------------------------------------------------------------------
# REP006 — __slots__ integrity
# ----------------------------------------------------------------------
class TestREP006SlotsIntegrity:
    def test_undeclared_attribute_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"sim/holder.py": """
            class Holder:
                __slots__ = ("x",)

                def __init__(self):
                    self.x = 1
                    self.y = 2
        """}, rules=["REP006"])
        assert codes(findings) == ["REP006"]
        assert "self.y" in findings[0].message

    def test_subclass_without_slots_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"sim/events.py": """
            class BaseEvent:
                __slots__ = ("time",)

            class RetryEvent(BaseEvent):
                def __init__(self):
                    self.time = 0
                    self.attempts = 0
        """}, rules=["REP006"])
        assert codes(findings) == ["REP006"]
        assert "RetryEvent" in findings[0].message

    def test_slotted_subclass_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"sim/events.py": """
            class BaseEvent:
                __slots__ = ("time",)

            class RetryEvent(BaseEvent):
                __slots__ = ("attempts",)

                def __init__(self):
                    self.time = 0
                    self.attempts = 0
        """}, rules=["REP006"])
        assert findings == []

    def test_cross_module_base_resolved(self, tmp_path):
        findings = run_fixture(tmp_path, {
            "sim/base.py": """
                class Slotted:
                    __slots__ = ("a",)
            """,
            "noc/sub.py": """
                from sim.base import Slotted

                class Grown(Slotted):
                    pass
            """,
        }, rules=["REP006"])
        assert codes(findings) == ["REP006"]

    def test_external_base_skipped(self, tmp_path):
        findings = run_fixture(tmp_path, {"sim/ext.py": """
            from collections import UserDict

            class Bag(UserDict):
                def __init__(self):
                    super().__init__()
                    self.extra = 1
        """}, rules=["REP006"])
        assert findings == []


# ----------------------------------------------------------------------
# REP007 — serialization hygiene
# ----------------------------------------------------------------------
class TestREP007SerializationHygiene:
    def test_unconditional_dict_literal_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"scenario/doc.py": """
            from typing import Optional

            class Spec:
                faults: Optional[str] = None

                def to_dict(self):
                    return {"faults": self.faults}
        """}, rules=["REP007"])
        assert codes(findings) == ["REP007"]
        assert "'faults'" in findings[0].message

    def test_unconditional_subscript_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"scenario/doc.py": """
            class Spec:
                arrivals = None

                def to_dict(self):
                    document = {}
                    document["arrivals"] = self.arrivals
                    return document
        """}, rules=["REP007"])
        assert codes(findings) == ["REP007"]

    def test_guarded_emission_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"scenario/doc.py": """
            from typing import Optional

            class Spec:
                faults: Optional[str] = None

                def to_dict(self):
                    document = {}
                    if self.faults is not None:
                        document["faults"] = self.faults
                        document["fault_params"] = {}
                    return document
        """}, rules=["REP007"])
        assert findings == []

    def test_required_field_may_serialize_unconditionally(self, tmp_path):
        # OpenLoopResult.arrivals is a required str: always present, always
        # serialized — not a fingerprint hazard.
        findings = run_fixture(tmp_path, {"load/result.py": """
            class Result:
                arrivals: str = "poisson"

                def to_dict(self):
                    return {"arrivals": self.arrivals}
        """}, rules=["REP007"])
        assert findings == []


# ----------------------------------------------------------------------
class TestREP008ProbeContract:
    def test_probe_without_slots_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"obs/plug.py": """
            @register_probe("bad")
            class BadProbe(TelemetryProbe):
                name = "bad"

                def sample(self, ctx):
                    return {"x": 1}
        """}, rules=["REP008"])
        assert codes(findings) == ["REP008"]
        assert "__slots__" in findings[0].message

    def test_probe_mutating_sampled_object_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"obs/plug.py": """
            @register_probe("bad")
            class BadProbe(TelemetryProbe):
                __slots__ = ()
                name = "bad"

                def sample(self, ctx):
                    ctx.sim.events = 0
                    return {"x": ctx.sim.events}
        """}, rules=["REP008"])
        assert codes(findings) == ["REP008"]
        assert "read-only outside self" in findings[0].message

    def test_probe_augmented_write_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"obs/plug.py": """
            @register_probe("bad")
            class BadProbe(TelemetryProbe):
                __slots__ = ()
                name = "bad"

                def sample(self, ctx):
                    ctx.driver.hits += 1
                    return None
        """}, rules=["REP008"])
        assert codes(findings) == ["REP008"]

    def test_chained_write_through_self_flagged(self, tmp_path):
        # self.driver.x mutates a sampled object *through* probe state.
        findings = run_fixture(tmp_path, {"obs/plug.py": """
            @register_probe("bad")
            class BadProbe(TelemetryProbe):
                __slots__ = ("driver",)
                name = "bad"

                def sample(self, ctx):
                    self.driver.window = 0
                    return None
        """}, rules=["REP008"])
        assert codes(findings) == ["REP008"]

    def test_clean_probe_with_self_state(self, tmp_path):
        # Writes rooted at self (delta counters) are legal probe-local state.
        findings = run_fixture(tmp_path, {"obs/plug.py": """
            @register_probe("good")
            class GoodProbe(TelemetryProbe):
                __slots__ = ("_last",)
                name = "good"

                def __init__(self):
                    self._last = 0

                def sample(self, ctx):
                    events = ctx.sim.events_executed
                    delta = events - self._last
                    self._last = events
                    return {"events": events, "delta": delta}
        """}, rules=["REP008"])
        assert findings == []

    def test_non_probe_class_ignored(self, tmp_path):
        # Mutation is only a violation inside @register_probe classes.
        findings = run_fixture(tmp_path, {"obs/plug.py": """
            class Sampler:
                def tick(self, ctx):
                    ctx.sim.flag = True
        """}, rules=["REP008"])
        assert findings == []


# ----------------------------------------------------------------------
# REP009 — fault-model seed derivation
# ----------------------------------------------------------------------
class TestREP009SeedDerivation:
    def test_raw_seed_in_fault_model_module_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"faults/plug.py": """
            import random

            @register_fault_model("bad")
            class BadFault(FaultModel):
                name = "bad"

                def bind(self, machine, core_ids):
                    rng = random.Random(self.seed)
                    self.targets = frozenset(rng.sample(core_ids, 2))
        """}, rules=["REP009"])
        assert codes(findings) == ["REP009"]
        assert "derive_seed" in findings[0].message

    def test_unseeded_rng_in_fault_model_module_flagged(self, tmp_path):
        findings = run_fixture(tmp_path, {"faults/plug.py": """
            import random

            @register_fault_model("bad")
            class BadFault(FaultModel):
                name = "bad"

                def bind(self, machine, core_ids):
                    self.targets = frozenset([random.Random().randrange(16)])
        """}, rules=["REP009"])
        assert codes(findings) == ["REP009"]

    def test_derived_seed_is_clean(self, tmp_path):
        findings = run_fixture(tmp_path, {"faults/plug.py": """
            import random

            from repro.faults.injector import derive_seed

            @register_fault_model("good")
            class GoodFault(FaultModel):
                name = "good"

                def bind(self, machine, core_ids):
                    rng = random.Random(derive_seed(self.seed, "bind", self.name))
                    self.targets = frozenset(rng.sample(core_ids, 2))
        """}, rules=["REP009"])
        assert findings == []

    def test_module_without_fault_models_ignored(self, tmp_path):
        # Raw seeding is only the fault engine's concern; other modules
        # are covered by the determinism rules, not REP009.
        findings = run_fixture(tmp_path, {"load/arrivals.py": """
            import random

            def jitter(seed):
                return random.Random(seed).random()
        """}, rules=["REP009"])
        assert findings == []


# ----------------------------------------------------------------------
# Driver, baseline, reporters
# ----------------------------------------------------------------------
class TestDriverAndBaseline:
    def test_syntax_error_is_a_finding(self, tmp_path):
        findings = run_fixture(tmp_path, {"broken.py": "def f(:\n"})
        assert codes(findings) == ["REP000"]

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="does not exist"):
            lint_paths(["/nonexistent/lint/tree"])

    def test_findings_sorted_and_deterministic(self, tmp_path):
        files = {
            "noc/b.py": "import time\nx = time.time()\ny = time.monotonic()\n",
            "noc/a.py": "import random\nz = random.random()\n",
        }
        first = run_fixture(tmp_path, files, rules=["REP001", "REP002"])
        second = lint_paths([str(tmp_path)], rules=["REP002", "REP001"])
        assert [f.sort_key() for f in first] == [f.sort_key() for f in second]
        assert first[0].path == "noc/a.py"

    def test_baseline_suppresses_and_round_trips(self, tmp_path):
        findings = run_fixture(tmp_path, {"noc/t.py": "import time\nx = time.time()\n"},
                               rules=["REP001"])
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        kept, suppressed = Baseline.load(str(path)).apply(findings)
        assert kept == [] and len(suppressed) == 1

    def test_baseline_without_message_suppresses_by_code_and_path(self):
        finding = Finding("REP001", "noc/t.py", 2, 0, "anything")
        assert Baseline([{"code": "REP001", "path": "noc/t.py"}]).matches(finding)
        assert not Baseline([{"code": "REP002", "path": "noc/t.py"}]).matches(finding)

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(LintError, match="suppressions"):
            Baseline.load(str(path))

    def test_json_report_round_trips(self, tmp_path):
        findings = run_fixture(tmp_path, {"noc/t.py": "import time\nx = time.time()\n"},
                               rules=["REP001"])
        text = render_json(findings, files=1, rules=["REP001"])
        assert parse_report(text) == findings
        assert json.loads(text)["schema"] == "repro-lint-report/1"

    def test_text_report_mentions_counts(self):
        findings = [Finding("REP002", "a.py", 1, 0, "msg", "README.md#x")]
        text = render_text(findings, files=3, rules=["REP002"])
        assert "REP002 x1" in text and "a.py:1:0" in text
        assert "clean" in render_text([], files=3, rules=["REP002"])


# ----------------------------------------------------------------------
# The gate: whole tree, CLI, committed baseline, manifest fold-in
# ----------------------------------------------------------------------
class TestLintGate:
    def test_whole_tree_reports_zero_findings(self):
        assert lint_paths([SRC_TREE]) == []

    def test_cli_gate_with_committed_baseline(self, capsys):
        status = cli_main(["lint", SRC_TREE, "--baseline", COMMITTED_BASELINE])
        assert status == 0
        assert "clean" in capsys.readouterr().out

    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(COMMITTED_BASELINE)
        assert len(baseline) == 0

    def test_cli_default_paths_lint_installed_package(self, capsys):
        assert cli_main(["lint"]) == 0

    def test_cli_json_and_rules_subset(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nx = time.time()\n")
        status = cli_main(["lint", str(tmp_path), "--json", "-"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert [f["code"] for f in payload["findings"]] == ["REP001"]
        # Restricting to another rule hides the wall-clock finding.
        assert cli_main(["lint", str(tmp_path), "--rules", "REP002"]) == 0
        capsys.readouterr()

    def test_cli_write_then_apply_baseline(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nx = random.random()\n")
        baseline_path = str(tmp_path / "suppress.json")
        assert cli_main(["lint", str(tmp_path), "--write-baseline", baseline_path]) == 0
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert cli_main(["lint", str(tmp_path), "--baseline", baseline_path]) == 0
        out = capsys.readouterr().out
        assert "suppressed by baseline" in out

    def test_cli_unknown_rule_errors(self, capsys):
        assert cli_main(["lint", SRC_TREE, "--rules", "NOPE"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_live_inventory_includes_lint_rules(self):
        inventory = lint_manifest.live_inventory()
        assert inventory["lint_rules"] == LINT_RULES.names()
        failures = lint_manifest.compare_inventory(
            inventory, lint_manifest.load_manifest(COMMITTED_MANIFEST))
        assert failures == []

    def test_manifest_shim_entry_point_still_works(self):
        import importlib.util

        shim_path = os.path.join(REPO_ROOT, "tools", "check_registry_manifest.py")
        spec = importlib.util.spec_from_file_location("check_registry_manifest", shim_path)
        shim = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(shim)
        assert shim.main([COMMITTED_MANIFEST]) == 0
