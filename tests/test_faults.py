"""Tests for the fault-injection subsystem (repro.faults + chaos_sweep).

Covers the FAULT_MODELS registry, the seeded/fingerprinted FaultSchedule,
spec serialization compatibility (fault-free fingerprints unchanged), the
two hard equivalence contracts — an *empty* fault schedule is byte-identical
to no fault model at all, and faulted runs are byte-identical with hop
fusion on and off — the queue-bound vs fault-induced drop split, resilience
metrics, chaos_sweep determinism across reruns and parallel campaign
workers, and the CLI/catalog surfacing.
"""

import itertools
import json

import pytest

import repro.noc.packet as packet_module
from repro.analysis import render_fault_profile
from repro.campaign import Campaign, RunRequest
from repro.errors import FaultError, RegistryError, ScenarioError, WorkloadError
from repro.experiments.registry import get_spec
from repro.faults import (
    FaultCascade,
    FaultInjector,
    FaultSchedule,
    WindowedTails,
    build_fault_injector,
    derive_seed,
    recovery_transient_cycles,
    tail_amplification,
    validate_fault_params,
)
from repro.load import OpenLoopDriver
from repro.scenario.builder import MachineBuilder
from repro.scenario.registry import FAULT_MODELS
from repro.scenario.spec import ScenarioSpec


def build_scenario(**spec_kwargs):
    spec_kwargs.setdefault("design", "split")
    spec_kwargs.setdefault("workload", "kvstore")
    return MachineBuilder(ScenarioSpec(**spec_kwargs)).build()


def run_driver(monkeypatch, fusion=True, rate=12.0, seed=1, design="split", **kwargs):
    """One open-loop run on a fresh machine with pinned packet ids.

    ``design`` defaults to split; coherence-fault tests pass ``edge``, the
    only design whose kvstore accesses reach the directory (split/per_tile
    cores touch only their local WQ/CQ blocks, so ``remote_transactions``
    stays 0 and directory fault models never fire).
    """
    with monkeypatch.context() as patch:
        patch.setenv("REPRO_HOP_FUSION", "1" if fusion else "0")
        patch.setattr(packet_module, "_packet_ids", itertools.count())
        scenario = build_scenario(design=design)
        kwargs.setdefault("warmup_cycles", 1_000)
        kwargs.setdefault("measure_cycles", 6_000)
        return OpenLoopDriver(scenario, rate, seed=seed, **kwargs).run()


class TestFaultRegistry:
    def test_builtins_registered(self):
        assert FAULT_MODELS.names() == [
            "directory_corrupt", "link_down", "ni_stall", "packet_loss",
            "router_degrade", "slow_node", "stale_owner_retry",
        ]

    def test_unknown_model_suggests(self):
        with pytest.raises(RegistryError, match="link_down"):
            FAULT_MODELS.get("link_dwn")

    def test_models_declare_param_defaults(self):
        for entry in FAULT_MODELS.entries():
            assert isinstance(dict(entry.component.param_defaults), dict)


class TestFaultSchedule:
    def test_same_seed_same_windows_and_fingerprint(self):
        a = FaultSchedule(seed=7)
        b = FaultSchedule(seed=7)
        assert a.windows(50_000.0) == b.windows(50_000.0)
        assert a.schedule_fingerprint() == b.schedule_fingerprint()

    def test_different_seed_different_fingerprint(self):
        assert (FaultSchedule(seed=1).schedule_fingerprint()
                != FaultSchedule(seed=2).schedule_fingerprint())

    def test_empty_schedule_yields_no_windows(self):
        schedule = FaultSchedule(max_windows=0, seed=3)
        assert schedule.windows(1e9) == []
        assert schedule.windows(None) == []

    def test_horizon_bounds_drawn_windows(self):
        for on, _off in FaultSchedule(seed=5).windows(20_000.0):
            assert on < 20_000.0

    def test_unbounded_schedule_requires_horizon(self):
        with pytest.raises(FaultError, match="horizon"):
            FaultSchedule(seed=1).windows(None)

    def test_max_windows_caps_the_draw(self):
        assert len(FaultSchedule(max_windows=3, seed=1).windows(None)) == 3

    def test_explicit_windows_override_the_draw(self):
        schedule = FaultSchedule(windows=((100.0, 200.0), (500.0, 900.0)))
        assert schedule.windows(None) == [(100.0, 200.0), (500.0, 900.0)]

    def test_overlapping_explicit_windows_rejected(self):
        with pytest.raises(FaultError, match="non-overlapping"):
            FaultSchedule(windows=((100.0, 300.0), (200.0, 400.0)))
        with pytest.raises(FaultError, match="non-overlapping"):
            FaultSchedule(windows=((300.0, 100.0),))

    def test_unknown_parameter_fails_loudly(self):
        with pytest.raises(FaultError, match="mtbf_cycles"):
            FaultSchedule.from_params(mtbf=100.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule(mtbf_cycles=0.0)
        with pytest.raises(FaultError):
            FaultSchedule(start_cycles=-1.0)


class TestFaultModels:
    def test_intensity_must_be_a_fraction(self):
        cls = FAULT_MODELS.get("router_degrade")
        with pytest.raises(FaultError, match="intensity"):
            cls(1.5)
        with pytest.raises(FaultError, match="intensity"):
            cls(-0.1)

    def test_unknown_parameter_lists_accepted(self):
        cls = FAULT_MODELS.get("router_degrade")
        with pytest.raises(FaultError, match="multiplier"):
            cls.from_params(0.5, multiplyer=2.0)

    def test_router_degrade_multiplier_validated(self):
        with pytest.raises(FaultError, match="multiplier"):
            FAULT_MODELS.get("router_degrade").from_params(0.5, multiplier=0.5)

    def test_zero_intensity_selects_no_targets(self):
        scenario = build_scenario()
        model = FAULT_MODELS.get("router_degrade").from_params(0.0, seed=1)
        model.bind(scenario.machine, [0, 1, 2, 3])
        assert model.routers == frozenset()

    def test_target_selection_is_seed_deterministic(self):
        scenario = build_scenario()
        picks = []
        for _ in range(2):
            model = FAULT_MODELS.get("link_down").from_params(0.25, seed=9)
            model.bind(scenario.machine, [])
            picks.append(model.routers)
        assert picks[0] == picks[1] != frozenset()

    def test_packet_loss_decisions_are_hash_deterministic(self):
        model = FAULT_MODELS.get("packet_loss").from_params(
            0.3, seed=4, retransmit_cycles=100.0
        )
        first = [model.loss_delay(None, pid) for pid in range(200)]
        second = [model.loss_delay(None, pid) for pid in range(200)]
        assert first == second
        assert 0.0 < sum(1 for d in first if d) < 200


class TestInjector:
    def test_fingerprint_pins_model_and_schedule(self):
        scenario = build_scenario()
        make = lambda seed: build_fault_injector(
            scenario.machine, "router_degrade", {"intensity": 0.5}, seed=seed
        )
        assert make(1).fingerprint() == make(1).fingerprint()
        assert make(1).fingerprint() != make(2).fingerprint()

    def test_double_install_rejected(self):
        scenario = build_scenario()
        injector = build_fault_injector(
            scenario.machine, "router_degrade", {"max_windows": 1}, seed=1
        )
        injector.install(horizon=10_000.0)
        with pytest.raises(FaultError, match="already installed"):
            injector.install(horizon=10_000.0)

    def test_cancel_detaches_state(self):
        scenario = build_scenario()
        machine = scenario.machine
        injector = build_fault_injector(
            machine, "router_degrade", {"max_windows": 1}, seed=1
        )
        injector.install(horizon=10_000.0)
        assert machine.fabric.faults is injector.state
        assert machine.fault_state is injector.state
        injector.cancel()
        assert machine.fabric.faults is None
        assert machine.fault_state is None

    def test_unknown_fault_param_fails_loudly(self):
        scenario = build_scenario()
        with pytest.raises(FaultError, match="penalty_cycles"):
            build_fault_injector(
                scenario.machine, "slow_node", {"penalty": 10.0}, seed=1
            )

    def test_derive_seed_decorrelates_purposes(self):
        assert derive_seed(1, "model", "link_down") != \
            derive_seed(1, "schedule", "link_down")
        assert derive_seed(1, "model", "link_down") != \
            derive_seed(1, "model", "ni_stall")


class TestSpecSerialization:
    def test_fault_free_spec_serializes_without_fault_keys(self):
        document = ScenarioSpec(workload="kvstore").to_dict()
        assert "faults" not in document
        assert "fault_params" not in document
        # The exact pre-fault key set: fingerprints of existing cached
        # results must not move.
        assert set(document) == {
            "design", "topology", "workload", "workload_params", "config_overrides",
        }

    def test_faulted_spec_round_trips(self):
        spec = ScenarioSpec(
            workload="kvstore", arrivals="poisson",
            faults="router_degrade", fault_params={"intensity": 0.5},
        )
        assert spec == ScenarioSpec.from_dict(spec.to_dict())
        assert spec.to_dict()["faults"] == "router_degrade"

    def test_fault_params_without_model_rejected(self):
        with pytest.raises(ScenarioError, match="fault model"):
            ScenarioSpec(fault_params={"intensity": 0.5})

    def test_unknown_fault_name_suggests(self):
        with pytest.raises(RegistryError, match="router_degrade"):
            ScenarioSpec(faults="router_degrad")

    def test_driver_rejects_params_without_model(self):
        scenario = build_scenario()
        with pytest.raises(WorkloadError, match="fault model"):
            OpenLoopDriver(scenario, 8.0, fault_params={"intensity": 0.5})

    def test_from_spec_inherits_spec_faults(self):
        spec = ScenarioSpec(
            workload="kvstore", faults="ni_stall", fault_params={"intensity": 1.0},
        )
        driver = OpenLoopDriver.from_spec(spec, 8.0)
        assert driver.faults == "ni_stall"
        assert driver.fault_params == {"intensity": 1.0}


class TestNoFaultEquivalence:
    """An installed-but-empty fault schedule must be invisible, fused or not."""

    _COMPARED = (
        "arrived", "injected", "completed", "dropped", "final_backlog",
        "mean_queue_depth", "latency_cycles", "tenants",
    )

    @pytest.mark.parametrize("fusion", [True, False])
    def test_empty_schedule_matches_no_fault_run(self, monkeypatch, fusion):
        baseline = run_driver(monkeypatch, fusion=fusion)
        empty = run_driver(
            monkeypatch, fusion=fusion,
            faults="router_degrade",
            fault_params={"intensity": 1.0, "max_windows": 0},
        )
        assert empty.fault_windows == 0
        assert empty.fault_hits == 0
        for name in self._COMPARED:
            baseline_value = getattr(baseline, name)
            empty_value = getattr(empty, name)
            if name == "tenants":
                # The faulted result's tenant dicts add the fault keys; the
                # shared keys must match exactly.
                for tenant, stats in baseline_value.items():
                    assert {k: empty_value[tenant][k] for k in stats} == stats
            else:
                assert empty_value == baseline_value, name

    @pytest.mark.parametrize("fusion", [True, False])
    def test_never_triggered_cascade_matches_no_fault_run(self, monkeypatch, fusion):
        # A configured cascade whose primary schedule realizes no windows
        # can never trigger: the run must be indistinguishable from one
        # with no injector at all (beyond the extra serialized fault keys).
        baseline = run_driver(monkeypatch, fusion=fusion)
        cascading = run_driver(
            monkeypatch, fusion=fusion,
            faults="router_degrade",
            fault_params={
                "intensity": 1.0, "max_windows": 0,
                "cascade": "slow_node", "cascade_probability": 1.0,
            },
        )
        assert cascading.fault_windows == 0
        assert cascading.fault_hits == 0
        assert cascading.fault_profile["cascade"]["triggered"] == 0
        assert cascading.fault_profile["cascade"]["windows"] == []
        for name in self._COMPARED:
            baseline_value = getattr(baseline, name)
            cascading_value = getattr(cascading, name)
            if name == "tenants":
                for tenant, stats in baseline_value.items():
                    assert {k: cascading_value[tenant][k] for k in stats} == stats
            else:
                assert cascading_value == baseline_value, name

    def test_idle_directory_fault_leaves_split_run_untouched(self, monkeypatch):
        # On the split design kvstore cores only touch their local WQ/CQ
        # blocks (every access is an L1 hit), so the directory never acts
        # and a coherence fault model has nothing to perturb: even with an
        # always-open window the run must match the fault-free baseline.
        baseline = run_driver(monkeypatch)
        faulted = run_driver(
            monkeypatch, faults="directory_corrupt",
            fault_params={"intensity": 1.0, "windows": ((0.0, 1e9),)},
        )
        assert faulted.fault_hits == 0
        assert faulted.fault_profile["directory_retries"] == 0
        for name in self._COMPARED:
            baseline_value = getattr(baseline, name)
            faulted_value = getattr(faulted, name)
            if name == "tenants":
                for tenant, stats in baseline_value.items():
                    assert {k: faulted_value[tenant][k] for k in stats} == stats
            else:
                assert faulted_value == baseline_value, name


class TestFusedFaultEquivalence:
    """Faulted runs must be byte-identical with fusion on and off."""

    WINDOWS = ((1_000.0, 3_000.0), (4_500.0, 6_000.0))

    @pytest.mark.parametrize("model", ["link_down", "router_degrade", "packet_loss"])
    def test_driver_results_identical(self, monkeypatch, model):
        params = {"intensity": 0.5, "windows": self.WINDOWS}
        fused = run_driver(monkeypatch, fusion=True, faults=model, fault_params=params)
        unfused = run_driver(monkeypatch, fusion=False, faults=model, fault_params=params)
        assert json.dumps(fused.to_dict(), sort_keys=True) == \
            json.dumps(unfused.to_dict(), sort_keys=True)
        assert fused.fault_windows == unfused.fault_windows > 0

    def test_chaos_sweep_byte_identical(self, monkeypatch):
        params = dict(
            loads=(8.0,), intensities=(0.5,), warmup_cycles=1000.0,
            measure_cycles=4000.0, mtbf_cycles=1200.0, mttr_cycles=600.0,
        )
        results = []
        for fusion in (True, False):
            with monkeypatch.context() as patch:
                patch.setenv("REPRO_HOP_FUSION", "1" if fusion else "0")
                patch.setattr(packet_module, "_packet_ids", itertools.count())
                result = get_spec("chaos_sweep").run(**params)
            result.metadata.wall_time_s = 0.0
            result.metadata.perf = {}
            results.append(result)
        assert results[0].to_csv() == results[1].to_csv()
        assert json.dumps(results[0].to_dict(), sort_keys=True) == \
            json.dumps(results[1].to_dict(), sort_keys=True)


class TestFaultCascade:
    PRIMARY = ((1_000.0, 2_000.0), (4_000.0, 5_000.0), (7_000.0, 8_000.0))

    def test_windows_are_seed_deterministic(self):
        a = FaultCascade(probability=0.6, seed=11)
        b = FaultCascade(probability=0.6, seed=11)
        assert a.windows(self.PRIMARY) == b.windows(self.PRIMARY)
        assert a.cascade_fingerprint(self.PRIMARY) == \
            b.cascade_fingerprint(self.PRIMARY)
        assert FaultCascade(probability=0.6, seed=12).cascade_fingerprint(
            self.PRIMARY) != a.cascade_fingerprint(self.PRIMARY)

    def test_zero_probability_triggers_nothing(self):
        cascade = FaultCascade(probability=0.0, seed=3)
        assert cascade.windows(self.PRIMARY) == []

    def test_certain_trigger_fires_after_every_window(self):
        cascade = FaultCascade(
            probability=1.0, delay_cycles=100.0, mttr_cycles=400.0, seed=5
        )
        realized = cascade.windows(self.PRIMARY)
        assert len(realized) == len(self.PRIMARY)
        previous_off = 0.0
        for (primary_on, _), (on, off) in zip(self.PRIMARY, realized):
            assert on >= primary_on + 100.0
            assert on >= previous_off  # clamped non-overlapping
            assert off > on
            previous_off = off

    def test_invalid_cascade_params_rejected(self):
        with pytest.raises(FaultError, match="probability"):
            FaultCascade(probability=1.5)
        with pytest.raises(FaultError, match="delay"):
            FaultCascade(delay_cycles=-1.0)
        with pytest.raises(FaultError, match="MTTR"):
            FaultCascade(mttr_cycles=0.0)

    def test_build_injector_wires_cascade(self):
        scenario = build_scenario()
        make = lambda params: build_fault_injector(
            scenario.machine, "router_degrade", params, seed=1
        )
        plain = make({"intensity": 0.5})
        cascading = make({"intensity": 0.5, "cascade": "slow_node",
                          "cascade_probability": 0.75})
        assert cascading.cascade_model.name == "slow_node"
        assert cascading.cascade.probability == 0.75
        # The cascade spec extends the fingerprint payload.
        assert plain.fingerprint() != cascading.fingerprint()
        assert cascading.fingerprint() == make(
            {"intensity": 0.5, "cascade": "slow_node", "cascade_probability": 0.75}
        ).fingerprint()

    def test_cascade_params_without_model_rejected(self):
        scenario = build_scenario()
        with pytest.raises(FaultError, match="without a 'cascade' model"):
            build_fault_injector(
                scenario.machine, "router_degrade",
                {"intensity": 0.5, "cascade_probability": 0.5}, seed=1,
            )

    def test_cascading_run_reports_profile(self, monkeypatch):
        result = run_driver(
            monkeypatch,
            faults="router_degrade",
            fault_params={
                "intensity": 0.5, "windows": ((1_000.0, 2_000.0), (4_000.0, 5_000.0)),
                "cascade": "slow_node", "cascade_probability": 1.0,
                "cascade_delay_cycles": 200.0, "cascade_mttr_cycles": 800.0,
            },
        )
        doc = result.fault_profile["cascade"]
        assert doc["model"] == "slow_node"
        assert doc["probability"] == 1.0
        assert doc["triggered"] == 2
        assert doc["windows"]
        assert doc["fingerprint"]
        # Primary activations plus cascade activations both count.
        assert result.fault_windows > 2

    @pytest.mark.parametrize("fusion", [True, False])
    def test_cascading_runs_reproduce_exactly(self, monkeypatch, fusion):
        params = {
            "intensity": 0.5, "mtbf_cycles": 1_500.0, "mttr_cycles": 600.0,
            "cascade": "slow_node", "cascade_probability": 0.75,
            "cascade_delay_cycles": 150.0,
        }
        first = run_driver(monkeypatch, fusion=fusion,
                           faults="router_degrade", fault_params=params)
        second = run_driver(monkeypatch, fusion=fusion,
                            faults="router_degrade", fault_params=params)
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)

    def test_cascading_run_fusion_equivalence(self, monkeypatch):
        params = {
            "intensity": 0.5, "windows": ((1_000.0, 3_000.0),),
            "cascade": "slow_node", "cascade_probability": 1.0,
            "cascade_delay_cycles": 250.0,
        }
        fused = run_driver(monkeypatch, fusion=True,
                           faults="router_degrade", fault_params=params)
        unfused = run_driver(monkeypatch, fusion=False,
                             faults="router_degrade", fault_params=params)
        assert json.dumps(fused.to_dict(), sort_keys=True) == \
            json.dumps(unfused.to_dict(), sort_keys=True)
        assert fused.fault_profile["cascade"]["triggered"] == 1


class TestBlastRadius:
    def _bind(self, scenario, name, seed=9, intensity=0.25, **params):
        model = FAULT_MODELS.get(name).from_params(intensity, seed=seed, **params)
        model.bind(scenario.machine, list(range(16)))
        return model

    def test_decay_zero_matches_legacy_uniform_draw(self):
        scenario = build_scenario()
        legacy = self._bind(scenario, "link_down")
        explicit = self._bind(scenario, "link_down", blast_decay=0.0)
        assert legacy.routers == explicit.routers != frozenset()

    def test_blast_targets_cluster_around_epicenter(self):
        scenario = build_scenario()
        hop = scenario.machine.fabric.topology.hop_count
        uniform = self._bind(scenario, "link_down", intensity=0.5)
        blast = self._bind(scenario, "link_down", intensity=0.5,
                           blast_decay=0.05, blast_epicenter=0)
        origin = sorted(scenario.machine.fabric.topology.nodes(), key=repr)[0]
        mean = lambda targets: sum(hop(origin, node) for node in targets) \
            / len(targets)
        assert origin in blast.routers
        assert mean(blast.routers) < mean(uniform.routers)

    @pytest.mark.parametrize("topology", ["mesh", "noc_out", "torus3d"])
    def test_blast_deterministic_across_machine_rebuilds(self, topology):
        picks = []
        for _ in range(2):
            scenario = build_scenario(topology=topology)
            model = self._bind(scenario, "router_degrade",
                               blast_decay=0.4, blast_epicenter=2)
            picks.append(model.routers)
        assert picks[0] == picks[1] != frozenset()

    def test_core_blast_pins_epicenter(self):
        scenario = build_scenario()
        uniform = self._bind(scenario, "slow_node", intensity=0.5)
        blast = self._bind(scenario, "slow_node", intensity=0.5,
                           blast_decay=0.05, blast_epicenter=3)
        assert 3 in blast.cores
        assert blast.cores != uniform.cores

    def test_invalid_decay_rejected(self):
        cls = FAULT_MODELS.get("link_down")
        with pytest.raises(FaultError, match="blast_decay"):
            cls.from_params(0.5, blast_decay=1.5)
        with pytest.raises(FaultError, match="blast_decay"):
            cls.from_params(0.5, blast_decay=-0.1)

    def test_blast_run_fusion_equivalence(self, monkeypatch):
        params = {
            "intensity": 0.5, "windows": ((1_000.0, 3_000.0),),
            "blast_decay": 0.6, "blast_epicenter": 2,
        }
        fused = run_driver(monkeypatch, fusion=True,
                           faults="router_degrade", fault_params=params)
        unfused = run_driver(monkeypatch, fusion=False,
                             faults="router_degrade", fault_params=params)
        assert json.dumps(fused.to_dict(), sort_keys=True) == \
            json.dumps(unfused.to_dict(), sort_keys=True)
        assert fused.fault_hits > 0


class TestFaultEffects:
    def test_ni_stall_splits_drop_accounting(self, monkeypatch):
        result = run_driver(
            monkeypatch, rate=8.0,
            faults="ni_stall",
            fault_params={"intensity": 1.0, "windows": ((0.0, 1e9),)},
        )
        assert result.fault_dropped == result.arrived > 0
        assert result.dropped == 0
        assert result.injected == 0
        for stats in result.tenants.values():
            assert stats["fault_dropped"] == stats["arrived"]
            assert stats["fault_drop_fraction"] == 1.0
            assert stats["dropped"] == 0

    @pytest.mark.parametrize("model,params", [
        ("router_degrade", {"multiplier": 8.0}),
        ("slow_node", {"penalty_cycles": 200.0}),
        ("link_down", {}),
    ])
    def test_faults_amplify_the_tail(self, monkeypatch, model, params):
        # Recover mid-run: a window covering the whole run would let nothing
        # complete under link_down (empty tail instead of an amplified one).
        window = {"windows": ((500.0, 3_000.0),), "intensity": 1.0}
        window.update(params)
        baseline = run_driver(monkeypatch, rate=8.0)
        faulted = run_driver(monkeypatch, rate=8.0, faults=model, fault_params=window)
        assert faulted.fault_hits > 0
        amplification = tail_amplification(
            faulted.latency_cycles["p99"], baseline.latency_cycles["p99"]
        )
        assert amplification > 1.0

    def test_fault_profile_reports_identity_and_windows(self, monkeypatch):
        result = run_driver(
            monkeypatch, faults="router_degrade",
            fault_params={"intensity": 0.5, "windows": ((1_000.0, 3_000.0),)},
        )
        profile = result.fault_profile
        assert profile["model"] == "router_degrade"
        assert profile["intensity"] == 0.5
        assert profile["windows"] == [[1_000.0, 3_000.0]]
        assert profile["window_p99"]
        assert result.faults == "router_degrade"
        assert result.to_dict()["fault_profile"]["fingerprint"] == \
            profile["fingerprint"]

    def test_fault_free_result_serializes_without_fault_keys(self, monkeypatch):
        document = run_driver(monkeypatch).to_dict()
        assert "faults" not in document
        assert "fault_profile" not in document


class TestCoherenceFaults:
    """Directory fault models, driven on the edge design (the only design
    whose kvstore accesses produce remote coherence transactions)."""

    WINDOW = {"windows": ((500.0, 6_000.0),), "intensity": 1.0}

    def test_directory_corrupt_forces_bounded_retries(self, monkeypatch):
        baseline = run_driver(monkeypatch, design="edge", rate=8.0)
        faulted = run_driver(
            monkeypatch, design="edge", rate=8.0,
            faults="directory_corrupt", fault_params=dict(self.WINDOW),
        )
        profile = faulted.fault_profile
        assert profile["directory_retries"] > 0
        assert profile["retry_backoff_cycles"] > 0.0
        # The model only perturbs via the directory hook, so every hit is a
        # forced retry.
        assert faulted.fault_hits == profile["directory_retries"]
        assert tail_amplification(
            faulted.latency_cycles["p99"], baseline.latency_cycles["p99"]
        ) > 1.0

    def test_stale_owner_retry_accounts_exponential_backoff(self, monkeypatch):
        flat = run_driver(
            monkeypatch, design="edge", rate=8.0,
            faults="directory_corrupt",
            fault_params=dict(self.WINDOW, retry_cycles=20.0, max_retries=3),
        )
        storm = run_driver(
            monkeypatch, design="edge", rate=8.0,
            faults="stale_owner_retry",
            fault_params=dict(self.WINDOW, backoff_cycles=20.0, max_retries=3),
        )
        assert storm.fault_profile["directory_retries"] > 0
        # Exponential backoff (20 * 2**attempt) charges more cycles per
        # retry than the flat 20-cycle re-lookup.
        assert storm.fault_profile["retry_backoff_cycles"] / \
            storm.fault_profile["directory_retries"] > \
            flat.fault_profile["retry_backoff_cycles"] / \
            flat.fault_profile["directory_retries"]

    @pytest.mark.parametrize("name,params", [
        ("directory_corrupt", {"retry_cycles": 40.0, "max_retries": 2}),
        ("stale_owner_retry", {"backoff_cycles": 20.0, "max_retries": 3}),
    ])
    def test_retries_stop_at_max_retries(self, name, params):
        model = FAULT_MODELS.get(name).from_params(1.0, seed=4, **params)
        affected = next(addr for addr in range(4096) if model._block_affected(addr))
        limit = params["max_retries"]
        assert all(model.directory_retry(None, affected, attempt) > 0.0
                   for attempt in range(limit))
        assert model.directory_retry(None, affected, limit) == 0.0

    def test_block_selection_is_hash_deterministic(self):
        make = lambda seed: FAULT_MODELS.get("directory_corrupt").from_params(
            0.3, seed=seed
        )
        first = [make(7)._block_affected(addr) for addr in range(512)]
        second = [make(7)._block_affected(addr) for addr in range(512)]
        assert first == second
        assert 0 < sum(first) < 512
        assert [make(8)._block_affected(addr) for addr in range(512)] != first

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FaultError, match="retry_cycles"):
            FAULT_MODELS.get("directory_corrupt").from_params(0.5, retry_cycles=-1.0)
        with pytest.raises(FaultError, match="max_retries"):
            FAULT_MODELS.get("stale_owner_retry").from_params(0.5, max_retries=0)

    def test_coherence_fault_fusion_equivalence(self, monkeypatch):
        params = dict(self.WINDOW)
        fused = run_driver(monkeypatch, fusion=True, design="edge", rate=8.0,
                           faults="directory_corrupt", fault_params=params)
        unfused = run_driver(monkeypatch, fusion=False, design="edge", rate=8.0,
                             faults="directory_corrupt", fault_params=params)
        assert json.dumps(fused.to_dict(), sort_keys=True) == \
            json.dumps(unfused.to_dict(), sort_keys=True)
        assert fused.fault_profile["directory_retries"] > 0


class TestFaultParamValidation:
    """Unknown fault_params fail at spec-resolution time, with suggestions."""

    def test_spec_rejects_typo_with_suggestion(self):
        with pytest.raises(FaultError, match="did you mean 'penalty_cycles'"):
            ScenarioSpec(
                workload="kvstore", faults="slow_node",
                fault_params={"penalty_cycle": 30.0},
            )

    def test_driver_rejects_typo_before_running(self):
        scenario = build_scenario()
        with pytest.raises(FaultError, match="did you mean 'multiplier'"):
            OpenLoopDriver(
                scenario, 8.0, faults="router_degrade",
                fault_params={"multiplyer": 2.0},
            )

    def test_unknown_cascade_model_suggests(self):
        with pytest.raises(RegistryError, match="slow_node"):
            ScenarioSpec(
                workload="kvstore", faults="router_degrade",
                fault_params={"cascade": "slow_nod"},
            )

    def test_validate_accepts_every_namespace(self):
        assert validate_fault_params("router_degrade", {
            "intensity": 0.5, "mtbf_cycles": 1_000.0, "multiplier": 2.0,
            "blast_decay": 0.3, "cascade": "slow_node",
            "cascade_probability": 0.5, "tail_window_cycles": 250.0,
        }) == "router_degrade"

    def test_validate_lists_accepted_names(self):
        with pytest.raises(FaultError, match="accepted:"):
            validate_fault_params("link_down", {"bogus_knob": 1})


class TestFaultProfileFigure:
    ROWS = [(0.0, 12, 80.0), (500.0, 10, 400.0), (1_000.0, 11, 90.0)]

    def test_marks_fault_and_cascade_overlap(self):
        lines = render_fault_profile(
            self.ROWS, [(600.0, 900.0)], 500.0,
            cascade_windows=[(1_100.0, 1_300.0)],
        )
        assert lines[0].startswith("per-window p99")
        assert lines[1].startswith("         0    |")
        assert lines[2].startswith("       500 *  |")
        assert lines[3].startswith("      1000  + |")
        assert "p99      400.0  n=10" in lines[2]
        # Bars scale to the peak window.
        assert lines[2].count("#") == 32
        assert 0 < lines[1].count("#") < 32

    def test_recovery_transient_footer(self):
        degraded = render_fault_profile(
            self.ROWS, [(600.0, 900.0)], 500.0, baseline_p99=80.0
        )
        assert degraded[-1].startswith("recovery transient: mean")
        never_recovered = render_fault_profile(
            [(0.0, 10, 400.0), (500.0, 10, 400.0)], [(600.0, 900.0)], 500.0,
            baseline_p99=80.0,
        )
        assert never_recovered[-1].startswith("recovery transient: none")

    def test_empty_rows_render_placeholder(self):
        assert render_fault_profile([], [(0.0, 1.0)], 500.0) == \
            ["no completions recorded in any tail window"]

    def test_rendering_is_deterministic(self):
        first = render_fault_profile(self.ROWS, [(600.0, 900.0)], 500.0,
                                     baseline_p99=80.0)
        second = render_fault_profile(self.ROWS, [(600.0, 900.0)], 500.0,
                                      baseline_p99=80.0)
        assert first == second


class TestResilienceMetrics:
    def test_windowed_tails_buckets_by_time(self):
        tails = WindowedTails(100.0)
        tails.record(50.0, 10.0)
        tails.record(150.0, 20.0)
        tails.record(151.0, 30.0)
        rows = tails.window_percentiles(99.0)
        assert [(start, count) for start, count, _ in rows] == [(0.0, 1), (100.0, 2)]
        assert len(tails) == 2

    def test_merged_range_is_boundary_exclusive(self):
        tails = WindowedTails(100.0)
        tails.record(50.0, 10.0)
        tails.record(150.0, 20.0)
        assert tails.merged_range(0.0, 100.0).count == 1
        assert tails.merged_range(0.0, 200.0).count == 2
        assert tails.merged_range(200.0, 100.0).count == 0

    def test_tail_amplification_guards_empty_baseline(self):
        assert tail_amplification(100.0, 0.0) == 0.0
        assert tail_amplification(150.0, 100.0) == 1.5

    def test_recovery_transient_scans_past_recovery(self):
        rows = [(0.0, 10, 50.0), (100.0, 10, 500.0), (200.0, 10, 60.0)]
        transient = recovery_transient_cycles(
            rows, [(80.0, 120.0)], 100.0, baseline_p99=50.0, tolerance=1.5
        )
        # Recovery at 120; the window [100, 200) is still degraded, the
        # window [200, 300) is healthy -> transient to its end: 300 - 120.
        assert transient == pytest.approx(180.0)

    def test_recovery_transient_none_when_never_healthy(self):
        rows = [(0.0, 10, 500.0)]
        assert recovery_transient_cycles(
            rows, [(10.0, 20.0)], 100.0, baseline_p99=50.0
        ) is None
        assert recovery_transient_cycles([], [(10.0, 20.0)], 100.0, 50.0) is None


class TestChaosSweepDeterminism:
    PARAMS = dict(
        loads=(8.0,), intensities=(0.5,), warmup_cycles=1000.0,
        measure_cycles=3000.0, mtbf_cycles=1200.0, mttr_cycles=600.0,
    )

    def _run(self, monkeypatch):
        with monkeypatch.context() as patch:
            patch.setattr(packet_module, "_packet_ids", itertools.count())
            result = get_spec("chaos_sweep").run(**self.PARAMS)
        result.metadata.wall_time_s = 0.0
        result.metadata.perf = {}
        return result

    def test_reruns_are_byte_identical(self, monkeypatch):
        first = self._run(monkeypatch)
        second = self._run(monkeypatch)
        assert first.to_csv() == second.to_csv()
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)

    def test_fault_counters_surface_in_metadata(self, monkeypatch):
        with monkeypatch.context() as patch:
            patch.setattr(packet_module, "_packet_ids", itertools.count())
            result = get_spec("chaos_sweep").run(**self.PARAMS)
        assert result.metadata.events["fault_windows"] > 0
        assert result.metadata.perf["fault_windows"] > 0
        assert result.metadata.perf["fault_hits"] > 0

    def test_parallel_campaign_workers_match_serial_run(self, monkeypatch):
        request_params = {key: list(value) if isinstance(value, tuple) else value
                          for key, value in self.PARAMS.items()}

        def requests():
            return [
                RunRequest("chaos_sweep", dict(request_params)),
                RunRequest("chaos_sweep", dict(request_params, intensities=[1.0])),
            ]

        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        serial = Campaign(requests()).run()
        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        parallel = Campaign(requests(), max_workers=2).run()
        assert serial.succeeded == parallel.succeeded == 2
        for entry_s, entry_p in zip(serial.entries, parallel.entries):
            assert entry_s.result.rows == entry_p.result.rows
            assert entry_s.result.notes == entry_p.result.notes

    # A cascading + blast-targeted configuration, as repeated key=value
    # strings the way the CLI carries fault_params.
    CASCADE_FAULT_PARAMS = [
        "cascade=slow_node", "cascade_probability=0.75",
        "cascade_delay_cycles=150", "blast_decay=0.6",
    ]

    def test_cascade_blast_sweep_reruns_byte_identical(self, monkeypatch):
        def run():
            with monkeypatch.context() as patch:
                patch.setattr(packet_module, "_packet_ids", itertools.count())
                result = get_spec("chaos_sweep").run(
                    fault_params=self.CASCADE_FAULT_PARAMS, **self.PARAMS
                )
            result.metadata.wall_time_s = 0.0
            result.metadata.perf = {}
            return result

        first = run()
        second = run()
        assert first.to_csv() == second.to_csv()
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)
        assert any(note.startswith("fault_profile:") for note in first.notes)

    def test_cascade_blast_parallel_workers_match_serial(self, monkeypatch):
        request_params = {key: list(value) if isinstance(value, tuple) else value
                          for key, value in self.PARAMS.items()}
        request_params["fault_params"] = list(self.CASCADE_FAULT_PARAMS)

        def requests():
            return [
                RunRequest("chaos_sweep", dict(request_params)),
                RunRequest("chaos_sweep", dict(request_params, intensities=[1.0])),
            ]

        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        serial = Campaign(requests()).run()
        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        parallel = Campaign(requests(), max_workers=2).run()
        assert serial.succeeded == parallel.succeeded == 2
        for entry_s, entry_p in zip(serial.entries, parallel.entries):
            assert entry_s.result.rows == entry_p.result.rows
            # Notes include the rendered fault_profile figure; it must be
            # byte-identical across worker counts.
            assert entry_s.result.notes == entry_p.result.notes
            assert any(note.startswith("fault_profile:")
                       for note in entry_s.result.notes)

    def test_campaign_report_digests_resilience(self, monkeypatch):
        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        report = Campaign([
            RunRequest("chaos_sweep", {
                "loads": [8.0], "intensities": [0.5], "warmup_cycles": 1000.0,
                "measure_cycles": 3000.0, "mtbf_cycles": 1200.0,
                "mttr_cycles": 600.0, "faults": faults,
            })
            for faults in ("router_degrade", "slow_node")
        ]).run()
        assert report.succeeded == 2
        assert len(report.resilience_points) > 1
        assert report.fault_windows > 0
        formatted = report.format()
        assert "resilience:" in formatted
        assert "fault window(s)" in report.summary()


class TestCliSurfacing:
    def test_list_faults_flag(self, capsys):
        from repro.cli import main
        assert main(["list", "--faults"]) == 0
        output = capsys.readouterr().out
        assert "Fault models:" in output
        for name in FAULT_MODELS.names():
            assert name in output
        assert "NI designs:" not in output

    def test_json_catalog_includes_faults(self, capsys):
        from repro.cli import main
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert catalog["schema"] == "repro-catalog/1"
        faults = catalog["registries"]["faults"]
        assert [item["name"] for item in faults] == FAULT_MODELS.names()
        by_name = {item["name"]: item for item in faults}
        assert by_name["router_degrade"]["parameters"] == {
            "multiplier": 4.0, "blast_decay": 0.0, "blast_epicenter": -1,
        }
        assert by_name["directory_corrupt"]["parameters"] == {
            "retry_cycles": 40.0, "max_retries": 2,
        }
        assert "chaos_sweep" in [item["name"] for item in catalog["experiments"]]
