"""Tests for the 3D-torus rack fabric."""

import pytest

from repro.config import RackConfig, SystemConfig
from repro.errors import ConfigurationError, TopologyError
from repro.fabric.interconnect import InterconnectModel
from repro.fabric.torus import Torus3D


class TestTorus:
    def test_node_count(self):
        assert Torus3D((8, 8, 8)).node_count == 512
        assert Torus3D((2, 3, 4)).node_count == 24

    def test_coordinate_round_trip(self):
        torus = Torus3D((8, 8, 8))
        for node in (0, 1, 8, 64, 511):
            assert torus.node_id(torus.coord(node)) == node

    def test_out_of_range_rejected(self):
        torus = Torus3D((8, 8, 8))
        with pytest.raises(TopologyError):
            torus.coord(512)
        with pytest.raises(TopologyError):
            torus.node_id((8, 0, 0))
        with pytest.raises(TopologyError):
            Torus3D((0, 8, 8))

    def test_wraparound_distances(self):
        torus = Torus3D((8, 8, 8))
        # Nodes at opposite ends of one dimension are a single hop apart.
        assert torus.hop_count(torus.node_id((0, 0, 0)), torus.node_id((7, 0, 0))) == 1
        assert torus.hop_count(torus.node_id((0, 0, 0)), torus.node_id((4, 0, 0))) == 4

    def test_hop_count_symmetry(self):
        torus = Torus3D((8, 8, 8))
        for a, b in ((0, 511), (17, 300), (42, 43)):
            assert torus.hop_count(a, b) == torus.hop_count(b, a)

    def test_paper_hop_statistics(self):
        """§6.1.2: 6 average and 12 maximum hops for the 512-node torus."""
        torus = Torus3D((8, 8, 8))
        assert torus.max_hop_count() == 12
        assert torus.average_hop_count() == pytest.approx(6.0)

    def test_neighbors(self):
        torus = Torus3D((8, 8, 8))
        neighbors = torus.neighbors(0)
        assert len(neighbors) == 6
        assert all(torus.hop_count(0, n) == 1 for n in neighbors)

    def test_from_config(self):
        torus = Torus3D.from_config(RackConfig())
        assert torus.node_count == 512


class TestInterconnect:
    def test_hop_latency_cycles(self):
        model = InterconnectModel.from_config(SystemConfig.paper_defaults())
        assert model.hop_latency_cycles == 70
        assert model.one_way_latency_cycles(6) == 420
        assert model.round_trip_latency_cycles(1) == 140

    def test_node_to_node_latency(self):
        model = InterconnectModel.from_config(SystemConfig.paper_defaults())
        src = 0
        dst = model.torus.node_id((1, 0, 0))
        assert model.node_to_node_latency_cycles(src, dst) == 70

    def test_negative_hops_rejected(self):
        model = InterconnectModel.from_config(SystemConfig.paper_defaults())
        with pytest.raises(ConfigurationError):
            model.one_way_latency_cycles(-1)
