"""Tests for busy-until resources, channels and pipelines."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resource import Channel, Pipeline, Resource


class TestResource:
    def test_serialization_of_back_to_back_grants(self):
        sim = Simulator()
        res = Resource(sim, "r")
        assert res.acquire(10) == 0
        assert res.acquire(10) == 10
        assert res.acquire(5) == 20
        assert res.free_at == 25

    def test_grant_after_idle_period_starts_now(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire(5)
        sim.schedule(100, lambda: None)
        sim.run()
        assert res.acquire(5) == 100

    def test_negative_occupancy_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, "r").acquire(-1)

    def test_acquire_then_schedules_callback_at_completion(self):
        sim = Simulator()
        res = Resource(sim, "r")
        times = []
        res.acquire_then(10, lambda: times.append(sim.now))
        res.acquire_then(10, lambda: times.append(sim.now))
        sim.run()
        assert times == [10, 20]

    def test_utilization_tracks_busy_fraction(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire_then(25, lambda: None)
        sim.schedule(100, lambda: None)
        sim.run()
        assert res.utilization() == pytest.approx(0.25)

    def test_utilization_resets_with_stats(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire_then(50, lambda: None)
        sim.schedule(100, lambda: None)
        sim.run()
        res.reset_stats()
        sim.schedule(100, lambda: None)
        sim.run()
        assert res.utilization() == 0.0


class TestChannel:
    def test_send_occupies_proportionally_to_bytes(self):
        sim = Simulator()
        channel = Channel(sim, bytes_per_cycle=16, name="link")
        assert channel.send(64) == 0
        assert channel.send(64) == pytest.approx(4.0)
        assert channel.bytes_transferred == 128

    def test_serialization_cycles(self):
        sim = Simulator()
        channel = Channel(sim, bytes_per_cycle=16)
        assert channel.serialization_cycles(80) == pytest.approx(5.0)

    def test_zero_bandwidth_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Channel(sim, bytes_per_cycle=0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Channel(sim, 16).send(-1)


class TestPipeline:
    def test_initiation_interval_limits_throughput(self):
        sim = Simulator()
        pipe = Pipeline(sim, initiation_interval=1, depth=10, name="p")
        completions = [pipe.issue() for _ in range(4)]
        assert completions == [10, 11, 12, 13]

    def test_depth_adds_latency_only_once_per_item(self):
        sim = Simulator()
        pipe = Pipeline(sim, initiation_interval=2, depth=5)
        assert pipe.issue() == 5
        assert pipe.issue() == 7

    def test_issue_then_callbacks_fire_in_order(self):
        sim = Simulator()
        pipe = Pipeline(sim, 1, 3)
        seen = []
        for i in range(3):
            pipe.issue_then(seen.append, i)
        sim.run()
        assert seen == [0, 1, 2]
        assert sim.now == 5  # last item issued at cycle 2, ready at 2 + 3

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Pipeline(sim, 0, 1)
        with pytest.raises(SimulationError):
            Pipeline(sim, 1, -1)


class TestResetStatsMidGrant:
    def test_in_flight_grant_credits_post_reset_portion(self):
        # Hand-computed: a 10-cycle grant starts at t=0; stats reset at t=4.
        # 6 cycles of the grant fall after the reset, so utilization over the
        # 6-cycle window [4, 10] must be 6/6 = 1.0 (the seed reported 0.0).
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire_then(10, lambda: None)
        sim.schedule(4, res.reset_stats)
        sim.run()
        assert sim.now == 10
        assert res.busy_cycles == pytest.approx(6.0)
        assert res.utilization() == pytest.approx(1.0)

    def test_partial_window_utilization_matches_hand_computation(self):
        # Grant of 30 cycles starting at t=10 (resource idle before).
        # Reset at t=25: 15 busy cycles remain in flight.  By t=50 the
        # measurement window is 25 cycles long -> utilization 15/25 = 0.6.
        sim = Simulator()
        res = Resource(sim, "r")
        sim.schedule(10, lambda: res.acquire_then(30, lambda: None))
        sim.schedule(25, res.reset_stats)
        sim.schedule(50, lambda: None)
        sim.run()
        assert res.busy_cycles == pytest.approx(15.0)
        assert res.utilization() == pytest.approx(15.0 / 25.0)

    def test_back_to_back_grants_spanning_reset(self):
        # Two 10-cycle grants issued at t=0 occupy [0, 10) and [10, 20).
        # Reset at t=5 -> 5 cycles of the first plus all 10 of the second
        # are post-reset.
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire(10)
        res.acquire(10)
        sim.schedule(5, res.reset_stats)
        sim.schedule(20, lambda: None)
        sim.run()
        assert res.busy_cycles == pytest.approx(15.0)
        assert res.utilization() == pytest.approx(1.0)

    def test_reset_after_grants_finish_zeroes_counters(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire_then(50, lambda: None)
        sim.schedule(100, lambda: None)
        sim.run()
        res.reset_stats()
        assert res.busy_cycles == 0.0
        assert res.grants == 0

    def test_future_grant_with_gap_counts_only_its_own_cycles(self):
        # A grant reserved for [100, 105) via earliest; reset at t=50 must
        # credit exactly the 5-cycle grant, not the idle gap [50, 100).
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire(5, earliest=100)
        sim.schedule(50, res.reset_stats)
        sim.run()
        assert res.busy_cycles == pytest.approx(5.0)

    def test_channel_reset_attributes_in_flight_bytes(self):
        # 160 bytes at 16 B/cycle occupy [0, 10); reset at t=4 leaves
        # 6 cycles * 16 B/cycle = 96 bytes attributable to the new window.
        sim = Simulator()
        channel = Channel(sim, bytes_per_cycle=16, name="link")
        channel.send(160)
        sim.schedule(4, channel.reset_stats)
        sim.schedule(10, lambda: None)
        sim.run()
        assert channel.bytes_transferred == pytest.approx(96.0)
        assert channel.busy_cycles == pytest.approx(6.0)

    def test_channel_reset_when_idle_zeroes_bytes(self):
        sim = Simulator()
        channel = Channel(sim, bytes_per_cycle=16)
        channel.send(64)
        sim.schedule(100, lambda: None)
        sim.run()
        channel.reset_stats()
        assert channel.bytes_transferred == 0
