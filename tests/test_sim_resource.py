"""Tests for busy-until resources, channels and pipelines."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resource import Channel, Pipeline, Resource


class TestResource:
    def test_serialization_of_back_to_back_grants(self):
        sim = Simulator()
        res = Resource(sim, "r")
        assert res.acquire(10) == 0
        assert res.acquire(10) == 10
        assert res.acquire(5) == 20
        assert res.free_at == 25

    def test_grant_after_idle_period_starts_now(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire(5)
        sim.schedule(100, lambda: None)
        sim.run()
        assert res.acquire(5) == 100

    def test_negative_occupancy_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, "r").acquire(-1)

    def test_acquire_then_schedules_callback_at_completion(self):
        sim = Simulator()
        res = Resource(sim, "r")
        times = []
        res.acquire_then(10, lambda: times.append(sim.now))
        res.acquire_then(10, lambda: times.append(sim.now))
        sim.run()
        assert times == [10, 20]

    def test_utilization_tracks_busy_fraction(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire_then(25, lambda: None)
        sim.schedule(100, lambda: None)
        sim.run()
        assert res.utilization() == pytest.approx(0.25)

    def test_utilization_resets_with_stats(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.acquire_then(50, lambda: None)
        sim.schedule(100, lambda: None)
        sim.run()
        res.reset_stats()
        sim.schedule(100, lambda: None)
        sim.run()
        assert res.utilization() == 0.0


class TestChannel:
    def test_send_occupies_proportionally_to_bytes(self):
        sim = Simulator()
        channel = Channel(sim, bytes_per_cycle=16, name="link")
        assert channel.send(64) == 0
        assert channel.send(64) == pytest.approx(4.0)
        assert channel.bytes_transferred == 128

    def test_serialization_cycles(self):
        sim = Simulator()
        channel = Channel(sim, bytes_per_cycle=16)
        assert channel.serialization_cycles(80) == pytest.approx(5.0)

    def test_zero_bandwidth_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Channel(sim, bytes_per_cycle=0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Channel(sim, 16).send(-1)


class TestPipeline:
    def test_initiation_interval_limits_throughput(self):
        sim = Simulator()
        pipe = Pipeline(sim, initiation_interval=1, depth=10, name="p")
        completions = [pipe.issue() for _ in range(4)]
        assert completions == [10, 11, 12, 13]

    def test_depth_adds_latency_only_once_per_item(self):
        sim = Simulator()
        pipe = Pipeline(sim, initiation_interval=2, depth=5)
        assert pipe.issue() == 5
        assert pipe.issue() == 7

    def test_issue_then_callbacks_fire_in_order(self):
        sim = Simulator()
        pipe = Pipeline(sim, 1, 3)
        seen = []
        for i in range(3):
            pipe.issue_then(seen.append, i)
        sim.run()
        assert seen == [0, 1, 2]
        assert sim.now == 5  # last item issued at cycle 2, ready at 2 + 3

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Pipeline(sim, 0, 1)
        with pytest.raises(SimulationError):
            Pipeline(sim, 1, -1)
