"""Tests for the open-loop load subsystem (repro.load + load_sweep).

Covers arrival-process determinism (same seed + spec fingerprint =>
identical injection schedules, across runs and parallel campaign workers),
trace replay parsing, the OpenLoopDriver's queueing/drop accounting and
per-tenant breakdowns, the distinct tail behaviour of different arrival
shapes under identical mean load, and the load_sweep experiment's SLO
saturation search.
"""

import json

import pytest

from repro.campaign import Campaign
from repro.campaign.request import RunRequest
from repro.errors import RegistryError, ScenarioError, WorkloadError
from repro.load import (
    BurstyArrivals,
    DeterministicArrivals,
    OpenLoopDriver,
    PoissonArrivals,
    TenantLoad,
    TraceReplayArrivals,
)
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.scenario.builder import MachineBuilder
from repro.scenario.registry import ARRIVALS
from repro.scenario.spec import ScenarioSpec
from repro.experiments.registry import get_spec
from helpers import small_config


def build_scenario(**spec_kwargs):
    spec_kwargs.setdefault("design", "split")
    spec_kwargs.setdefault("workload", "kvstore")
    return MachineBuilder(ScenarioSpec(**spec_kwargs)).build()


def run_driver(arrivals="poisson", rate=16.0, seed=1, scenario=None, **kwargs):
    scenario = scenario if scenario is not None else build_scenario()
    kwargs.setdefault("warmup_cycles", 2_000)
    kwargs.setdefault("measure_cycles", 10_000)
    return OpenLoopDriver(scenario, rate, arrivals=arrivals, seed=seed, **kwargs).run()


class TestArrivalRegistry:
    def test_builtins_registered(self):
        assert ARRIVALS.names() == ["bursty", "deterministic", "poisson", "trace"]

    def test_unknown_process_suggests(self):
        with pytest.raises(RegistryError, match="poisson"):
            ARRIVALS.get("poison")

    def test_unknown_parameter_fails_loudly(self):
        with pytest.raises(WorkloadError, match="on_cycles"):
            BurstyArrivals.from_params(1.0, onn_cycles=5)


class TestArrivalDeterminism:
    @pytest.mark.parametrize("cls", [DeterministicArrivals, PoissonArrivals, BurstyArrivals])
    def test_same_seed_same_schedule(self, cls):
        a = cls(4.0, seed=11)
        b = cls(4.0, seed=11)
        assert a.arrival_times(200) == b.arrival_times(200)
        assert a.schedule_fingerprint() == b.schedule_fingerprint()

    @pytest.mark.parametrize("cls", [PoissonArrivals, BurstyArrivals])
    def test_different_seed_different_schedule(self, cls):
        assert (cls(4.0, seed=1).schedule_fingerprint()
                != cls(4.0, seed=2).schedule_fingerprint())

    def test_iterating_twice_restarts_from_seed(self):
        process = PoissonArrivals(8.0, seed=3)
        first = [next(process.gaps()) for _ in range(5)]
        second = [next(process.gaps()) for _ in range(5)]
        assert first == second

    @pytest.mark.parametrize("cls", [DeterministicArrivals, PoissonArrivals, BurstyArrivals])
    def test_mean_rate_is_honoured(self, cls):
        process = cls(10.0, seed=5)  # 10 requests per kcycle
        times = process.arrival_times(4_000)
        measured = len(times) / times[-1] * 1000.0
        assert measured == pytest.approx(10.0, rel=0.15)

    def test_rate_must_be_positive(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(0.0)


class TestTraceReplay:
    def make_trace(self, tmp_path, records):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        return str(path)

    def test_absolute_times_replayed_and_rescaled(self, tmp_path):
        path = self.make_trace(tmp_path, [{"time": 100.0}, {"time": 150.0}, {"time": 400.0}])
        # Natural mean gap is 400/3 cycles; requesting 7.5/kcycle means a
        # mean gap of 1000/7.5, so the whole schedule scales by exactly 1.0x
        # the ratio while keeping the burst structure.
        process = TraceReplayArrivals(7.5, path=path)
        times = process.arrival_times(3)
        assert times[-1] == pytest.approx(3 * 1000.0 / 7.5)
        gaps = [times[0], times[1] - times[0], times[2] - times[1]]
        assert gaps[1] / gaps[0] == pytest.approx(50.0 / 100.0)

    def test_gap_records_and_looping(self, tmp_path):
        path = self.make_trace(tmp_path, [{"gap": 10.0}, {"gap": 30.0}])
        process = TraceReplayArrivals(50.0, path=path)  # mean gap 20 cycles
        times = process.arrival_times(4)
        assert times == pytest.approx([10.0, 40.0, 50.0, 80.0])

    def test_non_looping_trace_ends(self, tmp_path):
        path = self.make_trace(tmp_path, [{"gap": 10.0}, {"gap": 10.0}])
        process = TraceReplayArrivals(100.0, path=path, loop=False)
        assert len(list(process.gaps())) == 2

    def test_mixed_records_rejected(self, tmp_path):
        path = self.make_trace(tmp_path, [{"time": 5.0}, {"gap": 2.0}])
        with pytest.raises(WorkloadError, match="mixes"):
            TraceReplayArrivals(1.0, path=path)

    def test_decreasing_times_rejected(self, tmp_path):
        path = self.make_trace(tmp_path, [{"time": 5.0}, {"time": 2.0}])
        with pytest.raises(WorkloadError, match="non-decreasing"):
            TraceReplayArrivals(1.0, path=path)

    def test_missing_path_rejected(self):
        with pytest.raises(WorkloadError, match="path"):
            TraceReplayArrivals(1.0)


class TestScenarioSpecArrivals:
    def test_arrival_fields_round_trip(self):
        spec = ScenarioSpec(workload="kvstore", arrivals="bursty",
                            arrival_params={"on_cycles": 500.0})
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_closed_loop_spec_serializes_as_before(self):
        # Specs without an arrival process must keep their pre-load-subsystem
        # dict shape (and therefore fingerprints / cached results).
        document = ScenarioSpec(workload="kvstore").to_dict()
        assert "arrivals" not in document
        assert "arrival_params" not in document

    def test_arrival_fields_are_fingerprinted(self):
        base = ScenarioSpec(workload="kvstore", arrivals="bursty")
        assert base.fingerprint() != ScenarioSpec(workload="kvstore").fingerprint()
        assert base.fingerprint() != base.replace(arrivals="poisson").fingerprint()
        assert base.fingerprint() != base.replace(
            arrival_params={"on_cycles": 500.0}).fingerprint()

    def test_unknown_arrivals_name_rejected(self):
        with pytest.raises(RegistryError, match="poisson"):
            ScenarioSpec(arrivals="poison")

    def test_arrival_params_without_process_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(arrival_params={"on_cycles": 5})


class TestRemoteEndEmulatorValidation:
    def test_rate_matching_without_region_fails_at_construction(self):
        soc = ManycoreSoc(small_config())
        with pytest.raises(WorkloadError, match="incoming_region_bytes"):
            RemoteEndEmulator(soc, rate_match_incoming=True)

    def test_non_positive_region_rejected(self):
        soc = ManycoreSoc(small_config())
        with pytest.raises(WorkloadError, match="positive"):
            RemoteEndEmulator(soc, rate_match_incoming=True, incoming_region_bytes=0)

    def test_no_rate_matching_needs_no_region(self):
        soc = ManycoreSoc(small_config())
        RemoteEndEmulator(soc, rate_match_incoming=False)


class TestOpenLoopDriver:
    def test_runs_and_reports_exact_tails(self):
        result = run_driver(rate=8.0)
        assert result.completed > 0
        assert result.dropped == 0
        latency = result.latency_cycles
        # The histogram also covers in-window completions of requests fed
        # just before the window (legitimate steady-state samples), while
        # `completed` attributes throughput to window-fed requests only.
        assert latency["count"] >= result.completed
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["p99.9"]
        assert result.achieved_per_kcycle == pytest.approx(8.0, rel=0.4)

    def test_achieved_throughput_never_exceeds_injected(self):
        # Warm-up carryover completions must not be attributed to the window.
        for rate in (5.0, 20.0, 60.0):
            result = run_driver("poisson", rate=rate)
            assert result.completed <= result.injected
            assert result.achieved_per_kcycle <= result.injected_per_kcycle + 1e-9

    def test_deterministic_across_runs(self):
        first = run_driver(rate=16.0, seed=9)
        second = run_driver(rate=16.0, seed=9)
        assert first.to_dict() == second.to_dict()

    def test_seed_changes_schedule(self):
        assert (run_driver(rate=16.0, seed=1).to_dict()
                != run_driver(rate=16.0, seed=2).to_dict())

    def test_arrival_shape_changes_tail_not_mean_load(self):
        deterministic = run_driver("deterministic", rate=16.0)
        poisson = run_driver("poisson", rate=16.0)
        bursty = run_driver("bursty", rate=16.0)
        # Identical mean offered load...
        for result in (deterministic, poisson, bursty):
            assert result.rate_per_kcycle == 16.0
        # ...but increasingly heavy tails.
        assert poisson.latency_cycles["p99"] > deterministic.latency_cycles["p99"]
        assert bursty.latency_cycles["p99"] > poisson.latency_cycles["p99"]

    def test_overload_drops_and_accounts(self):
        result = run_driver(rate=200.0, queue_depth=4)
        assert result.dropped > 0
        assert 0.0 < result.drop_fraction < 1.0
        assert result.mean_queue_depth > 0.0
        # Every arrival is either fed to a core (injected) or dropped, and
        # only fed requests can complete.
        assert result.arrived == result.injected + result.dropped
        assert result.injected >= result.completed

    def test_queue_depth_bounds_backlog(self):
        result = run_driver(rate=200.0, queue_depth=2)
        scenario_cores = 8  # kvstore default active_cores
        assert result.final_backlog <= 2 * scenario_cores

    def test_multi_tenant_breakdown(self):
        result = run_driver(
            rate=16.0,
            tenants=[TenantLoad("batch", weight=3.0, arrivals="bursty"),
                     TenantLoad("interactive", weight=1.0)],
        )
        assert set(result.tenants) == {"batch", "interactive"}
        batch, interactive = result.tenants["batch"], result.tenants["interactive"]
        assert batch["cores"] + interactive["cores"] == 8
        assert batch["cores"] > interactive["cores"]
        assert batch["arrivals"] == "bursty"
        assert interactive["arrivals"] == "poisson"
        total = sum(t["completed"] for t in result.tenants.values())
        assert total == result.completed > 0

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(WorkloadError, match="unique"):
            run_driver(tenants=[TenantLoad("a"), TenantLoad("a")])

    def test_more_tenants_than_cores_rejected(self):
        scenario = build_scenario(workload_params={"active_cores": 1})
        with pytest.raises(WorkloadError, match="tenant"):
            run_driver(scenario=scenario,
                       tenants=[TenantLoad("a"), TenantLoad("b")])

    def test_workload_without_request_stream_rejected(self):
        scenario = build_scenario(workload="graph_traversal")
        with pytest.raises(WorkloadError, match="open-loop"):
            run_driver(scenario=scenario)

    def test_from_spec_uses_spec_arrival_fields(self):
        spec = ScenarioSpec(design="split", workload="kvstore", arrivals="deterministic")
        driver = OpenLoopDriver.from_spec(spec, 8.0, warmup_cycles=1_000,
                                          measure_cycles=4_000)
        assert driver.arrivals == "deterministic"
        assert driver.run().completed > 0


class TestLoadSweepExperiment:
    SMALL = {"loads": (5.0, 40.0), "warmup_cycles": 1_000.0, "measure_cycles": 6_000.0}

    def test_reports_saturation_and_exact_tails(self):
        result = get_spec("load_sweep").run(**self.SMALL)
        assert len(result.rows) == 2
        slo_column = result.column("SLO ok")
        assert slo_column == [True, False]
        assert any(note.startswith("saturation throughput") for note in result.notes)
        p99 = result.column("p99 (ns)")
        assert p99[1] > p99[0]

    def test_rows_sorted_by_offered_load(self):
        result = get_spec("load_sweep").run(
            loads=(40.0, 5.0), warmup_cycles=1_000.0, measure_cycles=6_000.0)
        assert result.column("Offered (req/kcycle)") == [5.0, 40.0]

    def test_deterministic_across_runs_and_parallel_workers(self):
        request = RunRequest("load_sweep", dict(self.SMALL))
        serial = Campaign([request, request], max_workers=1).run()
        parallel = Campaign([request, request], max_workers=2).run()
        rows = [entry.result.rows for entry in serial.entries + parallel.entries]
        assert rows[0] == rows[1] == rows[2] == rows[3]

    def test_arrival_shape_is_a_sweepable_axis(self):
        spec = get_spec("load_sweep")
        deterministic = spec.run(arrivals="deterministic", **self.SMALL)
        poisson = spec.run(arrivals="poisson", **self.SMALL)
        # Same mean load, distinct tail curves.
        assert (poisson.column("p99 (ns)")[0]
                > deterministic.column("p99 (ns)")[0])

    def test_saturation_never_reached_warns(self):
        result = get_spec("load_sweep").run(
            loads=(2.0, 4.0), warmup_cycles=1_000.0, measure_cycles=6_000.0)
        assert result.column("SLO ok") == [True, True]
        assert any("extend the sweep" in warning for warning in result.metadata.warnings)


class TestReviewRegressions:
    def test_kvstore_open_loop_rejects_single_node_rack(self):
        # With one rack node every key is local: the stream could never
        # yield, so the driver must fail loudly instead of spinning forever.
        scenario = build_scenario(workload_params={"rack_nodes": 1})
        with pytest.raises(WorkloadError, match="rack_nodes"):
            run_driver(scenario=scenario, rate=5.0)

    def test_tenant_arrival_params_without_process_name_are_honoured(self):
        scenario = build_scenario()
        driver = OpenLoopDriver(
            scenario, 16.0, arrivals="bursty",
            arrival_params={"on_cycles": 2000.0},
            tenants=[TenantLoad("batch", arrival_params={"on_cycles": 500.0})],
        )
        process = driver._tenant_process(driver.tenants[0], 1.0)
        assert process.name == "bursty"
        assert process.on_cycles == 500.0

    def test_tenant_with_own_process_gets_its_defaults_not_driver_params(self):
        scenario = build_scenario()
        driver = OpenLoopDriver(
            scenario, 16.0, arrivals="bursty",
            arrival_params={"on_cycles": 2000.0},
            tenants=[TenantLoad("interactive", arrivals="poisson")],
        )
        process = driver._tenant_process(driver.tenants[0], 1.0)
        assert process.name == "poisson"

    def test_zero_completion_point_does_not_poison_slo_baseline(self):
        # The first load point is too sparse to complete anything inside the
        # window; the baseline must come from the next point instead of
        # becoming 0 (which would fail every healthy row).
        result = get_spec("load_sweep").run(
            arrivals="deterministic", loads=(0.005, 5.0),
            warmup_cycles=1_000.0, measure_cycles=6_000.0)
        counts = result.column("Achieved (req/kcycle)")
        assert counts[0] == 0.0
        assert result.column("SLO ok") == [False, True]
        assert any(note.startswith("saturation throughput:") for note in result.notes)

    def test_all_points_empty_warns_about_window(self):
        result = get_spec("load_sweep").run(
            arrivals="deterministic", loads=(0.001, 0.002),
            warmup_cycles=500.0, measure_cycles=2_000.0)
        assert any("lengthen measure_cycles" in warning
                   for warning in result.metadata.warnings)

    def test_finite_trace_fingerprint_truncates_instead_of_raising(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"gap": 10.0}\n{"gap": 20.0}\n{"gap": 30.0}\n')
        process = TraceReplayArrivals(1.0, path=str(path), loop=False)
        assert len(process.arrival_times(256)) == 3
        assert process.schedule_fingerprint() == process.schedule_fingerprint()

    def test_empty_loads_rejected(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError, match="load point"):
            get_spec("load_sweep").run(loads=[])

    def test_negative_first_timestamp_rejected(self, tmp_path):
        path = tmp_path / "neg.jsonl"
        path.write_text('{"time": -100.0}\n{"time": 50.0}\n')
        with pytest.raises(WorkloadError, match="non-negative"):
            TraceReplayArrivals(1.0, path=str(path))

    def test_from_spec_arrivals_override_drops_spec_params(self):
        # Overriding the process must not leak the spec's (incompatible)
        # arrival params into it.
        spec = ScenarioSpec(design="split", workload="kvstore",
                            arrivals="bursty", arrival_params={"on_cycles": 100.0})
        driver = OpenLoopDriver.from_spec(spec, 8.0, arrivals="poisson",
                                          warmup_cycles=500, measure_cycles=2_000)
        assert driver.arrivals == "poisson"
        assert driver.arrival_params == {}
        assert driver.run().injected > 0

    def test_empty_point_is_not_counted_as_slo_violation(self):
        # A point too sparse to complete anything must neither suppress the
        # extend-the-sweep warning nor count as a violation.
        result = get_spec("load_sweep").run(
            arrivals="deterministic", loads=(0.005, 5.0),
            warmup_cycles=1_000.0, measure_cycles=6_000.0)
        warnings = result.metadata.warnings
        assert any("completed no requests" in warning for warning in warnings)
        assert any("extend the sweep" in warning for warning in warnings)
