"""Tests for the repro.scenario subsystem.

Covers the component registries (decorator registration, duplicate/unknown
handling, resolve normalization), ScenarioSpec serialization/fingerprinting,
MachineBuilder composition for every registered workload, and the
equivalence guarantee: registry-built machines produce byte-identical
results to the direct (pre-refactor) construction path for fig6/table1.
"""

import json
import os

import pytest

from helpers import small_config

from repro.config import NIDesign, SystemConfig, TopologyKind
from repro.errors import (
    ConfigurationError,
    RegistryError,
    ScenarioError,
    WorkloadError,
)
from repro.experiments.spec import get_spec
from repro.node.soc import ManycoreSoc
from repro.numa.machine import NumaMachine
from repro.scenario.builder import MachineBuilder, Scenario, ScenarioResult
from repro.scenario.registry import (
    ARRIVALS,
    FAULT_MODELS,
    LINT_RULES,
    NI_DESIGNS,
    TOPOLOGIES,
    WORKLOADS,
    ComponentRegistry,
    register_workload,
)
from repro.scenario.spec import ScenarioSpec
from repro.scenario.workload import Workload
from repro.workloads.hotspot import HotspotReadWorkload
from repro.workloads.kvstore import KeyValueStoreWorkload
from repro.workloads.microbench import UniformRandomReadWorkload
from repro.workloads.rwmix import ReadWriteMixWorkload

SMALL = {"cores.count": 16}


class TestComponentRegistry:
    def test_builtin_inventory(self):
        assert set(NI_DESIGNS.names()) >= {"edge", "per_tile", "split", "numa"}
        assert set(TOPOLOGIES.names()) >= {"mesh", "noc_out", "torus3d"}
        assert set(WORKLOADS.names()) >= {
            "uniform_random", "kvstore", "graph_traversal", "hotspot", "rw_mix",
        }

    def test_metadata_filters(self):
        assert NI_DESIGNS.names(messaging=True) == ["edge", "per_tile", "split"]
        assert "torus3d" not in TOPOLOGIES.names(scope="chip")

    def test_duplicate_registration_fails_loudly(self):
        registry = ComponentRegistry("widget", populate=None)
        registry.register("one")(object())
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("one")(object())

    def test_unknown_lookup_lists_names_and_suggests(self):
        with pytest.raises(RegistryError) as excinfo:
            NI_DESIGNS.get("splt")
        message = str(excinfo.value)
        assert "edge" in message and "per_tile" in message and "split" in message
        assert "did you mean 'split'" in message

    def test_registry_error_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            WORKLOADS.get("no_such_workload")

    def test_resolve_accepts_name_enum_and_component(self):
        assert NI_DESIGNS.resolve("edge") == "edge"
        assert NI_DESIGNS.resolve(NIDesign.EDGE) == "edge"
        assert TOPOLOGIES.resolve(TopologyKind.NOC_OUT) == "noc_out"
        assert WORKLOADS.resolve(HotspotReadWorkload) == "hotspot"
        workload = HotspotReadWorkload(small_config())
        assert WORKLOADS.resolve(workload) == "hotspot"

    def test_resolve_rejects_unknowns(self):
        with pytest.raises(RegistryError):
            TOPOLOGIES.resolve("hypercube")
        with pytest.raises(RegistryError):
            NI_DESIGNS.resolve(42)

    def test_config_coerce_goes_through_registry(self):
        assert NIDesign.coerce("per_tile") is NIDesign.PER_TILE
        with pytest.raises(ConfigurationError, match="registered"):
            NIDesign.coerce("per-tile")
        assert TopologyKind.coerce("mesh") is TopologyKind.MESH

    def test_unregister_allows_throwaway_plugins(self):
        @register_workload("throwaway_test_workload")
        class Throwaway(UniformRandomReadWorkload):
            name = "throwaway_test_workload"

        try:
            assert "throwaway_test_workload" in WORKLOADS.names()
        finally:
            WORKLOADS.unregister("throwaway_test_workload")
        assert "throwaway_test_workload" not in WORKLOADS.names()


class TestScenarioSpec:
    def test_dict_round_trip(self):
        spec = ScenarioSpec(design="edge", topology="noc_out", workload="kvstore",
                            workload_params={"active_cores": 2},
                            config_overrides={"cores.count": 16})
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_and_fingerprint_stability(self):
        spec = ScenarioSpec(workload="rw_mix",
                            workload_params={"write_fraction": 0.25, "active_cores": 2})
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()
        # Key order in the input must not matter.
        shuffled = ScenarioSpec.from_dict(dict(reversed(list(spec.to_dict().items()))))
        assert shuffled.fingerprint() == spec.fingerprint()

    def test_fingerprint_covers_every_field(self):
        base = ScenarioSpec()
        assert base.fingerprint() != base.replace(design="edge").fingerprint()
        assert base.fingerprint() != base.replace(
            workload_params={"ops_per_core": 4}).fingerprint()
        assert base.fingerprint() != base.replace(
            config_overrides={"cores.count": 16}).fingerprint()

    def test_enum_inputs_are_canonicalized(self):
        spec = ScenarioSpec(design=NIDesign.EDGE, topology=TopologyKind.MESH)
        assert spec.design == "edge" and spec.topology == "mesh"

    def test_unknown_names_fail_with_inventory(self):
        with pytest.raises(RegistryError, match="registered"):
            ScenarioSpec(design="bogus")
        with pytest.raises(RegistryError, match="did you mean"):
            ScenarioSpec(workload="hotspt")

    def test_resolve_config_applies_design_topology_and_overrides(self):
        spec = ScenarioSpec(design="edge", topology="noc_out",
                            config_overrides={"ni.rrpp_count": 4, "memory.latency_ns": 60})
        config = spec.resolve_config()
        assert config.ni.design is NIDesign.EDGE
        assert config.noc.topology is TopologyKind.NOC_OUT
        assert config.ni.rrpp_count == 4
        assert config.memory.latency_ns == 60.0

    def test_rack_topology_leaves_chip_topology_alone(self):
        config = ScenarioSpec(topology="torus3d").resolve_config()
        assert config.noc.topology is TopologyKind.MESH

    def test_registry_only_chip_topology_resolves_to_its_raw_name(self):
        from repro.core.placement import _mesh_placement
        from repro.scenario.registry import register_topology

        register_topology("test_ring", scope="chip")(_mesh_placement)
        try:
            config = ScenarioSpec(topology="test_ring").resolve_config()
            assert config.noc.topology == "test_ring"
            # The registry dispatch (not the enum) drives placement, so the
            # machine still builds.
            machine = MachineBuilder(ScenarioSpec(
                topology="test_ring", config_overrides=SMALL)).build_machine()
            assert isinstance(machine, ManycoreSoc)
            assert "test_ring" in config.describe()
        finally:
            TOPOLOGIES.unregister("test_ring")

    def test_bad_override_paths_are_rejected(self):
        with pytest.raises(ScenarioError, match="no field"):
            ScenarioSpec(config_overrides={"cores.freq": 3}).resolve_config()
        with pytest.raises(ScenarioError, match="unknown config section"):
            ScenarioSpec(config_overrides={"gpu.count": 1}).resolve_config()


class TestMachineBuilder:
    def test_resolved_config_matches_legacy_with_design_path(self):
        spec = ScenarioSpec(design="edge")
        legacy = SystemConfig.paper_defaults().with_design(NIDesign.EDGE)
        assert MachineBuilder(spec).resolve_config().fingerprint() == legacy.fingerprint()

    def test_builder_accepts_raw_dicts(self):
        builder = MachineBuilder({"design": "split", "workload": "hotspot"})
        assert builder.spec.workload == "hotspot"

    def test_numa_design_builds_the_numa_machine(self):
        machine = MachineBuilder(ScenarioSpec(design="numa")).build_machine()
        assert isinstance(machine, NumaMachine)
        assert machine.remote_read_cycles() == 395

    def test_numa_design_cannot_carry_workloads(self):
        with pytest.raises(ScenarioError, match="messaging designs"):
            MachineBuilder(ScenarioSpec(design="numa")).build()

    def test_unknown_workload_param_fails_before_build(self):
        spec = ScenarioSpec(workload="hotspot", workload_params={"op_per_core": 4})
        with pytest.raises(WorkloadError, match="accepted"):
            MachineBuilder(spec).build_workload()

    @pytest.mark.parametrize("workload,params", [
        ("uniform_random", {"active_cores": 2, "ops_per_core": 4}),
        ("kvstore", {"active_cores": 2, "gets_per_core": 4, "rack_nodes": 16}),
        ("graph_traversal", {"active_cores": 2, "max_vertices": 12, "rack_nodes": 16,
                             "graph_vertices": 128, "graph_edges_per_vertex": 4}),
        ("hotspot", {"active_cores": 2, "ops_per_core": 4}),
        ("rw_mix", {"active_cores": 2, "ops_per_core": 4}),
    ])
    def test_every_registered_workload_runs_from_a_spec(self, workload, params):
        spec = ScenarioSpec(workload=workload, workload_params=params,
                            config_overrides=SMALL)
        result = MachineBuilder(spec).run()
        assert isinstance(result, ScenarioResult)
        assert result.scenario_fingerprint == spec.fingerprint()
        assert result.metrics["elapsed_cycles"] > 0
        json.dumps(result.to_dict())  # metrics must be JSON-native

    def test_scenario_object_exposes_machine_and_workload(self):
        scenario = MachineBuilder(ScenarioSpec(
            workload="rw_mix",
            workload_params={"active_cores": 2, "ops_per_core": 4},
            config_overrides=SMALL,
        )).build()
        assert isinstance(scenario, Scenario)
        assert isinstance(scenario.machine, ManycoreSoc)
        assert isinstance(scenario.workload, ReadWriteMixWorkload)
        metrics = scenario.run().metrics
        assert metrics["reads_issued"] + metrics["writes_issued"] == 8


class TestWorkloadProtocol:
    def test_lifecycle_on_externally_built_machine(self):
        config = small_config()
        workload = UniformRandomReadWorkload(config, active_cores=2, ops_per_core=4)
        metrics = workload.run_on(ManycoreSoc(config))
        assert metrics["completed_ops"] == 8

    def test_legacy_run_entrypoints_still_work(self):
        result = KeyValueStoreWorkload(
            small_config(), active_cores=2, gets_per_core=4, rack_nodes=16).run()
        assert result.gets_issued == 8

    def test_hotspot_concentrates_load(self):
        config = small_config()
        hot = HotspotReadWorkload(config, active_cores=4, ops_per_core=8, hot_blocks=4)
        uniform = UniformRandomReadWorkload(config, active_cores=4, ops_per_core=8)
        hot_metrics = hot.run_on(ManycoreSoc(config))
        uniform_metrics = uniform.run_on(ManycoreSoc(config))
        # All hotspot offsets fall inside the hot window, which a single
        # RRPP/LLC row serves; mean latency must suffer relative to uniform.
        assert hot_metrics["mean_latency_ns"] > uniform_metrics["mean_latency_ns"]

    def test_rw_mix_issues_both_operation_kinds(self):
        config = small_config()
        workload = ReadWriteMixWorkload(config, active_cores=2, ops_per_core=16,
                                        write_fraction=0.5)
        metrics = workload.run_on(ManycoreSoc(config))
        assert metrics["reads_issued"] > 0 and metrics["writes_issued"] > 0
        assert metrics["completed_ops"] == 32

    def test_write_fraction_extremes(self):
        config = small_config()
        pure_writes = ReadWriteMixWorkload(config, active_cores=1, ops_per_core=4,
                                           write_fraction=1.0)
        metrics = pure_writes.run_on(ManycoreSoc(config))
        assert metrics["writes_issued"] == 4 and metrics["reads_issued"] == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            HotspotReadWorkload(small_config(), hot_blocks=0)
        with pytest.raises(WorkloadError):
            ReadWriteMixWorkload(small_config(), write_fraction=1.5)
        with pytest.raises(WorkloadError):
            UniformRandomReadWorkload(small_config(), ops_per_core=0)


class TestEquivalence:
    """Registry-built machines match the direct construction path exactly."""

    def test_machine_level_byte_identical_metrics(self):
        spec = ScenarioSpec(design="edge", workload="uniform_random",
                            workload_params={"active_cores": 2, "ops_per_core": 4},
                            config_overrides=SMALL)
        builder = MachineBuilder(spec)
        registry_machine = builder.build_machine()
        direct_machine = ManycoreSoc(small_config(NIDesign.EDGE))
        assert registry_machine.config.fingerprint() == direct_machine.config.fingerprint()
        via_registry = builder.build_workload().run_on(registry_machine)
        direct = UniformRandomReadWorkload(
            direct_machine.config, active_cores=2, ops_per_core=4).run_on(direct_machine)
        assert json.dumps(via_registry, sort_keys=True) == json.dumps(direct, sort_keys=True)

    def test_fig6_rows_byte_identical(self):
        params = dict(sizes=(64, 4096), iterations=2, warmup=1)
        direct = get_spec("fig6").run(config=small_config(), **params)
        via_spec = get_spec("fig6").run(
            config=MachineBuilder(ScenarioSpec(config_overrides=SMALL)).resolve_config(),
            **params)
        assert json.dumps(direct.rows) == json.dumps(via_spec.rows)
        assert list(direct.headers) == list(via_spec.headers)

    def test_table1_rows_byte_identical(self):
        direct = get_spec("table1").run()
        via_spec = get_spec("table1").run(
            config=MachineBuilder(ScenarioSpec()).resolve_config())
        assert json.dumps(direct.rows) == json.dumps(via_spec.rows)
        assert direct.metadata.config_fingerprint == via_spec.metadata.config_fingerprint


class TestScenarioExperiment:
    def test_scenario_experiment_runs_through_the_campaign_spec(self):
        result = get_spec("scenario").run(
            config=small_config(),
            workload="hotspot",
            params=("active_cores=2", "ops_per_core=4"),
        )
        metrics = dict(zip(result.column("Metric"), result.column("Value")))
        assert metrics["completed_ops"] == 8
        assert result.metadata.params["workload"] == "hotspot"

    def test_scenario_experiment_rejects_unknown_workload(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError, match="must be one of"):
            get_spec("scenario").run(workload="bogus")

    def test_late_registered_workload_is_runnable_and_listed(self):
        """Choices are late-bound: plugins registered after import still run."""
        @register_workload("late_plugin")
        class LatePlugin(UniformRandomReadWorkload):
            name = "late_plugin"

        try:
            spec = get_spec("scenario")
            assert "late_plugin" in spec.parameter("workload").choice_values()
            result = spec.run(config=small_config(), workload="late_plugin",
                              params=("active_cores=1", "ops_per_core=2"))
            metrics = dict(zip(result.column("Metric"), result.column("Value")))
            assert metrics["completed_ops"] == 2
        finally:
            WORKLOADS.unregister("late_plugin")


class TestRegistryManifest:
    """The checked-in manifest pins the component inventory for CI."""

    MANIFEST = os.path.join(os.path.dirname(__file__), "data", "registry_manifest.json")

    def test_inventory_matches_checked_in_manifest(self):
        from repro.experiments.registry import list_experiments

        with open(self.MANIFEST, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        actual = {
            "designs": NI_DESIGNS.names(),
            "topologies": TOPOLOGIES.names(),
            "workloads": WORKLOADS.names(),
            "arrivals": ARRIVALS.names(),
            "faults": FAULT_MODELS.names(),
            "lint_rules": LINT_RULES.names(),
            "experiments": list_experiments(),
        }
        assert actual == {key: manifest[key] for key in actual}, (
            "component inventory drifted from tests/data/registry_manifest.json; "
            "update the manifest if the change is intentional"
        )
