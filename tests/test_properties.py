"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MessageClass, NocConfig, RoutingAlgorithm
from repro.fabric.torus import Torus3D
from repro.memory.address import AddressMap
from repro.noc.mesh import MeshTopology
from repro.noc.routing import manhattan_distance, mesh_route
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.qp.queues import WorkQueue
from repro.sim.stats import StatAccumulator
from repro.sonuma.unroll import block_count, unroll_blocks

coords = st.tuples(st.integers(0, 7), st.integers(0, 7))
policies = st.sampled_from(list(RoutingAlgorithm))
classes = st.sampled_from(list(MessageClass))


class TestRoutingProperties:
    @given(policies, coords, coords, classes, st.integers(0, 1000))
    @settings(max_examples=150)
    def test_routes_are_minimal_and_connected(self, policy, src, dst, msg_class, packet_id):
        path = mesh_route(policy, src, dst, msg_class, packet_id)
        assert path[0] == src and path[-1] == dst
        assert len(path) == manhattan_distance(src, dst) + 1
        for a, b in zip(path, path[1:]):
            assert manhattan_distance(a, b) == 1

    @given(coords, coords, classes)
    def test_mesh_topology_route_matches_hop_count(self, src, dst, msg_class):
        mesh = MeshTopology(8, NocConfig())
        links = mesh.route(src, dst, msg_class)
        assert len(links) == mesh.hop_count(src, dst)


class TestTorusProperties:
    @given(st.integers(0, 511), st.integers(0, 511))
    @settings(max_examples=150)
    def test_distance_is_a_metric(self, a, b):
        torus = Torus3D((8, 8, 8))
        d = torus.hop_count(a, b)
        assert d == torus.hop_count(b, a)
        assert (d == 0) == (a == b)
        assert d <= torus.max_hop_count()

    @given(st.integers(0, 511), st.integers(0, 511), st.integers(0, 511))
    @settings(max_examples=75)
    def test_triangle_inequality(self, a, b, c):
        torus = Torus3D((8, 8, 8))
        assert torus.hop_count(a, c) <= torus.hop_count(a, b) + torus.hop_count(b, c)

    @given(st.integers(0, 511))
    def test_coordinate_round_trip(self, node):
        torus = Torus3D((8, 8, 8))
        assert torus.node_id(torus.coord(node)) == node


class TestAddressMapProperties:
    @given(st.integers(0, 2 ** 40))
    @settings(max_examples=150)
    def test_block_alignment_and_ranges(self, addr):
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        block = amap.block_address(addr)
        assert block % 64 == 0
        assert block <= addr < block + 64
        assert 0 <= amap.home_llc_slice(addr) < 64
        assert 0 <= amap.memory_controller(addr) < 8
        assert 0 <= amap.rrpp_for_offset(addr) < 8

    @given(st.integers(0, 2 ** 30), st.integers(1, 1 << 16))
    @settings(max_examples=100)
    def test_blocks_in_cover_exactly_the_requested_range(self, offset, length):
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        blocks = list(amap.blocks_in(offset, length))
        assert blocks[0] <= offset
        assert blocks[-1] + 64 >= offset + length
        assert blocks == sorted(set(blocks))
        assert all(b2 - b1 == 64 for b1, b2 in zip(blocks, blocks[1:]))


class TestUnrollProperties:
    @given(st.integers(1, 1 << 16), st.integers(0, 2 ** 20))
    @settings(max_examples=150)
    def test_unroll_covers_the_transfer_exactly_once(self, length, offset_blocks):
        offset = offset_blocks * 64
        entry = WorkQueueEntry(RemoteOp.READ, 0, 1, offset, 0, length)
        requests = unroll_blocks(entry, src_node=0, transfer_id=1)
        assert len(requests) == block_count(length)
        offsets = [r.offset for r in requests]
        assert offsets == sorted(offsets)
        assert offsets[0] == offset
        assert all(b - a == 64 for a, b in zip(offsets, offsets[1:]))
        assert all(r.total_blocks == len(requests) for r in requests)
        assert [r.block_index for r in requests] == list(range(len(requests)))


class TestQueueProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_work_queue_is_fifo_under_any_interleaving(self, offsets):
        wq = WorkQueue(capacity=16, base_addr=0)
        posted = []
        popped = []
        for offset in offsets:
            if wq.is_full():
                popped.append(wq.pop().remote_offset)
            entry = WorkQueueEntry(RemoteOp.READ, 0, 1, offset * 64, 0, 64)
            wq.post(entry)
            posted.append(offset * 64)
        while not wq.is_empty():
            popped.append(wq.pop().remote_offset)
        assert popped == posted
        assert wq.posts == len(posted) and wq.pops == len(popped)

    @given(st.integers(1, 256), st.integers(0, 255))
    def test_entry_block_addresses_are_block_aligned_and_ordered(self, capacity, index):
        wq = WorkQueue(capacity=capacity, base_addr=0x10000)
        index = index % capacity
        addr = wq.entry_block_address(index)
        assert addr % 64 == 0
        assert 0x10000 <= addr < 0x10000 + capacity * 32 + 64


class TestStatProperties:
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_accumulator_matches_reference_mean_and_bounds(self, values):
        acc = StatAccumulator()
        for value in values:
            acc.add(value)
        assert acc.count == len(values)
        assert acc.minimum == min(values)
        assert acc.maximum == max(values)
        assert abs(acc.mean - sum(values) / len(values)) < 1e-6 * max(1.0, abs(sum(values)))
        assert acc.variance >= -1e-9

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=100),
           st.integers(1, 99))
    @settings(max_examples=100)
    def test_merge_is_equivalent_to_sequential_adds(self, values, split_point):
        split_point = split_point % (len(values) - 1) + 1
        reference = StatAccumulator()
        for value in values:
            reference.add(value)
        left, right = StatAccumulator(), StatAccumulator()
        for value in values[:split_point]:
            left.add(value)
        for value in values[split_point:]:
            right.add(value)
        left.merge(right)
        assert left.count == reference.count
        assert abs(left.mean - reference.mean) < 1e-6 * max(1.0, abs(reference.mean))
