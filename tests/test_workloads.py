"""Tests for the microbenchmarks and application workloads."""

import pytest

from helpers import small_config

from repro.config import NIDesign
from repro.errors import WorkloadError
from repro.workloads.graphproc import GraphTraversalWorkload, SyntheticPowerLawGraph
from repro.workloads.kvstore import KeyValueStoreWorkload, ZipfKeySampler
from repro.workloads.microbench import (
    RemoteReadBandwidthBenchmark,
    RemoteReadLatencyBenchmark,
    _read_entries,
)


class TestEntryGenerator:
    def test_bounded_generator_yields_exactly_count(self):
        entries = list(_read_entries(5, 128, core_id=0))
        assert len(entries) == 5
        assert all(entry.length == 128 for entry in entries)

    def test_offsets_stay_inside_the_region(self):
        for entry in _read_entries(50, 8192, core_id=3, region_bytes=1 << 20):
            assert 0 <= entry.remote_offset
            assert entry.remote_offset + entry.length <= 1 << 20

    def test_invalid_size_rejected(self):
        with pytest.raises(WorkloadError):
            next(_read_entries(1, 0, core_id=0))


class TestLatencyBenchmark:
    def test_single_size_run(self, split_config):
        bench = RemoteReadLatencyBenchmark(split_config, iterations=3, warmup=1, tile_ids=(5,))
        result = bench.run(64)
        assert result.design is NIDesign.SPLIT
        assert len(result.samples_cycles) == 3
        assert result.mean_cycles > 300
        assert result.mean_ns == pytest.approx(result.mean_cycles / 2.0)

    def test_latency_grows_with_transfer_size(self, split_config):
        bench = RemoteReadLatencyBenchmark(split_config, iterations=3, warmup=1, tile_ids=(5,))
        assert bench.run(2048).mean_cycles > bench.run(64).mean_cycles

    def test_sweep_returns_one_result_per_size(self, split_config):
        bench = RemoteReadLatencyBenchmark(split_config, iterations=2, warmup=1, tile_ids=(5,))
        results = bench.sweep([64, 256])
        assert [r.transfer_bytes for r in results] == [64, 256]

    def test_invalid_parameters_rejected(self, split_config):
        with pytest.raises(WorkloadError):
            RemoteReadLatencyBenchmark(split_config, iterations=0)
        with pytest.raises(WorkloadError):
            RemoteReadLatencyBenchmark(split_config, warmup=-1)


class TestBandwidthBenchmark:
    def test_short_run_reports_positive_bandwidth(self, split_config):
        bench = RemoteReadBandwidthBenchmark(split_config, warmup_cycles=1000, measure_cycles=3000)
        result = bench.run(512)
        assert result.application_gbps > 0
        assert result.rcp_payload_bytes > 0
        assert result.rrpp_payload_bytes > 0
        assert result.noc_wire_gbps > result.application_gbps
        assert 0 < result.max_link_utilization <= 1.0

    def test_outstanding_limit_scales_with_transfer_size(self, split_config):
        bench = RemoteReadBandwidthBenchmark(split_config)
        assert bench.max_outstanding_for(64) == split_config.ni.wq_entries
        assert bench.max_outstanding_for(8192) == 4

    def test_invalid_windows_rejected(self, split_config):
        with pytest.raises(WorkloadError):
            RemoteReadBandwidthBenchmark(split_config, measure_cycles=0)


class TestZipfSampler:
    def test_samples_are_within_key_space(self):
        sampler = ZipfKeySampler(keys=1000, seed=1)
        assert all(0 <= sampler.sample() < 1000 for _ in range(200))

    def test_distribution_is_skewed(self):
        sampler = ZipfKeySampler(keys=1000, skew=1.2, seed=2)
        counts = {}
        for _ in range(2000):
            key = sampler.sample()
            counts[key] = counts.get(key, 0) + 1
        top = max(counts.values())
        assert top > 2000 / 1000 * 5  # far above uniform expectation

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfKeySampler(keys=0)


class TestKeyValueStore:
    def test_run_completes_and_reports(self, split_config):
        workload = KeyValueStoreWorkload(
            split_config, value_bytes=256, active_cores=2, gets_per_core=6, rack_nodes=16
        )
        result = workload.run()
        assert result.gets_issued == 12
        assert result.remote_gets + result.local_gets == result.gets_issued
        assert result.remote_gets > 0
        assert result.throughput_mops > 0
        assert result.mean_latency_cycles > 0

    def test_key_partitioning_is_deterministic(self, split_config):
        workload = KeyValueStoreWorkload(split_config, rack_nodes=8)
        assert workload.owner_node(1234) == workload.owner_node(1234)
        assert 0 <= workload.owner_node(999) < 8

    def test_invalid_parameters(self, split_config):
        with pytest.raises(WorkloadError):
            KeyValueStoreWorkload(split_config, value_bytes=0)
        with pytest.raises(WorkloadError):
            KeyValueStoreWorkload(split_config, active_cores=0)


class TestGraphWorkload:
    def test_synthetic_graph_structure(self):
        graph = SyntheticPowerLawGraph(vertices=256, edges_per_vertex=4, seed=1)
        assert graph.degree(0) > 0
        assert graph.adjacency_bytes(0) >= 8
        degrees = sorted((graph.degree(v) for v in range(256)), reverse=True)
        assert degrees[0] > degrees[-1]  # power-law-ish: hubs exist

    def test_traversal_run(self, split_config):
        graph = SyntheticPowerLawGraph(vertices=256, edges_per_vertex=4, seed=1)
        workload = GraphTraversalWorkload(
            split_config, graph=graph, rack_nodes=16, active_cores=2, max_vertices=20
        )
        result = workload.run()
        assert result.vertices_visited == 20
        assert result.remote_vertex_fetches > 0
        assert result.edges_traversed > 0
        assert result.bytes_fetched > 0
        assert result.edges_per_microsecond > 0

    def test_invalid_parameters(self, split_config):
        with pytest.raises(WorkloadError):
            GraphTraversalWorkload(split_config, max_vertices=0)
        with pytest.raises(WorkloadError):
            SyntheticPowerLawGraph(vertices=1)
