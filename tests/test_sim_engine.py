"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Process, Simulator, drain


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(10, order.append, "b")
        sim.schedule(5, order.append, "a")
        sim.schedule(20, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 20

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5, order.append, 1)
        sim.schedule(5, order.append, 2)
        sim.schedule(5, order.append, 3)
        sim.run()
        assert order == [1, 2, 3]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1, chain, depth + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3


class TestRunBounds:
    def test_run_until_stops_the_clock_at_the_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, fired.append, "early")
        sim.schedule(50, fired.append, "late")
        sim.run(until=10)
        assert fired == ["early"]
        assert sim.now == 10
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=100)
        assert sim.now == 100

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_stop_from_within_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, fired.append, "a")
        sim.schedule(2, sim.stop)
        sim.schedule(3, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 4


class TestProcess:
    def test_process_yields_delays(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(("start", sim.now))
            yield 10
            trace.append(("mid", sim.now))
            yield 5
            trace.append(("end", sim.now))
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.finished
        assert proc.result == "done"
        assert trace == [("start", 0.0), ("mid", 10.0), ("end", 15.0)]

    def test_process_completion_callback(self):
        sim = Simulator()
        seen = []

        def worker():
            yield 1
            return 42

        proc = sim.process(worker())
        proc.on_complete(lambda p: seen.append(p.result))
        sim.run()
        assert seen == [42]

    def test_negative_yield_raises(self):
        sim = Simulator()

        def worker():
            yield -5

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_drain_runs_until_all_processes_finish(self):
        sim = Simulator()

        def worker(delay):
            yield delay
            return delay

        procs = [sim.process(worker(d)) for d in (3, 7, 1)]
        drain(sim, procs)
        assert all(p.finished for p in procs)
        assert sim.now == 7
