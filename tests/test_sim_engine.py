"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Process, Simulator, drain


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(10, order.append, "b")
        sim.schedule(5, order.append, "a")
        sim.schedule(20, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 20

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5, order.append, 1)
        sim.schedule(5, order.append, 2)
        sim.schedule(5, order.append, 3)
        sim.run()
        assert order == [1, 2, 3]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1, chain, depth + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3


class TestRunBounds:
    def test_run_until_stops_the_clock_at_the_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, fired.append, "early")
        sim.schedule(50, fired.append, "late")
        sim.run(until=10)
        assert fired == ["early"]
        assert sim.now == 10
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=100)
        assert sim.now == 100

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_run_until_in_the_past_does_not_rewind_the_clock(self):
        # Regression: run(until=X) with X < now used to set now = X, moving
        # simulation time backwards.
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        assert sim.now == 10
        sim.schedule(20, lambda: None)
        sim.run(until=5)
        assert sim.now == 10

    def test_run_until_in_the_past_executes_nothing(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        fired = []
        sim.schedule(1, fired.append, "later")
        sim.run(until=3)
        assert fired == []
        assert sim.now == 10

    def test_stop_from_within_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, fired.append, "a")
        sim.schedule(2, sim.stop)
        sim.schedule(3, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 4


class TestFastPath:
    def test_fast_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_fast(10, order.append, "b")
        sim.schedule_fast(5, order.append, "a")
        sim.schedule_fast(20, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 20
        assert sim.events_executed == 3

    def test_fast_and_slow_events_interleave_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5, order.append, 1)
        sim.schedule_fast(5, order.append, 2)
        sim.schedule(5, order.append, 3)
        sim.schedule_fast(5, order.append, 4)
        sim.run()
        assert order == [1, 2, 3, 4]

    def test_fast_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_fast(-1, lambda: None)

    def test_fast_events_counted_in_peak_pending(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule_fast(i + 1, lambda: None)
        assert sim.peak_pending_events == 7
        sim.run()
        assert sim.pending_events == 0

    def test_fast_events_survive_compaction(self):
        sim = Simulator()
        fired = []
        sim.schedule_fast(600, fired.append, "fast")
        doomed = [sim.schedule(100 + i, fired.append, "dead") for i in range(300)]
        for event in doomed:
            sim.cancel(event)
        sim.run()
        assert fired == ["fast"]

    def test_step_executes_fast_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_fast(3, fired.append, "x")
        assert sim.step() is True
        assert fired == ["x"]
        assert sim.now == 3

    def test_run_until_respects_fast_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_fast(5, fired.append, "early")
        sim.schedule_fast(50, fired.append, "late")
        sim.run(until=10)
        assert fired == ["early"]
        assert sim.now == 10


class TestNextEventTime:
    def test_empty_queue_returns_none(self):
        assert Simulator().next_event_time() is None

    def test_returns_head_time_without_popping(self):
        sim = Simulator()
        sim.schedule(7, lambda: None)
        sim.schedule_fast(3, lambda: None)
        assert sim.next_event_time() == 3
        assert sim.pending_events == 2

    def test_skips_cancelled_head_events(self):
        sim = Simulator()
        dead = sim.schedule(1, lambda: None)
        sim.schedule(9, lambda: None)
        sim.cancel(dead)
        assert sim.next_event_time() == 9
        # The cancelled head was purged on the way.
        assert sim.pending_events == 1


class TestProcess:
    def test_process_yields_delays(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(("start", sim.now))
            yield 10
            trace.append(("mid", sim.now))
            yield 5
            trace.append(("end", sim.now))
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.finished
        assert proc.result == "done"
        assert trace == [("start", 0.0), ("mid", 10.0), ("end", 15.0)]

    def test_process_completion_callback(self):
        sim = Simulator()
        seen = []

        def worker():
            yield 1
            return 42

        proc = sim.process(worker())
        proc.on_complete(lambda p: seen.append(p.result))
        sim.run()
        assert seen == [42]

    def test_negative_yield_raises(self):
        sim = Simulator()

        def worker():
            yield -5

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_drain_runs_until_all_processes_finish(self):
        sim = Simulator()

        def worker(delay):
            yield delay
            return delay

        procs = [sim.process(worker(d)) for d in (3, 7, 1)]
        drain(sim, procs)
        assert all(p.finished for p in procs)
        assert sim.now == 7

    def test_drain_accepts_already_finished_processes(self):
        sim = Simulator()

        def worker():
            yield 1
            return "ok"

        done = sim.process(worker())
        sim.run()
        assert done.finished
        drain(sim, [done])  # must not raise or run anything
        assert sim.now == 1

    def test_drain_stops_as_soon_as_the_last_process_finishes(self):
        # The completion counter must not keep stepping unrelated events
        # once every tracked process is done.
        sim = Simulator()

        def worker():
            yield 2

        proc = sim.process(worker())
        unrelated = []
        sim.schedule(100, unrelated.append, "straggler")
        drain(sim, [proc])
        assert proc.finished
        assert unrelated == []

    def test_drain_raises_when_the_simulation_goes_idle(self):
        sim = Simulator()

        def forever():
            yield 1
            while True:
                received = yield  # never resumed: no one sends to us
                del received

        # A generator pending on an event that never comes: emulate by a
        # process whose chain we cut off with stop(), then drain directly.
        proc = Process(sim, forever())
        # Never started: it can never finish, and the queue is empty.
        with pytest.raises(SimulationError, match="1 unfinished"):
            drain(sim, [proc])

    def test_drain_until_bound_raises(self):
        sim = Simulator()

        def slow():
            yield 100

        proc = sim.process(slow())
        with pytest.raises(SimulationError, match="did not finish"):
            drain(sim, [proc], until=10)


class TestCancellationAndCompaction:
    def test_simulator_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5, fired.append, "x")
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(5, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run()

    def test_heavy_cancellation_compacts_the_heap(self):
        sim = Simulator()
        keep = sim.schedule(1_000, lambda: None)
        doomed = [sim.schedule(100 + i, lambda: None) for i in range(500)]
        assert sim.pending_events == 501
        for event in doomed:
            sim.cancel(event)
        # Lazy purging must have bounded the queue: at most the live event
        # plus less-than-half dead entries remain.
        assert sim.pending_events < 251
        fired_at = []
        sim.schedule_at(1_000, lambda: fired_at.append(sim.now))
        sim.run()
        assert sim.now == 1_000
        assert not keep.cancelled

    def test_compaction_preserves_event_order(self):
        sim = Simulator()
        order = []
        events = [sim.schedule(10 + i, order.append, i) for i in range(200)]
        for event in events[::2]:
            sim.cancel(event)
        sim.run()
        assert order == list(range(1, 200, 2))

    def test_cancel_from_within_event_is_safe(self):
        # Compaction replaces heap contents while run() holds a reference to
        # the heap; cancelling en masse from inside a callback must not lose
        # the surviving events.
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(50 + i, fired.append, "dead") for i in range(300)]
        sim.schedule(1, lambda: [sim.cancel(e) for e in doomed])
        sim.schedule(400, fired.append, "alive")
        sim.run()
        assert fired == ["alive"]

    def test_peak_pending_events_tracks_high_water_mark(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        assert sim.peak_pending_events == 10
        sim.run()
        assert sim.pending_events == 0
        assert sim.peak_pending_events == 10

    def test_event_cancel_method_still_works(self):
        # The legacy Event.cancel() path (no simulator bookkeeping) must keep
        # skipping the event when it surfaces.
        sim = Simulator()
        fired = []
        event = sim.schedule(5, fired.append, "x")
        event.cancel()
        sim.schedule(6, fired.append, "y")
        sim.run()
        assert fired == ["y"]

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1, fired.append, "x")
        sim.run()
        sim.cancel(event)  # stale cancel of an already-fired event
        sim.schedule(1, fired.append, "y")
        sim.run()
        assert fired == ["x", "y"]

    def test_mixed_legacy_and_simulator_cancels(self):
        # Legacy Event.cancel() entries popping must not drain the
        # simulator's bookkeeping for events cancelled via sim.cancel().
        sim = Simulator()
        fired = []
        legacy = [sim.schedule(10 + i, fired.append, "l") for i in range(50)]
        tracked = [sim.schedule(500 + i, fired.append, "t") for i in range(200)]
        for event in legacy:
            event.cancel()
        sim.run(until=100)  # pops every legacy-cancelled entry
        for event in tracked:
            sim.cancel(event)
        # Compaction must have removed the bulk of the 200 dead entries; at
        # most a sub-threshold remainder may linger until the next pass.
        assert sim.pending_events < 64
        sim.run()
        assert fired == []
