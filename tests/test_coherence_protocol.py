"""Tests for the MESI directory protocol choreography (Fig. 2)."""

import pytest

from repro.coherence.caches import L1Cache, NICache, TileCacheComplex
from repro.coherence.directory import DirectoryController
from repro.coherence.protocol import CoherenceProtocol
from repro.coherence.states import CacheState
from repro.config import NocConfig
from repro.errors import CoherenceError
from repro.noc.fabric import NocFabric
from repro.noc.mesh import MeshTopology
from repro.sim.engine import Simulator

SIDE = 4


class Harness:
    """A small chip with a mesh NOC, a directory and a few cache complexes."""

    def __init__(self, owned_state: bool = True):
        self.sim = Simulator()
        self.topology = MeshTopology(SIDE, NocConfig())
        self.fabric = NocFabric(self.sim, self.topology, NocConfig())
        self.directory = DirectoryController(home_tile_count=SIDE * SIDE)
        self.protocol = CoherenceProtocol(
            sim=self.sim,
            fabric=self.fabric,
            directory=self.directory,
            home_node_of_tile=self.topology.tile_coord,
            llc_latency_cycles=6,
        )
        # A core tile with a collocated NI cache, a plain core tile, and an
        # edge NI cache (its own coherence agent), as in the studied designs.
        self.core0 = TileCacheComplex(("tile", 0), self.topology.tile_coord(5),
                                      l1=L1Cache(0), ni_cache=NICache("ni0", owned_state_enabled=owned_state))
        self.core1 = TileCacheComplex(("tile", 1), self.topology.tile_coord(10), l1=L1Cache(1))
        self.edge_ni = TileCacheComplex(("ni_edge", 0), (0, 1), ni_cache=NICache("edge_ni"))
        for complex_ in (self.core0, self.core1, self.edge_ni):
            self.protocol.register_complex(complex_)

    def access(self, complex_, kind, addr, write):
        """Run one access to completion and return its AccessResult."""
        results = []
        self.protocol.access(complex_.entity_id, kind, addr, write, results.append)
        self.sim.run()
        assert len(results) == 1, "access did not complete exactly once"
        return results[0]


BLOCK = 64 * 7  # home tile 7


class TestBasicTransactions:
    def test_read_miss_served_from_llc(self):
        h = Harness()
        h.protocol.prewarm(BLOCK)
        result = h.access(h.core0, "core", BLOCK, write=False)
        assert not result.served_locally
        assert result.latency > 0
        assert h.core0.state(BLOCK) is CacheState.SHARED
        assert h.directory.entry(BLOCK).sharers == {("tile", 0)}

    def test_read_miss_without_llc_copy_fetches_memory(self):
        h = Harness()
        result = h.access(h.core0, "core", BLOCK, write=False)
        assert h.directory.memory_fetches == 1
        # The fallback memory latency (100 cycles) must show up in the latency.
        assert result.latency > 100

    def test_write_miss_gets_modified_state(self):
        h = Harness()
        h.protocol.prewarm(BLOCK)
        result = h.access(h.core0, "core", BLOCK, write=True)
        assert h.core0.state(BLOCK) is CacheState.MODIFIED
        assert h.directory.entry(BLOCK).owner == ("tile", 0)
        assert not result.served_locally

    def test_local_hit_after_install(self):
        h = Harness()
        h.protocol.prewarm(BLOCK)
        h.access(h.core0, "core", BLOCK, write=True)
        result = h.access(h.core0, "core", BLOCK, write=True)
        assert result.served_locally
        assert result.latency == pytest.approx(3)  # L1 hit

    def test_unknown_entity_rejected(self):
        h = Harness()
        with pytest.raises(CoherenceError):
            h.protocol.access("nobody", "core", BLOCK, True, lambda r: None)

    def test_duplicate_registration_rejected(self):
        h = Harness()
        with pytest.raises(CoherenceError):
            h.protocol.register_complex(h.core0)


class TestInvalidationPath:
    """Fig. 2a: a core writing a WQ block that an edge NI cache polls on."""

    def test_write_invalidates_remote_sharer(self):
        h = Harness()
        h.protocol.prewarm(BLOCK)
        entry = h.directory.entry(BLOCK)
        entry.record_shared({h.edge_ni.entity_id})
        h.edge_ni.install(BLOCK, CacheState.SHARED, into="ni")
        result = h.access(h.core0, "core", BLOCK, write=True)
        assert h.edge_ni.state(BLOCK) is CacheState.INVALID
        assert h.core0.state(BLOCK) is CacheState.MODIFIED
        assert h.protocol.invalidations_sent == 1
        assert entry.owner == ("tile", 0)
        assert result.latency > 20  # multiple NOC crossings

    def test_invalidation_cost_exceeds_plain_miss(self):
        """Invalidating the polling NI makes the write slower than an unshared write."""
        shared = Harness()
        shared.protocol.prewarm(BLOCK)
        shared.directory.entry(BLOCK).record_shared({shared.edge_ni.entity_id})
        shared.edge_ni.install(BLOCK, CacheState.SHARED, into="ni")
        with_sharer = shared.access(shared.core0, "core", BLOCK, write=True).latency

        unshared = Harness()
        unshared.protocol.prewarm(BLOCK)
        without_sharer = unshared.access(unshared.core0, "core", BLOCK, write=True).latency
        assert with_sharer > without_sharer


class TestForwardingPath:
    """Fig. 2b: the NI reading a WQ block that is modified in the core's L1."""

    def test_read_forwarded_from_modified_owner(self):
        h = Harness()
        h.protocol.prewarm(BLOCK)
        h.access(h.core1, "core", BLOCK, write=True)  # core1 now owns the block
        result = h.access(h.edge_ni, "ni", BLOCK, write=False)
        assert h.protocol.forwards_sent == 1
        assert h.core1.state(BLOCK) is CacheState.SHARED
        assert h.edge_ni.state(BLOCK) is CacheState.SHARED
        assert h.directory.entry(BLOCK).in_llc is True
        assert result.latency > 20

    def test_write_forward_invalidates_previous_owner(self):
        h = Harness()
        h.protocol.prewarm(BLOCK)
        h.access(h.core1, "core", BLOCK, write=True)
        h.access(h.core0, "core", BLOCK, write=True)
        assert h.core1.state(BLOCK) is CacheState.INVALID
        assert h.core0.state(BLOCK) is CacheState.MODIFIED
        assert h.directory.entry(BLOCK).owner == ("tile", 0)


class TestBlockingDirectory:
    def test_concurrent_accesses_to_one_block_serialize(self):
        h = Harness()
        h.protocol.prewarm(BLOCK)
        results = []
        h.protocol.access(h.core0.entity_id, "core", BLOCK, True, results.append)
        h.protocol.access(h.core1.entity_id, "core", BLOCK, True, results.append)
        h.sim.run()
        assert len(results) == 2
        assert h.directory.transactions_queued == 1
        # Whoever finished last owns the block.
        last = max(results, key=lambda r: r.complete_time)
        first = min(results, key=lambda r: r.complete_time)
        assert last.complete_time > first.complete_time
        assert h.directory.entry(BLOCK).owner is not None


class TestOwnedStateWritebackPath:
    def test_disabled_owned_state_costs_an_llc_roundtrip(self):
        fast = Harness(owned_state=True)
        fast.protocol.prewarm(BLOCK)
        fast.access(fast.core0, "ni", BLOCK, write=True)        # NI cache holds the block dirty
        fast_read = fast.access(fast.core0, "core", BLOCK, write=False)

        slow = Harness(owned_state=False)
        slow.protocol.prewarm(BLOCK)
        slow.access(slow.core0, "ni", BLOCK, write=True)
        slow_read = slow.access(slow.core0, "core", BLOCK, write=False)

        assert fast_read.served_locally and slow_read.served_locally
        assert slow_read.latency > fast_read.latency
        assert slow.protocol.local_writeback_roundtrips == 1
        assert slow.directory.entry(BLOCK).in_llc is True
