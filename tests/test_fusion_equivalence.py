"""Lookahead hop fusion must be behaviourally invisible.

The hard requirement of the fused fast path: every figure, table, scenario
and load sweep produces byte-identical output whether fusion is enabled or
force-disabled (``REPRO_HOP_FUSION=0``), and the *number of hops fused* is
itself deterministic — pinned across repeated runs and across ``--parallel``
campaign workers, so performance counters can be compared between machines
and runs.
"""

import itertools
import json

import repro.noc.packet as packet_module
from repro.campaign import Campaign, RunRequest
from repro.experiments.registry import get_spec


def _strip_timing(result):
    """Wall-clock and throughput metadata legitimately differ run to run."""
    result.metadata.wall_time_s = 0.0
    result.metadata.perf = {}
    return result


def _run(monkeypatch, fusion, spec_name, **params):
    with monkeypatch.context() as patch:
        patch.setenv("REPRO_HOP_FUSION", "1" if fusion else "0")
        patch.setattr(packet_module, "_packet_ids", itertools.count())
        return get_spec(spec_name).run(**params)


class TestByteIdenticalOutputs:
    """Fusion on vs force-disabled, over every simulated output family."""

    def _compare(self, monkeypatch, spec_name, **params):
        fused = _strip_timing(_run(monkeypatch, True, spec_name, **params))
        unfused = _strip_timing(_run(monkeypatch, False, spec_name, **params))
        assert fused.to_csv() == unfused.to_csv()
        assert fused.format() == unfused.format()
        assert json.dumps(fused.to_dict(), sort_keys=True) == \
            json.dumps(unfused.to_dict(), sort_keys=True)

    def test_fig6_byte_identical(self, monkeypatch):
        self._compare(monkeypatch, "fig6", sizes=(64, 1024), iterations=2, warmup=1)

    def test_table1_byte_identical(self, monkeypatch):
        self._compare(monkeypatch, "table1")

    def test_kvstore_scenario_byte_identical(self, monkeypatch):
        self._compare(
            monkeypatch, "scenario", workload="kvstore",
            params=("active_cores=4", "gets_per_core=6"),
        )

    def test_load_sweep_byte_identical(self, monkeypatch):
        self._compare(
            monkeypatch, "load_sweep", loads=(5.0, 40.0),
            warmup_cycles=1000.0, measure_cycles=4000.0,
        )


class TestFusedHopDeterminism:
    """The fused-hop count is part of the reproducibility contract."""

    def test_fig6_pins_fused_hop_count_across_runs(self, monkeypatch):
        params = dict(sizes=(64, 1024), iterations=2, warmup=1)
        first = _run(monkeypatch, True, "fig6", **params)
        second = _run(monkeypatch, True, "fig6", **params)
        assert first.metadata.perf["fused_hops"] > 0
        assert first.metadata.perf["fused_hops"] == second.metadata.perf["fused_hops"]
        assert first.metadata.perf["events"] == second.metadata.perf["events"]

    def test_load_sweep_pins_fused_hop_count_across_runs(self, monkeypatch):
        params = dict(loads=(8.0,), warmup_cycles=1000.0, measure_cycles=4000.0)
        first = _run(monkeypatch, True, "load_sweep", **params)
        second = _run(monkeypatch, True, "load_sweep", **params)
        assert first.metadata.perf["fused_hops"] > 0
        assert first.metadata.perf["fused_hops"] == second.metadata.perf["fused_hops"]

    def test_disabled_fusion_reports_zero_fused_hops(self, monkeypatch):
        result = _run(monkeypatch, False, "fig6", sizes=(64,), iterations=1, warmup=0)
        assert result.metadata.perf["fused_hops"] == 0
        assert result.metadata.perf["events"] > 0

    def test_parallel_campaign_workers_match_serial_run(self, monkeypatch):
        """--parallel fans entries over processes; counters must not move."""
        def requests():
            return [
                RunRequest("fig6", {"sizes": [64], "iterations": 1, "warmup": 0}),
                RunRequest("fig6", {"sizes": [1024], "iterations": 1, "warmup": 0}),
            ]

        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        serial = Campaign(requests()).run()
        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        parallel = Campaign(requests(), max_workers=2).run()
        assert serial.succeeded == parallel.succeeded == 2
        for entry_s, entry_p in zip(serial.entries, parallel.entries):
            assert entry_s.result.rows == entry_p.result.rows
            assert entry_s.result.metadata.perf["fused_hops"] == \
                entry_p.result.metadata.perf["fused_hops"]
            assert entry_s.result.metadata.perf["fused_hops"] > 0
        assert serial.fused_hops == parallel.fused_hops


class TestCampaignFusedHopSurfacing:
    def test_report_aggregates_and_prints_fused_hops(self, monkeypatch):
        monkeypatch.setattr(packet_module, "_packet_ids", itertools.count())
        report = Campaign(
            [RunRequest("fig6", {"sizes": [64], "iterations": 1, "warmup": 0})]
        ).run()
        assert report.fused_hops > 0
        summary = report.summary()
        assert "hop(s) fused" in summary
