"""Tests for the design-space exploration subsystem (repro.explore)."""

import json

import pytest

from repro.errors import ExperimentError, ExploreError
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment, unregister
from repro.explore import (
    Explorer,
    ExploreReport,
    OBJECTIVES,
    ParetoEntry,
    ParetoFront,
    SearchDimension,
    SearchSpace,
    build_space,
    default_dimensions,
    dominates,
    load_explore_report,
    main_effects,
    parse_dimension,
    resolve_objectives,
)
from repro.explore.engine import Evaluation
from repro.explore.strategies import (
    EvolveStrategy,
    GridScreenStrategy,
    RandomStrategy,
    fractional_factorial,
    latin_hypercube,
    strategy_seed,
)
from repro.explore.surrogate import QuadraticSurrogate, quadratic_features
from repro.campaign import ResultCache, RunRequest
from repro.faults.metrics import degraded_saturation_points, worst_degraded_saturation
from repro.scenario.registry import EXPLORE_STRATEGIES

#: Fixed overrides that make a real load_sweep evaluation fast enough for
#: tests: one offered load and tiny warmup/measure windows.
TINY_SWEEP = {"loads": [4.0], "measure_cycles": 2000.0, "warmup_cycles": 300.0}
TINY_DIMS = ["design=edge,split", "arrivals=poisson,deterministic"]


@pytest.fixture
def synthetic_experiment():
    """A throwaway experiment with a deterministic saturation landscape."""
    calls = {"count": 0}

    @experiment(
        name="explore-test",
        title="ExploreTest",
        description="test-only exploration target",
        parameters=(
            Parameter("alpha", int, default=0),
            Parameter("beta", int, default=0),
        ),
    )
    def run_explore_test(config=None, alpha=0, beta=0):
        calls["count"] += 1
        result = ExperimentResult(
            "ExploreTest", "test", headers=["load (req/kcycle)", "p99 (ns)"]
        )
        result.add_row(1.0, 100.0 + 10.0 * alpha + beta * beta)
        result.add_note(
            "saturation throughput: %.2f req/kcycle" % (2.0 + alpha - 0.25 * beta)
        )
        return result

    yield calls
    unregister("explore-test")


def synthetic_space(alphas=(0, 1, 2), betas=(0, 1, 2, 3)):
    return SearchSpace(
        experiment="explore-test",
        dimensions=(
            SearchDimension("alpha", "int", tuple(alphas)),
            SearchDimension("beta", "int", tuple(betas)),
        ),
    )


def front_from_report(report):
    """Rebuild a live ParetoFront from a report's serialized Pareto set."""
    objectives = resolve_objectives([o["name"] for o in report.objectives])
    front = ParetoFront(objectives)
    for entry in report.pareto:
        front.offer(ParetoEntry(
            index=entry["index"], point=entry["point"],
            objectives=entry["objectives"], fingerprint=entry["fingerprint"],
        ))
    return front


# ----------------------------------------------------------------------
# Search space
# ----------------------------------------------------------------------
class TestSearchDimension:
    def test_needs_two_levels(self):
        with pytest.raises(ExploreError):
            SearchDimension("x", "int", (1,))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ExploreError):
            SearchDimension("x", "bogus", (1, 2))

    def test_unit_and_clamp(self):
        dim = SearchDimension("x", "int", (10, 20, 30))
        assert dim.unit(0) == 0.0
        assert dim.unit(2) == 1.0
        assert dim.clamp(-3) == 0
        assert dim.clamp(99) == 2


class TestParseDimension:
    def test_categorical_levels(self):
        dim = parse_dimension("load_sweep", "design=edge,split")
        assert dim.kind == "categorical"
        assert dim.levels == ("edge", "split")

    def test_categorical_levels_validated(self):
        with pytest.raises(ExperimentError):
            parse_dimension("load_sweep", "design=edge,bogus")

    def test_numeric_range_int(self):
        dim = parse_dimension("load_sweep", "queue_depth=16:64:3")
        assert dim.kind == "int"
        assert dim.levels == (16, 40, 64)

    def test_numeric_range_float_default_steps(self):
        dim = parse_dimension("load_sweep", "slo_factor=2:4")
        assert dim.kind == "float"
        assert len(dim.levels) == 5
        assert dim.levels[0] == 2.0 and dim.levels[-1] == 4.0

    def test_repeated_parameter_uses_colon_joined_levels(self):
        # For a repeated parameter, ':' joins one level's values (the sweep
        # convention), so 'loads=2:5,5:20' is two list levels, not a range.
        dim = parse_dimension("load_sweep", "loads=2:5,5:20")
        assert dim.kind == "categorical"
        assert dim.levels == ([2.0, 5.0], [5.0, 20.0])

    def test_malformed_assignment(self):
        with pytest.raises(ExploreError):
            parse_dimension("load_sweep", "design")
        with pytest.raises(ExploreError):
            parse_dimension("load_sweep", "queue_depth=1:2:3:4")


class TestSearchSpace:
    def test_size_and_enumeration_order(self, synthetic_experiment):
        space = synthetic_space()
        assert len(space) == 12
        indices = list(space.enumerate_indices())
        assert len(indices) == 12
        assert indices[0] == (0, 0)
        assert indices[1] == (0, 1)  # last dimension varies fastest
        assert indices[-1] == (2, 3)

    def test_point_indices_round_trip(self, synthetic_experiment):
        space = synthetic_space()
        point = space.point((1, 2))
        assert point == {"alpha": 1, "beta": 2}
        assert space.indices(point) == (1, 2)
        with pytest.raises(ExploreError):
            space.indices({"alpha": 99, "beta": 0})

    def test_point_key_is_order_insensitive(self):
        assert SearchSpace.point_key({"a": 1, "b": 2}) == \
            SearchSpace.point_key({"b": 2, "a": 1})

    def test_unknown_dimension_rejected(self, synthetic_experiment):
        with pytest.raises(ExperimentError):
            SearchSpace("explore-test",
                        (SearchDimension("bogus", "int", (1, 2)),))

    def test_dimension_level_values_validated(self, synthetic_experiment):
        with pytest.raises(ExperimentError):
            SearchSpace("explore-test",
                        (SearchDimension("alpha", "categorical", ("a", "b")),))

    def test_fixed_overlap_rejected(self, synthetic_experiment):
        with pytest.raises(ExploreError):
            SearchSpace("explore-test",
                        (SearchDimension("alpha", "int", (0, 1)),),
                        fixed={"alpha": 2})

    def test_to_request_merges_fixed_under_point(self, synthetic_experiment):
        space = SearchSpace("explore-test",
                            (SearchDimension("alpha", "int", (0, 1)),),
                            fixed={"beta": 3})
        request = space.to_request({"alpha": 1})
        assert request == RunRequest("explore-test", {"alpha": 1, "beta": 3})

    def test_serialization_round_trip(self, synthetic_experiment):
        space = synthetic_space()
        assert SearchSpace.from_dict(space.to_dict()) == space

    def test_default_dimensions_for_load_sweep(self):
        names = [dim.name for dim in default_dimensions("load_sweep")]
        assert names == ["design", "topology", "arrivals"]

    def test_build_space_with_fixed(self):
        space = build_space("load_sweep", TINY_DIMS, TINY_SWEEP)
        assert len(space) == 4
        assert space.fixed["loads"] == [4.0]


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
class TestObjectives:
    def test_resolve_preserves_order_and_rejects_unknown(self):
        objectives = resolve_objectives(["p99", "saturation"])
        assert [o.name for o in objectives] == ["p99", "saturation"]
        with pytest.raises(ExploreError):
            resolve_objectives(["bogus"])
        with pytest.raises(ExploreError):
            resolve_objectives(["p99", "p99"])
        with pytest.raises(ExploreError):
            resolve_objectives([])

    def test_saturation_from_note(self):
        result = ExperimentResult("t", "t", headers=["x"])
        result.add_note("saturation throughput: 4.93 req/kcycle (offered 5.00)")
        assert OBJECTIVES["saturation"].extract(result) == 4.93

    def test_saturation_not_met_is_zero(self):
        result = ExperimentResult("t", "t", headers=["x"])
        result.add_note("saturation throughput: not met at any measured load")
        assert OBJECTIVES["saturation"].extract(result) == 0.0

    def test_saturation_absent_is_none(self):
        result = ExperimentResult("t", "t", headers=["x"])
        assert OBJECTIVES["saturation"].extract(result) is None

    def test_p99_takes_lowest_load_row(self):
        result = ExperimentResult("t", "t", headers=["load", "p99 (ns)"])
        result.add_row(1.0, 120.0)
        result.add_row(2.0, 480.0)
        assert OBJECTIVES["p99"].extract(result) == 120.0

    def test_cost_from_perf_events(self):
        result = ExperimentResult("t", "t", headers=["x"])
        assert OBJECTIVES["cost"].extract(result) is None
        result.metadata.perf["events"] = 1234.0
        assert OBJECTIVES["cost"].extract(result) == 1234.0

    def test_degraded_saturation_from_chaos_notes(self):
        result = ExperimentResult("t", "t", headers=["x"])
        result.add_note("resilience: link_down intensity 0.25: degraded "
                        "saturation 4.00 req/kcycle (offered 5.00)")
        result.add_note("resilience: link_down intensity 0.50: degraded "
                        "saturation 2.50 req/kcycle (offered 5.00)")
        assert OBJECTIVES["degraded_saturation"].extract(result) == 2.5

    def test_oriented_flips_min_objectives(self):
        assert OBJECTIVES["saturation"].oriented(3.0) == 3.0
        assert OBJECTIVES["p99"].oriented(3.0) == -3.0


class TestFaultMetricsNotes:
    def test_degraded_points_parse_intensity_map(self):
        notes = [
            "resilience baseline: fault-free saturation 5.00 req/kcycle",
            "resilience: ni_stall intensity 0.25: degraded saturation "
            "4.00 req/kcycle (offered 5.00); tail x1.2",
            "resilience: ni_stall intensity 0.75: SLO not met at any measured load",
            "unrelated note",
        ]
        assert degraded_saturation_points(notes) == {0.25: 4.0, 0.75: 0.0}

    def test_worst_degraded_saturation(self):
        notes = [
            "resilience: f intensity 0.25: degraded saturation 4.00 req/kcycle",
            "resilience: f intensity 0.50: degraded saturation 3.00 req/kcycle",
        ]
        assert worst_degraded_saturation(notes) == 3.0
        assert worst_degraded_saturation(["no resilience here"]) is None


# ----------------------------------------------------------------------
# Pareto front
# ----------------------------------------------------------------------
class TestPareto:
    def objectives(self):
        return resolve_objectives(["saturation", "p99"])

    def test_dominates_orients_senses(self):
        objectives = self.objectives()
        better = {"saturation": 5.0, "p99": 100.0}
        worse = {"saturation": 4.0, "p99": 200.0}
        mixed = {"saturation": 6.0, "p99": 300.0}
        assert dominates(better, worse, objectives)
        assert not dominates(worse, better, objectives)
        assert not dominates(better, mixed, objectives)
        assert not dominates(better, dict(better), objectives)  # tie

    def test_offer_evicts_dominated_and_keeps_ties(self):
        front = ParetoFront(self.objectives())
        assert front.offer(ParetoEntry(0, {"a": 0}, {"saturation": 4.0, "p99": 200.0}))
        assert front.offer(ParetoEntry(1, {"a": 1}, {"saturation": 5.0, "p99": 100.0}))
        assert len(front) == 1  # entry 0 evicted
        assert not front.offer(ParetoEntry(2, {"a": 2}, {"saturation": 4.5, "p99": 150.0}))
        assert front.offer(ParetoEntry(3, {"a": 3}, {"saturation": 5.0, "p99": 100.0}))
        assert [entry.index for entry in front.entries()] == [1, 3]

    def test_offer_requires_every_objective(self):
        front = ParetoFront(self.objectives())
        with pytest.raises(ExploreError):
            front.offer(ParetoEntry(0, {"a": 0}, {"saturation": 4.0}))

    def test_weak_domination(self):
        objectives = self.objectives()
        strong = ParetoFront(objectives)
        strong.offer(ParetoEntry(0, {}, {"saturation": 5.0, "p99": 100.0}))
        weak = ParetoFront(objectives)
        weak.offer(ParetoEntry(0, {}, {"saturation": 4.0, "p99": 150.0}))
        assert strong.weakly_dominates(weak)
        assert not weak.weakly_dominates(strong)
        # Equal fronts weakly dominate each other.
        twin = ParetoFront(objectives)
        twin.offer(ParetoEntry(9, {}, {"saturation": 5.0, "p99": 100.0}))
        assert strong.weakly_dominates(twin) and twin.weakly_dominates(strong)


# ----------------------------------------------------------------------
# Surrogate
# ----------------------------------------------------------------------
class TestSurrogate:
    def test_feature_vector_shape(self):
        assert len(quadratic_features([0.5])) == 3
        assert len(quadratic_features([0.1, 0.2, 0.3])) == 1 + 3 + 3 + 3

    def test_recovers_quadratic(self):
        target = lambda x: 2.0 + 3.0 * x - 4.0 * x * x
        xs = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        surrogate = QuadraticSurrogate()
        surrogate.fit([[x] for x in xs], [target(x) for x in xs])
        for x in (0.1, 0.5, 0.9):
            assert surrogate.predict([x]) == pytest.approx(target(x), abs=1e-4)

    def test_predict_requires_fit(self):
        with pytest.raises(ExploreError):
            QuadraticSurrogate().predict([0.5])

    def test_underdetermined_fit_is_regularized_not_singular(self):
        surrogate = QuadraticSurrogate()
        surrogate.fit([[0.0, 0.0], [1.0, 1.0]], [0.0, 1.0])
        assert surrogate.fitted
        assert surrogate.predict([1.0, 1.0]) > surrogate.predict([0.0, 0.0])


# ----------------------------------------------------------------------
# Sensitivity
# ----------------------------------------------------------------------
class TestSensitivity:
    def test_dominant_dimension_ranks_first(self, synthetic_experiment):
        space = synthetic_space(alphas=(0, 1), betas=(0, 1))
        objectives = resolve_objectives(["saturation"])
        evaluations = []
        for index, indices in enumerate(space.enumerate_indices()):
            point = space.point(indices)
            # alpha swings saturation by 10, beta by 1.
            value = 10.0 * point["alpha"] + 1.0 * point["beta"]
            evaluations.append(Evaluation(
                index=index, point=point, fingerprint="f%d" % index,
                objectives={"saturation": value},
            ))
        rows = main_effects(space, objectives, evaluations)
        assert [row.dimension for row in rows] == ["alpha", "beta"]
        assert rows[0].effect > rows[1].effect
        assert rows[0].levels_observed == 2
        assert rows[0].per_objective["saturation"] == pytest.approx(10.0 / 11.0)

    def test_unvaried_dimension_has_zero_effect(self, synthetic_experiment):
        space = synthetic_space(alphas=(0, 1), betas=(0, 1))
        objectives = resolve_objectives(["saturation"])
        evaluations = [
            Evaluation(index=i, point={"alpha": i, "beta": 0}, fingerprint="f%d" % i,
                       objectives={"saturation": float(i)})
            for i in range(2)
        ]
        rows = {row.dimension: row for row in main_effects(space, objectives, evaluations)}
        assert rows["beta"].effect == 0.0
        assert rows["beta"].levels_observed == 1


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
class TestStrategyPlumbing:
    def test_registry_holds_builtins(self):
        assert EXPLORE_STRATEGIES.names() == ["evolve", "grid_screen", "random"]

    def test_strategy_seed_mixes_name(self):
        assert strategy_seed(7, "a") != strategy_seed(7, "b")
        assert strategy_seed(7, "a") == strategy_seed(7, "a")

    def test_unknown_strategy_param_rejected(self, synthetic_experiment):
        space = synthetic_space()
        objectives = resolve_objectives(["saturation"])
        with pytest.raises(ExploreError):
            GridScreenStrategy(space, objectives, 0, 4, bogus=1)
        with pytest.raises(ExploreError):
            GridScreenStrategy(space, objectives, 0, 4, screen_levels="three")

    def test_budget_must_be_positive(self, synthetic_experiment):
        with pytest.raises(ExploreError):
            GridScreenStrategy(synthetic_space(),
                               resolve_objectives(["saturation"]), 0, 0)


class TestSamplingHelpers:
    def test_fractional_factorial_covers_extremes_within_budget(self, synthetic_experiment):
        space = synthetic_space(alphas=(0, 1, 2), betas=(0, 1, 2, 3))
        plan = fractional_factorial(space, budget=6)
        assert len(plan) == 6
        keys = {space.point_key(point) for point in plan}
        assert len(keys) == 6  # no duplicates
        assert space.point((0, 0)) in plan  # the low corner survives striding

    def test_fractional_factorial_small_space_is_exhaustive(self, synthetic_experiment):
        space = synthetic_space(alphas=(0, 1), betas=(0, 1))
        plan = fractional_factorial(space, budget=10)
        assert len(plan) == 4

    def test_latin_hypercube_is_seeded(self, synthetic_experiment):
        import random as random_module

        space = synthetic_space()
        first = latin_hypercube(space, 5, random_module.Random(7))
        second = latin_hypercube(space, 5, random_module.Random(7))
        different = latin_hypercube(space, 5, random_module.Random(8))
        assert first == second
        assert first != different


class TestExplorerWithSyntheticExperiment:
    def objectives(self):
        return ["saturation", "p99"]

    def run(self, strategy, seed=7, budget=8, **kwargs):
        space = synthetic_space()
        return Explorer(space, strategy=strategy, objectives=self.objectives(),
                        seed=seed, budget=budget, **kwargs).run()

    @pytest.mark.parametrize("strategy", ["grid_screen", "random", "evolve"])
    def test_budget_respected_and_no_duplicate_points(self, synthetic_experiment, strategy):
        report = self.run(strategy, budget=6)
        assert report.totals["evaluations"] <= 6
        keys = [SearchSpace.point_key(e["point"]) for e in report.evaluations]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("strategy", ["grid_screen", "random", "evolve"])
    def test_same_seed_reproduces_report_bytes(self, synthetic_experiment, strategy):
        first = self.run(strategy).to_json()
        second = self.run(strategy).to_json()
        assert first == second

    def test_different_seeds_change_random_walk(self, synthetic_experiment):
        first = [e["point"] for e in self.run("random", seed=1).evaluations]
        second = [e["point"] for e in self.run("random", seed=2).evaluations]
        assert first != second

    def test_budget_at_space_size_is_exhaustive_for_adaptive_strategies(self, synthetic_experiment):
        # random and evolve top up from the enumeration order, so with budget
        # >= |space| they cover everything; grid_screen stops at its one-shot
        # screening plan (3 screen levels of the 4-level beta axis: 9 points).
        for strategy in ("random", "evolve"):
            report = self.run(strategy, budget=12)
            assert report.totals["evaluations"] == 12, strategy
        screen = self.run("grid_screen", budget=12)
        assert screen.totals["evaluations"] == 9

    def test_evolve_finds_the_optimum(self, synthetic_experiment):
        # Saturation is maximized at alpha=2, beta=0 on the synthetic
        # landscape; with budget for 2/3 of the space evolve must find it.
        report = self.run("evolve", budget=8)
        best = max(report.evaluations,
                   key=lambda e: e["objectives"]["saturation"])
        assert best["point"]["alpha"] == 2
        assert best["point"]["beta"] == 0

    def test_warm_cache_rerun_evaluates_zero_new_points(self, synthetic_experiment, tmp_path):
        cache = ResultCache(str(tmp_path))
        space = synthetic_space()
        cold = Explorer(space, strategy="evolve", objectives=self.objectives(),
                        seed=7, budget=8, cache=cache).run()
        executed_after_cold = synthetic_experiment["count"]
        warm = Explorer(space, strategy="evolve", objectives=self.objectives(),
                        seed=7, budget=8, cache=cache).run()
        assert cold.totals["new_evaluations"] == 8
        assert warm.totals["new_evaluations"] == 0
        assert warm.totals["cached"] == 8
        assert synthetic_experiment["count"] == executed_after_cold
        # Same evaluation sequence and Pareto set either way.
        assert [e["point"] for e in warm.evaluations] == \
            [e["point"] for e in cold.evaluations]
        assert warm.pareto == cold.pareto

    def test_infeasible_points_stay_off_the_front(self, synthetic_experiment):
        # 'cost' needs perf events the synthetic experiment never produces,
        # so every evaluation is infeasible and the front stays empty.
        space = synthetic_space()
        report = Explorer(space, strategy="grid_screen",
                          objectives=["saturation", "cost"],
                          seed=7, budget=4).run()
        assert report.totals["feasible"] == 0
        assert report.totals["infeasible"] == 4
        assert report.pareto == []

    def test_unknown_strategy_fails_fast(self, synthetic_experiment):
        with pytest.raises(Exception):
            Explorer(synthetic_space(), strategy="bogus")


# ----------------------------------------------------------------------
# Report document
# ----------------------------------------------------------------------
class TestExploreReport:
    def report(self, synthetic=True):
        space = synthetic_space()
        return Explorer(space, strategy="evolve",
                        objectives=["saturation", "p99"], seed=7, budget=6).run()

    def test_json_round_trip(self, synthetic_experiment):
        report = self.report()
        assert ExploreReport.from_json(report.to_json()).to_json() == report.to_json()

    def test_schema_is_required(self, synthetic_experiment):
        report = self.report()
        payload = json.loads(report.to_json())
        payload["schema"] = "repro-explore-report/99"
        with pytest.raises(ExploreError):
            ExploreReport.from_dict(payload)
        with pytest.raises(ExploreError):
            ExploreReport.from_json("not json")

    def test_no_wall_clock_fields(self, synthetic_experiment):
        # The byte-identity contract forbids any wall-time field anywhere.
        assert "wall" not in self.report().to_json()

    def test_write_and_load(self, synthetic_experiment, tmp_path):
        report = self.report()
        path = str(tmp_path / "explore.json")
        report.write_json(path)
        assert load_explore_report(path).to_json() == report.to_json()
        with pytest.raises(ExploreError):
            load_explore_report(str(tmp_path / "missing.json"))

    def test_format_renders_tables(self, synthetic_experiment):
        text = self.report().format()
        assert "Pareto front" in text
        assert "sensitivity (normalized main effects):" in text
        assert "explore: explore-test via evolve (seed 7, budget 6)" in text


# ----------------------------------------------------------------------
# Determinism against the real simulator (the acceptance contract)
# ----------------------------------------------------------------------
class TestRealExperimentDeterminism:
    def run(self, strategy="evolve", seed=7, budget=5, workers=1, cache=None):
        space = build_space("load_sweep", TINY_DIMS, TINY_SWEEP)
        return Explorer(space, strategy=strategy, seed=seed, budget=budget,
                        max_workers=workers, cache=cache).run()

    def test_repeat_runs_are_byte_identical(self):
        assert self.run().to_json() == self.run().to_json()

    def test_worker_count_does_not_change_report_bytes(self):
        assert self.run(workers=1).to_json() == self.run(workers=4).to_json()

    def test_evolve_weakly_dominates_grid_screen_on_same_budget(self):
        budget = 4  # the smoke space has 4 points; same budget for both
        evolve = self.run(strategy="evolve", budget=budget)
        screen = self.run(strategy="grid_screen", budget=budget)
        assert front_from_report(evolve).weakly_dominates(front_from_report(screen))


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLIExplore:
    def explore_args(self, *extra):
        args = ["explore", "load_sweep", "--seed", "7", "--budget", "4"]
        for dim in TINY_DIMS:
            args += ["--dim", dim]
        args += ["--set", "loads=4", "--set", "measure_cycles=2000",
                 "--set", "warmup_cycles=300"]
        return args + list(extra)

    def test_text_output(self, capsys):
        from repro.cli import main

        assert main(self.explore_args()) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "sensitivity" in out

    def test_json_output_parses_and_round_trips(self, capsys):
        from repro.cli import main

        assert main(self.explore_args("--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-explore-report/1"
        assert payload["strategy"] == "evolve"
        assert payload["totals"]["evaluations"] == 4

    def test_seeded_cli_runs_are_byte_identical_across_parallelism(self, tmp_path):
        from repro.cli import main

        paths = [str(tmp_path / name) for name in
                 ("a.json", "b.json", "c.json")]
        assert main(self.explore_args("--json", paths[0])) == 0
        assert main(self.explore_args("--json", paths[1])) == 0
        assert main(self.explore_args("--parallel", "4", "--json", paths[2])) == 0
        blobs = [open(path, "rb").read() for path in paths]
        assert blobs[0] == blobs[1] == blobs[2]

    def test_strategy_and_objectives_flags(self, capsys):
        from repro.cli import main

        assert main(self.explore_args(
            "--strategy", "grid_screen", "--objectives", "saturation,p99",
            "--strategy-param", "screen_levels=2")) == 0
        assert "Pareto front" in capsys.readouterr().out

    def test_malformed_strategy_param_is_an_error(self, capsys):
        from repro.cli import main

        assert main(self.explore_args("--strategy-param", "nonsense")) == 2
        assert "strategy-param" in capsys.readouterr().err

    def test_unknown_strategy_is_an_error(self, capsys):
        from repro.cli import main

        assert main(self.explore_args("--strategy", "bogus")) == 2
        assert "bogus" in capsys.readouterr().err

    def test_list_strategies(self, capsys):
        from repro.cli import main

        assert main(["list", "--strategies"]) == 0
        out = capsys.readouterr().out
        assert "Search strategies:" in out
        for name in ("evolve", "grid_screen", "random"):
            assert name in out
        assert "screen_fraction" in out  # tunables are surfaced

    def test_list_json_includes_strategies_registry(self, capsys):
        from repro.cli import main

        assert main(["list", "--json"]) == 0
        registries = json.loads(capsys.readouterr().out)["registries"]
        strategies = {item["name"]: item for item in registries["strategies"]}
        assert set(strategies) == {"evolve", "grid_screen", "random"}
        assert "screen_levels" in strategies["grid_screen"]["parameters"]


class TestCampaignSaturationDigest:
    def test_single_saturation_point_still_printed(self):
        # Regression: the cross-run digest used to be dropped when the
        # campaign held exactly one load sweep.
        from repro.campaign.report import CampaignEntry, CampaignReport

        result = ExperimentResult("t", "t", headers=["x"])
        result.add_row(1.0)
        result.add_note("saturation throughput: 4.00 req/kcycle (offered 5.00)")
        report = CampaignReport(entries=[
            CampaignEntry(request=RunRequest("load_sweep"), result=result),
        ])
        text = report.format()
        assert "load_sweep: saturation throughput: 4.00 req/kcycle" in text
