"""Tests for the NOC-Out topology (§6.3)."""

import pytest

from repro.config import MessageClass, NocConfig
from repro.errors import TopologyError
from repro.noc.nocout import NOCOUT_CORE, NOCOUT_EDGE, NOCOUT_LLC, NOCOUT_MC, NocOutTopology


@pytest.fixture
def nocout() -> NocOutTopology:
    return NocOutTopology(columns=8, cores_per_column=8, noc_config=NocConfig())


class TestStructure:
    def test_node_inventory(self, nocout):
        nodes = list(nocout.nodes())
        assert ((NOCOUT_LLC, 0) in nodes) and ((NOCOUT_LLC, 7) in nodes)
        assert (NOCOUT_EDGE, 0) in nodes
        assert sum(1 for n in nodes if n[0] == NOCOUT_CORE) == 64
        assert sum(1 for n in nodes if n[0] == NOCOUT_MC) == 8

    def test_core_node_mapping_is_column_major(self, nocout):
        assert nocout.core_node(0) == (NOCOUT_CORE, 0, 0)
        assert nocout.core_node(1) == (NOCOUT_CORE, 1, 0)
        assert nocout.core_node(8) == (NOCOUT_CORE, 0, 1)

    def test_out_of_range_nodes_rejected(self, nocout):
        with pytest.raises(TopologyError):
            nocout.core_node(64)
        with pytest.raises(TopologyError):
            nocout.llc_node(8)
        with pytest.raises(TopologyError):
            nocout.mc_node(9)

    def test_tree_depth_splits_cores_on_both_sides(self, nocout):
        depths = [nocout.tree_depth((NOCOUT_CORE, 0, k)) for k in range(8)]
        assert depths == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            NocOutTopology(columns=0)


class TestRouting:
    def test_core_to_own_llc_uses_only_tree_links(self, nocout):
        links = nocout.route((NOCOUT_CORE, 2, 2), (NOCOUT_LLC, 2), MessageClass.NI_DATA)
        assert len(links) == 3  # depth of core 2 is 3 tree hops
        assert all(link.hop_cycles == 1 for link in links)

    def test_core_to_remote_llc_crosses_butterfly_once(self, nocout):
        links = nocout.route((NOCOUT_CORE, 0, 0), (NOCOUT_LLC, 7), MessageClass.NI_DATA)
        butterfly_links = [l for l in links if l.src[0] == NOCOUT_LLC and l.dst[0] == NOCOUT_LLC]
        assert len(butterfly_links) == 1
        # 7 tiles at 2 tiles/cycle -> 4 cycles.
        assert butterfly_links[0].hop_cycles == 4

    def test_llc_to_mc_is_single_hop(self, nocout):
        links = nocout.route((NOCOUT_LLC, 3), (NOCOUT_MC, 3), MessageClass.NI_DATA)
        assert len(links) == 1

    def test_core_to_core_path_descends_and_ascends(self, nocout):
        links = nocout.route((NOCOUT_CORE, 1, 0), (NOCOUT_CORE, 6, 5), MessageClass.NI_DATA)
        assert links[0].src == (NOCOUT_CORE, 1, 0)
        assert links[-1].dst == (NOCOUT_CORE, 6, 5)
        kinds = [link.dst[0] for link in links]
        assert NOCOUT_LLC in kinds

    def test_route_to_self_is_empty(self, nocout):
        assert list(nocout.route((NOCOUT_LLC, 2), (NOCOUT_LLC, 2), MessageClass.NI_DATA)) == []

    def test_latency_improves_on_mesh_for_core_to_llc(self, nocout):
        """NOC-Out's reduction trees reach the LLC row in at most 4 cycles."""
        worst = max(
            nocout.min_latency_cycles(nocout.core_node(t), nocout.llc_node(t % 8))
            for t in range(64)
        )
        assert worst <= 4
