"""Tests for mesh routing policies (§4.3)."""

import pytest

from repro.config import MessageClass, RoutingAlgorithm
from repro.errors import RoutingError
from repro.noc.routing import (
    average_distance_to_column,
    average_tile_to_tile_distance,
    manhattan_distance,
    mesh_route,
    o1turn_orientation,
    o1turn_path,
    route_class_direction,
    xy_path,
    yx_path,
)


class TestDimensionOrderPaths:
    def test_xy_moves_x_first(self):
        path = xy_path((0, 0), (3, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2)]

    def test_yx_moves_y_first(self):
        path = yx_path((0, 0), (3, 2))
        assert path == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2), (3, 2)]

    def test_paths_handle_negative_direction(self):
        path = xy_path((3, 3), (1, 1))
        assert path[0] == (3, 3) and path[-1] == (1, 1)
        assert len(path) == manhattan_distance((3, 3), (1, 1)) + 1

    def test_same_source_and_destination(self):
        assert xy_path((2, 2), (2, 2)) == [(2, 2)]
        assert mesh_route(RoutingAlgorithm.XY, (2, 2), (2, 2), MessageClass.NI_DATA) == [(2, 2)]

    def test_path_steps_are_single_hops(self):
        for path in (xy_path((0, 7), (7, 0)), yx_path((5, 1), (2, 6))):
            for a, b in zip(path, path[1:]):
                assert manhattan_distance(a, b) == 1

    def test_o1turn_path_matches_its_orientation(self):
        for packet_id in range(16):
            orientation = o1turn_orientation((0, 0), (2, 2), packet_id)
            expected = xy_path((0, 0), (2, 2)) if orientation == "xy" else yx_path((0, 0), (2, 2))
            assert o1turn_path((0, 0), (2, 2), packet_id) == expected

    def test_o1turn_uses_both_orientations(self):
        orientations = {o1turn_orientation((1, 2), (6, 5), pid) for pid in range(32)}
        assert orientations == {"xy", "yx"}

    def test_o1turn_orientation_is_deterministic(self):
        for packet_id in (0, 1, 7, 1234):
            first = o1turn_orientation((3, 4), (0, 6), packet_id)
            assert o1turn_orientation((3, 4), (0, 6), packet_id) == first

    def test_o1turn_balanced_on_single_parity_packet_ids(self):
        # Regression: the global packet-id counter hands an interleaved
        # traffic class ids of a single parity.  A parity-based choice pinned
        # every such packet to one orientation; the hash must keep the split
        # within 45/55 even when every packet id is even.
        counts = {"xy": 0, "yx": 0}
        for i in range(4000):
            src = (i % 8, (i // 8) % 8)
            dst = ((i * 7 + 13) % 8, ((i * 7 + 13) // 8) % 8)
            if src == dst:
                continue
            counts[o1turn_orientation(src, dst, 2 * i)] += 1
        total = counts["xy"] + counts["yx"]
        assert 0.45 <= counts["xy"] / total <= 0.55

    def test_o1turn_balanced_per_flow(self):
        # A single (src, dst) flow with single-parity ids must also split.
        counts = {"xy": 0, "yx": 0}
        for packet_id in range(0, 4000, 2):
            counts[o1turn_orientation((3, 3), (5, 1), packet_id)] += 1
        total = counts["xy"] + counts["yx"]
        assert 0.45 <= counts["xy"] / total <= 0.55


class TestClassBasedRouting:
    def test_cdr_routes_memory_requests_yx(self):
        assert route_class_direction(RoutingAlgorithm.CDR, MessageClass.MEMORY_REQUEST) == "yx"
        assert route_class_direction(RoutingAlgorithm.CDR, MessageClass.MEMORY_RESPONSE) == "xy"

    def test_extended_cdr_routes_only_directory_traffic_yx(self):
        for msg_class in MessageClass:
            direction = route_class_direction(RoutingAlgorithm.CDR_EXTENDED, msg_class)
            if msg_class is MessageClass.DIRECTORY_SOURCED:
                assert direction == "yx"
            else:
                assert direction == "xy"

    def test_o1turn_has_no_fixed_class_direction(self):
        with pytest.raises(RoutingError):
            route_class_direction(RoutingAlgorithm.O1TURN, MessageClass.NI_DATA)

    def test_mesh_route_respects_class(self):
        dir_path = mesh_route(RoutingAlgorithm.CDR_EXTENDED, (2, 1), (5, 6),
                              MessageClass.DIRECTORY_SOURCED)
        other_path = mesh_route(RoutingAlgorithm.CDR_EXTENDED, (2, 1), (5, 6),
                                MessageClass.NI_DATA)
        assert dir_path == yx_path((2, 1), (5, 6))
        assert other_path == xy_path((2, 1), (5, 6))

    def test_directory_sourced_traffic_never_turns_at_edge_columns(self):
        """Extended CDR keeps directory traffic off the vertical edge links (§4.3)."""
        for dst in ((0, 5), (7, 2)):
            path = mesh_route(RoutingAlgorithm.CDR_EXTENDED, (3, 1), dst,
                              MessageClass.DIRECTORY_SOURCED)
            vertical_moves_at_edge = [
                (a, b) for a, b in zip(path, path[1:])
                if a[0] == b[0] and a[0] in (0, 7) and a[1] != b[1]
            ]
            assert vertical_moves_at_edge == []


class TestDistanceHelpers:
    def test_manhattan_distance(self):
        assert manhattan_distance((0, 0), (7, 7)) == 14
        assert manhattan_distance((3, 4), (3, 4)) == 0

    def test_average_distance_to_column(self):
        assert average_distance_to_column(8, 0) == pytest.approx(3.5)
        assert average_distance_to_column(8, 7) == pytest.approx(3.5)

    def test_average_distance_to_column_bounds(self):
        with pytest.raises(RoutingError):
            average_distance_to_column(8, 9)

    def test_average_tile_to_tile_distance(self):
        # For an 8x8 mesh the mean Manhattan distance is 2 * 21/4 = 5.25.
        assert average_tile_to_tile_distance(8) == pytest.approx(5.25)
