"""Tests for the statistics helpers."""

import random

import pytest

from repro.sim.stats import (
    LatencyHistogram,
    LatencyRecorder,
    StatAccumulator,
    ThroughputMeter,
    WindowedMonitor,
)


class TestStatAccumulator:
    def test_mean_and_extremes(self):
        acc = StatAccumulator("x")
        for value in (2.0, 4.0, 6.0):
            acc.add(value)
        assert acc.count == 3
        assert acc.mean == pytest.approx(4.0)
        assert acc.minimum == 2.0
        assert acc.maximum == 6.0
        assert acc.total == 12.0

    def test_variance_and_stddev(self):
        acc = StatAccumulator()
        for value in (1.0, 3.0):
            acc.add(value)
        assert acc.variance == pytest.approx(1.0)
        assert acc.stddev == pytest.approx(1.0)

    def test_empty_accumulator_is_safe(self):
        acc = StatAccumulator()
        assert acc.mean == 0.0
        assert acc.variance == 0.0
        assert acc.as_dict()["count"] == 0

    def test_merge_matches_single_accumulator(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0]
        combined = StatAccumulator()
        for v in values:
            combined.add(v)
        left, right = StatAccumulator(), StatAccumulator()
        for v in values[:3]:
            left.add(v)
        for v in values[3:]:
            right.add(v)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_with_empty(self):
        acc = StatAccumulator()
        acc.add(4.0)
        acc.merge(StatAccumulator())
        assert acc.count == 1


class TestLatencyRecorder:
    def test_percentiles(self):
        rec = LatencyRecorder()
        for value in range(1, 101):
            rec.add(float(value))
        assert rec.percentile(0) == 1.0
        assert rec.percentile(100) == 100.0
        assert rec.percentile(50) == pytest.approx(50.5)

    def test_sample_cap(self):
        rec = LatencyRecorder(max_samples=10)
        for value in range(100):
            rec.add(float(value))
        assert len(rec.samples) == 10
        assert rec.count == 100

    def test_empty_percentile_is_zero(self):
        assert LatencyRecorder().percentile(99) == 0.0


class TestThroughputMeter:
    def test_rates(self):
        meter = ThroughputMeter()
        meter.record(1000)
        meter.record(1000)
        assert meter.bytes_per_cycle(now=100) == pytest.approx(20.0)
        assert meter.gbps(now=100, frequency_ghz=2.0) == pytest.approx(40.0)

    def test_reset_restarts_window(self):
        meter = ThroughputMeter()
        meter.record(500)
        meter.reset(now=50)
        assert meter.bytes_delivered == 0
        assert meter.bytes_per_cycle(now=100) == 0.0

    def test_zero_elapsed_is_safe(self):
        assert ThroughputMeter().bytes_per_cycle(now=0) == 0.0


class TestWindowedMonitor:
    def test_converges_when_windows_agree_within_tolerance(self):
        monitor = WindowedMonitor(tolerance=0.01, min_windows=2)
        monitor.record_window(100.0)
        assert not monitor.converged
        monitor.record_window(100.5)
        assert monitor.converged
        assert monitor.value == pytest.approx(100.25)

    def test_does_not_converge_while_changing(self):
        monitor = WindowedMonitor(tolerance=0.01)
        monitor.record_window(100.0)
        monitor.record_window(150.0)
        assert not monitor.converged

    def test_max_windows_forces_convergence(self):
        monitor = WindowedMonitor(tolerance=0.0001, max_windows=3)
        for value in (1.0, 2.0, 3.0):
            monitor.record_window(value)
        assert monitor.converged

    def test_all_zero_windows_converge(self):
        monitor = WindowedMonitor()
        monitor.record_window(0.0)
        monitor.record_window(0.0)
        assert monitor.converged


class TestLatencyRecorderReservoir:
    def test_first_n_samples_kept_verbatim(self):
        rec = LatencyRecorder("r", max_samples=10)
        for value in range(10):
            rec.add(float(value))
        assert rec.samples == [float(v) for v in range(10)]

    def test_reservoir_reflects_full_stream_not_warmup_prefix(self):
        # A 2 x max_samples stream whose first half (the "warm-up") is slow
        # (1000.0) and second half is fast (10.0).  Keeping only the first
        # max_samples values would report p50 = 1000; a uniform reservoir
        # over the whole stream must land near the true mixed distribution.
        max_samples = 2_000
        rec = LatencyRecorder("bias-check", max_samples=max_samples)
        for _ in range(max_samples):
            rec.add(1000.0)
        for _ in range(max_samples):
            rec.add(10.0)
        fast_fraction = sum(1 for s in rec.samples if s == 10.0) / max_samples
        assert 0.4 < fast_fraction < 0.6
        # p90 over the full stream is 1000 (half the mass), p25 is 10.
        assert rec.percentile(90) == pytest.approx(1000.0)
        assert rec.percentile(25) == pytest.approx(10.0)

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            rec = LatencyRecorder(name, max_samples=50)
            for value in range(500):
                rec.add(float(value))
            return rec.samples

        assert fill("alpha") == fill("alpha")
        assert fill("alpha") != fill("beta")

    def test_bounded_at_max_samples(self):
        rec = LatencyRecorder("r", max_samples=16)
        for value in range(1_000):
            rec.add(float(value))
        assert len(rec.samples) == 16
        assert rec.count == 1_000

    def test_accumulator_stats_cover_whole_stream(self):
        rec = LatencyRecorder("r", max_samples=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            rec.add(value)
        assert rec.maximum == 100.0
        assert rec.mean == pytest.approx(22.0)

    def test_invalid_max_samples_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder("r", max_samples=0)


class TestConvergenceFlags:
    def test_natural_convergence_sets_both_flags(self):
        monitor = WindowedMonitor(tolerance=0.01, min_windows=2)
        monitor.record_window(100.0)
        monitor.record_window(100.2)
        assert monitor.converged
        assert monitor.converged_naturally
        assert not monitor.exhausted
        assert monitor.warning() is None

    def test_window_budget_exhaustion_is_flagged(self):
        monitor = WindowedMonitor(tolerance=0.0001, max_windows=3)
        for value in (1.0, 2.0, 3.0):
            monitor.record_window(value)
        assert monitor.converged          # measurement must stop...
        assert not monitor.converged_naturally  # ...but not silently
        assert monitor.exhausted
        warning = monitor.warning()
        assert warning is not None and "did not converge" in warning

    def test_exhausted_run_that_happens_to_agree_is_natural(self):
        monitor = WindowedMonitor(tolerance=0.01, max_windows=2)
        monitor.record_window(5.0)
        monitor.record_window(5.0)
        assert monitor.converged_naturally
        assert monitor.warning() is None


class TestLatencyHistogram:
    def test_small_values_are_exact(self):
        hist = LatencyHistogram()
        for value in (3.0, 7.0, 7.0, 500.0):
            hist.record(value)
        assert hist.count == 4
        assert hist.percentile(0) == 3.0
        assert hist.percentile(100) == 500.0
        assert hist.percentile(50) == 7.0

    def test_percentiles_match_sorted_reference_within_resolution(self):
        rng = random.Random(42)
        values = [rng.expovariate(1.0 / 5000.0) for _ in range(50_000)]
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        ordered = sorted(values)
        for p in (50.0, 95.0, 99.0, 99.9):
            reference = ordered[min(len(ordered) - 1, int(p / 100.0 * len(ordered)))]
            assert hist.percentile(p) == pytest.approx(reference, rel=5e-3)

    def test_covers_whole_stream_unlike_reservoir(self):
        # One outlier in a long stream: the full-stream histogram must see it
        # at p100 and keep p99.9 independent of reservoir sampling noise.
        hist = LatencyHistogram()
        for _ in range(100_000):
            hist.record(100.0)
        hist.record(1_000_000.0)
        assert hist.maximum == 1_000_000.0
        assert hist.percentile(100) == 1_000_000.0
        assert hist.percentile(50) == 100.0

    def test_merge_equals_single_histogram(self):
        rng = random.Random(7)
        values = [rng.uniform(10, 100_000) for _ in range(5_000)]
        combined = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for i, value in enumerate(values):
            combined.record(value)
            (left if i % 2 else right).record(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum
        for p in (50.0, 99.0, 99.9):
            assert left.percentile(p) == combined.percentile(p)

    def test_merge_rejects_mismatched_resolution(self):
        with pytest.raises(ValueError):
            LatencyHistogram(sub_bucket_bits=10).merge(LatencyHistogram(sub_bucket_bits=8))

    def test_empty_histogram_is_safe(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0
        assert hist.as_dict()["count"] == 0


class TestLatencyRecorderExactMode:
    def test_exact_mode_uses_full_stream_histogram(self):
        exact = LatencyRecorder("exact-mode-test", max_samples=100, exact=True)
        for value in range(1, 10_001):
            exact.add(float(value))
        # The histogram replaces the reservoir entirely; p99 covers all 10k
        # values even though no samples are retained.
        assert exact.samples == []
        assert exact.count == 10_000
        assert exact.percentile(99) == pytest.approx(9900.0, rel=5e-3)

    def test_summary_labels_percentile_fidelity(self):
        approx = LatencyRecorder("approx-summary")
        exact = LatencyRecorder("exact-summary", exact=True)
        for rec in (approx, exact):
            for value in (10.0, 20.0, 30.0):
                rec.add(value)
        assert approx.summary()["percentile_mode"] == "approximate"
        assert exact.summary()["percentile_mode"] == "exact"
        for key in ("count", "mean", "p50", "p95", "p99", "p99.9"):
            assert key in approx.summary()
            assert key in exact.summary()

    def test_default_recorder_is_unchanged(self):
        rec = LatencyRecorder("default-unchanged")
        assert not rec.exact
        assert rec.histogram is None
        for value in range(1, 101):
            rec.add(float(value))
        # The seed-stable reservoir interpolation of the approximate path.
        assert rec.percentile(50) == pytest.approx(50.5)
