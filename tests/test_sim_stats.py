"""Tests for the statistics helpers."""

import pytest

from repro.sim.stats import LatencyRecorder, StatAccumulator, ThroughputMeter, WindowedMonitor


class TestStatAccumulator:
    def test_mean_and_extremes(self):
        acc = StatAccumulator("x")
        for value in (2.0, 4.0, 6.0):
            acc.add(value)
        assert acc.count == 3
        assert acc.mean == pytest.approx(4.0)
        assert acc.minimum == 2.0
        assert acc.maximum == 6.0
        assert acc.total == 12.0

    def test_variance_and_stddev(self):
        acc = StatAccumulator()
        for value in (1.0, 3.0):
            acc.add(value)
        assert acc.variance == pytest.approx(1.0)
        assert acc.stddev == pytest.approx(1.0)

    def test_empty_accumulator_is_safe(self):
        acc = StatAccumulator()
        assert acc.mean == 0.0
        assert acc.variance == 0.0
        assert acc.as_dict()["count"] == 0

    def test_merge_matches_single_accumulator(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0]
        combined = StatAccumulator()
        for v in values:
            combined.add(v)
        left, right = StatAccumulator(), StatAccumulator()
        for v in values[:3]:
            left.add(v)
        for v in values[3:]:
            right.add(v)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_with_empty(self):
        acc = StatAccumulator()
        acc.add(4.0)
        acc.merge(StatAccumulator())
        assert acc.count == 1


class TestLatencyRecorder:
    def test_percentiles(self):
        rec = LatencyRecorder()
        for value in range(1, 101):
            rec.add(float(value))
        assert rec.percentile(0) == 1.0
        assert rec.percentile(100) == 100.0
        assert rec.percentile(50) == pytest.approx(50.5)

    def test_sample_cap(self):
        rec = LatencyRecorder(max_samples=10)
        for value in range(100):
            rec.add(float(value))
        assert len(rec.samples) == 10
        assert rec.count == 100

    def test_empty_percentile_is_zero(self):
        assert LatencyRecorder().percentile(99) == 0.0


class TestThroughputMeter:
    def test_rates(self):
        meter = ThroughputMeter()
        meter.record(1000)
        meter.record(1000)
        assert meter.bytes_per_cycle(now=100) == pytest.approx(20.0)
        assert meter.gbps(now=100, frequency_ghz=2.0) == pytest.approx(40.0)

    def test_reset_restarts_window(self):
        meter = ThroughputMeter()
        meter.record(500)
        meter.reset(now=50)
        assert meter.bytes_delivered == 0
        assert meter.bytes_per_cycle(now=100) == 0.0

    def test_zero_elapsed_is_safe(self):
        assert ThroughputMeter().bytes_per_cycle(now=0) == 0.0


class TestWindowedMonitor:
    def test_converges_when_windows_agree_within_tolerance(self):
        monitor = WindowedMonitor(tolerance=0.01, min_windows=2)
        monitor.record_window(100.0)
        assert not monitor.converged
        monitor.record_window(100.5)
        assert monitor.converged
        assert monitor.value == pytest.approx(100.25)

    def test_does_not_converge_while_changing(self):
        monitor = WindowedMonitor(tolerance=0.01)
        monitor.record_window(100.0)
        monitor.record_window(150.0)
        assert not monitor.converged

    def test_max_windows_forces_convergence(self):
        monitor = WindowedMonitor(tolerance=0.0001, max_windows=3)
        for value in (1.0, 2.0, 3.0):
            monitor.record_window(value)
        assert monitor.converged

    def test_all_zero_windows_converge(self):
        monitor = WindowedMonitor()
        monitor.record_window(0.0)
        monitor.record_window(0.0)
        assert monitor.converged
