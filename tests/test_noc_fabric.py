"""Tests for the NOC contention model."""

import pytest

from repro.config import MessageClass, NocConfig
from repro.noc.fabric import NocFabric
from repro.noc.mesh import MeshTopology
from repro.noc.packet import HEADER_BYTES, Packet
from repro.sim.engine import Simulator


def make_fabric(side: int = 8):
    sim = Simulator()
    topology = MeshTopology(side, NocConfig())
    return sim, NocFabric(sim, topology, NocConfig())


class TestPacket:
    def test_flit_count_includes_header(self):
        packet = Packet((0, 0), (1, 0), 64, MessageClass.NI_DATA)
        assert packet.flits(16) == 5
        assert packet.wire_bytes(16) == 80

    def test_control_packet_is_two_flits(self):
        packet = Packet((0, 0), (1, 0), 8, MessageClass.COHERENCE_REQUEST)
        assert packet.flits(16) == 2

    def test_latency_unknown_until_delivery(self):
        packet = Packet((0, 0), (1, 0), 8, MessageClass.NI_DATA, created_at=5.0)
        assert packet.latency is None
        packet.delivered_at = 25.0
        assert packet.latency == 20.0

    def test_header_constant(self):
        assert HEADER_BYTES == 16


class TestZeroLoadLatency:
    def test_single_hop_control_packet(self):
        sim, fabric = make_fabric()
        # 1 hop x 3 cycles + (2 flits - 1) serialization.
        assert fabric.zero_load_latency((0, 0), (1, 0), 8) == 4

    def test_multi_hop_data_packet(self):
        sim, fabric = make_fabric()
        # 8 hops x 3 + (5 - 1).
        assert fabric.zero_load_latency((0, 0), (5, 3), 64) == 28

    def test_local_delivery(self):
        sim, fabric = make_fabric()
        assert fabric.zero_load_latency((2, 2), (2, 2), 64) == NocFabric.LOCAL_DELIVERY_CYCLES

    def test_simulated_delivery_matches_zero_load_estimate(self):
        sim, fabric = make_fabric()
        delivered = {}
        fabric.send((0, 0), (5, 3), 64, MessageClass.NI_DATA, lambda p: delivered.update(t=sim.now))
        sim.run()
        assert delivered["t"] == fabric.zero_load_latency((0, 0), (5, 3), 64)


class TestContention:
    def test_back_to_back_packets_serialize_on_a_shared_link(self):
        sim, fabric = make_fabric()
        times = []
        for _ in range(3):
            fabric.send((0, 0), (3, 0), 64, MessageClass.NI_DATA, lambda p: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        # Each 5-flit packet delays the next by 5 cycles on the first link.
        assert times[1] - times[0] == pytest.approx(5.0)
        assert times[2] - times[1] == pytest.approx(5.0)

    def test_disjoint_paths_do_not_interfere(self):
        sim, fabric = make_fabric()
        times = {}
        fabric.send((0, 0), (3, 0), 64, MessageClass.NI_DATA, lambda p: times.setdefault("a", sim.now))
        fabric.send((0, 5), (3, 5), 64, MessageClass.NI_DATA, lambda p: times.setdefault("b", sim.now))
        sim.run()
        assert times["a"] == times["b"]

    def test_statistics_accumulate(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (4, 0), 64, MessageClass.NI_DATA)
        fabric.send((0, 0), (4, 0), 8, MessageClass.COHERENCE_REQUEST)
        sim.run()
        assert fabric.packets_sent == 2
        assert fabric.packets_delivered == 2
        assert fabric.payload_bytes_delivered == 72
        assert fabric.wire_bytes_sent == 80 + 32
        assert fabric.bytes_by_class[MessageClass.NI_DATA] == 80

    def test_bisection_accounting(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (7, 0), 64, MessageClass.NI_DATA)   # crosses the bisection
        fabric.send((0, 0), (2, 0), 64, MessageClass.NI_DATA)   # stays in the west half
        sim.run()
        assert fabric.bisection_bytes == 80

    def test_reset_stats(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (7, 0), 64, MessageClass.NI_DATA)
        sim.run()
        fabric.reset_stats()
        assert fabric.wire_bytes_sent == 0
        assert fabric.packets_sent == 0
        assert fabric.max_link_utilization() == 0.0

    def test_link_utilization_reports_busy_links(self):
        sim, fabric = make_fabric()
        for _ in range(10):
            fabric.send((0, 0), (1, 0), 64, MessageClass.NI_DATA)
        sim.run()
        utilization = fabric.link_utilization()
        assert utilization[((0, 0), (1, 0))] > 0.5

    def test_aggregate_wire_gbps(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (1, 0), 64, MessageClass.NI_DATA)
        sim.run()
        assert fabric.aggregate_wire_gbps(frequency_ghz=2.0) > 0.0
