"""Tests for the NOC contention model."""

import pytest

from repro.config import MessageClass, NocConfig
from repro.noc.fabric import NocFabric, hop_fusion_default
from repro.noc.mesh import MeshTopology
from repro.noc.packet import HEADER_BYTES, Packet
from repro.sim.engine import Simulator


def make_fabric(side: int = 8, hop_fusion=None):
    sim = Simulator()
    topology = MeshTopology(side, NocConfig())
    return sim, NocFabric(sim, topology, NocConfig(), hop_fusion=hop_fusion)


class TestPacket:
    def test_flit_count_includes_header(self):
        packet = Packet((0, 0), (1, 0), 64, MessageClass.NI_DATA)
        assert packet.flits(16) == 5
        assert packet.wire_bytes(16) == 80

    def test_control_packet_is_two_flits(self):
        packet = Packet((0, 0), (1, 0), 8, MessageClass.COHERENCE_REQUEST)
        assert packet.flits(16) == 2

    def test_latency_unknown_until_delivery(self):
        packet = Packet((0, 0), (1, 0), 8, MessageClass.NI_DATA, created_at=5.0)
        assert packet.latency is None
        packet.delivered_at = 25.0
        assert packet.latency == 20.0

    def test_header_constant(self):
        assert HEADER_BYTES == 16


class TestZeroLoadLatency:
    def test_single_hop_control_packet(self):
        sim, fabric = make_fabric()
        # 1 hop x 3 cycles + (2 flits - 1) serialization.
        assert fabric.zero_load_latency((0, 0), (1, 0), 8) == 4

    def test_multi_hop_data_packet(self):
        sim, fabric = make_fabric()
        # 8 hops x 3 + (5 - 1).
        assert fabric.zero_load_latency((0, 0), (5, 3), 64) == 28

    def test_local_delivery(self):
        sim, fabric = make_fabric()
        assert fabric.zero_load_latency((2, 2), (2, 2), 64) == NocFabric.LOCAL_DELIVERY_CYCLES

    def test_simulated_delivery_matches_zero_load_estimate(self):
        sim, fabric = make_fabric()
        delivered = {}
        fabric.send((0, 0), (5, 3), 64, MessageClass.NI_DATA, lambda p: delivered.update(t=sim.now))
        sim.run()
        assert delivered["t"] == fabric.zero_load_latency((0, 0), (5, 3), 64)


class TestContention:
    def test_back_to_back_packets_serialize_on_a_shared_link(self):
        sim, fabric = make_fabric()
        times = []
        for _ in range(3):
            fabric.send((0, 0), (3, 0), 64, MessageClass.NI_DATA, lambda p: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        # Each 5-flit packet delays the next by 5 cycles on the first link.
        assert times[1] - times[0] == pytest.approx(5.0)
        assert times[2] - times[1] == pytest.approx(5.0)

    def test_disjoint_paths_do_not_interfere(self):
        sim, fabric = make_fabric()
        times = {}
        fabric.send((0, 0), (3, 0), 64, MessageClass.NI_DATA, lambda p: times.setdefault("a", sim.now))
        fabric.send((0, 5), (3, 5), 64, MessageClass.NI_DATA, lambda p: times.setdefault("b", sim.now))
        sim.run()
        assert times["a"] == times["b"]

    def test_statistics_accumulate(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (4, 0), 64, MessageClass.NI_DATA)
        fabric.send((0, 0), (4, 0), 8, MessageClass.COHERENCE_REQUEST)
        sim.run()
        assert fabric.packets_sent == 2
        assert fabric.packets_delivered == 2
        assert fabric.payload_bytes_delivered == 72
        assert fabric.wire_bytes_sent == 80 + 32
        assert fabric.bytes_by_class[MessageClass.NI_DATA] == 80

    def test_bisection_accounting(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (7, 0), 64, MessageClass.NI_DATA)   # crosses the bisection
        fabric.send((0, 0), (2, 0), 64, MessageClass.NI_DATA)   # stays in the west half
        sim.run()
        assert fabric.bisection_bytes == 80

    def test_reset_stats(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (7, 0), 64, MessageClass.NI_DATA)
        sim.run()
        fabric.reset_stats()
        assert fabric.wire_bytes_sent == 0
        assert fabric.packets_sent == 0
        assert fabric.max_link_utilization() == 0.0

    def test_link_utilization_reports_busy_links(self):
        sim, fabric = make_fabric()
        for _ in range(10):
            fabric.send((0, 0), (1, 0), 64, MessageClass.NI_DATA)
        sim.run()
        utilization = fabric.link_utilization()
        assert utilization[((0, 0), (1, 0))] > 0.5

    def test_aggregate_wire_gbps(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (1, 0), 64, MessageClass.NI_DATA)
        sim.run()
        assert fabric.aggregate_wire_gbps(frequency_ghz=2.0) > 0.0


def _drive(fabric, sim, sends, tail=False):
    """Inject ``sends`` (src, dst, nbytes, cls) tuples; return delivery times."""
    times = []
    for src, dst, nbytes, cls in sends:
        fabric.send(src, dst, nbytes, cls, lambda p: times.append((p.packet_id, sim.now)),
                    tail=tail)
    sim.run()
    return times


MIX = [
    ((0, 0), (5, 3), 64, MessageClass.NI_DATA),
    ((1, 1), (6, 6), 256, MessageClass.NI_DATA),
    ((7, 0), (0, 7), 8, MessageClass.COHERENCE_REQUEST),
    ((3, 3), (3, 4), 64, MessageClass.MEMORY_RESPONSE),
    ((2, 5), (5, 2), 128, MessageClass.NI_COMMAND),
]


class TestHopFusion:
    def test_fusion_enabled_by_default(self):
        _sim, fabric = make_fabric()
        assert fabric.hop_fusion is True

    def test_env_var_force_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOP_FUSION", "0")
        assert hop_fusion_default() is False
        _sim, fabric = make_fabric()
        assert fabric.hop_fusion is False
        monkeypatch.setenv("REPRO_HOP_FUSION", "1")
        assert hop_fusion_default() is True

    def test_constructor_flag_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOP_FUSION", "0")
        _sim, fabric = make_fabric(hop_fusion=True)
        assert fabric.hop_fusion is True

    def test_fused_walk_matches_zero_load_estimate(self):
        sim, fabric = make_fabric()
        delivered = {}
        fabric.send((0, 0), (5, 3), 64, MessageClass.NI_DATA,
                    lambda p: delivered.update(t=sim.now))
        sim.run()
        assert delivered["t"] == fabric.zero_load_latency((0, 0), (5, 3), 64)
        # 8-hop route: hop 0 is acquired in send, the continuation fuses the
        # other 7 hops into the delivery event.
        assert fabric.fused_hops == 6
        assert fabric.lifetime_fused_hops == 6

    def test_fused_and_unfused_deliveries_are_identical(self):
        sim_a, fused = make_fabric(hop_fusion=True)
        sim_b, unfused = make_fabric(hop_fusion=False)
        times_fused = _drive(fused, sim_a, MIX)
        times_unfused = _drive(unfused, sim_b, MIX)
        assert times_fused and len(times_fused) == len(MIX)
        assert [t for _, t in times_fused] == [t for _, t in times_unfused]
        assert fused.fused_hops > 0
        assert unfused.fused_hops == 0
        assert fused.link_utilization() == unfused.link_utilization()
        assert fused.bisection_bytes == unfused.bisection_bytes

    def test_tail_send_matches_regular_send(self):
        sim_a, tail = make_fabric(hop_fusion=True)
        sim_b, regular = make_fabric(hop_fusion=True)
        # One packet at a time, fully drained: the tail contract holds.
        times_tail = []
        times_regular = []
        for src, dst, nbytes, cls in MIX:
            tail.send(src, dst, nbytes, cls,
                      lambda p: times_tail.append(sim_a.now), tail=True)
            sim_a.run()
            regular.send(src, dst, nbytes, cls,
                         lambda p: times_regular.append(sim_b.now))
            sim_b.run()
        assert times_tail == times_regular
        # The tail walk needs no continuation event: one event per packet.
        assert sim_a.events_executed < sim_b.events_executed
        assert tail.link_utilization() == regular.link_utilization()

    def test_contended_link_falls_back_and_stays_exact(self):
        # Three same-route packets: the second and third queue behind the
        # first on every link, and the dense event queue suppresses fusion
        # without changing any delivery time (see TestContention for the
        # expected spacing).
        sim_a, fused = make_fabric(hop_fusion=True)
        sim_b, unfused = make_fabric(hop_fusion=False)
        sends = [((0, 0), (3, 0), 64, MessageClass.NI_DATA)] * 3
        times_fused = [t for _, t in _drive(fused, sim_a, sends)]
        times_unfused = [t for _, t in _drive(unfused, sim_b, sends)]
        assert times_fused == times_unfused
        assert times_fused[1] - times_fused[0] == pytest.approx(5.0)

    def test_tie_with_a_pending_event_suppresses_fusion(self):
        sim, fabric = make_fabric()
        # A wall of dummy events, one per cycle: every next-hop arrival lands
        # at or after the queue head, so the walk must never fuse.
        for t in range(1, 40):
            sim.schedule(t, lambda: None)
        delivered = {}
        fabric.send((0, 0), (5, 3), 64, MessageClass.NI_DATA,
                    lambda p: delivered.update(t=sim.now))
        sim.run()
        assert delivered["t"] == fabric.zero_load_latency((0, 0), (5, 3), 64)
        assert fabric.fused_hops == 0

    def test_stats_at_a_run_horizon_match_unfused(self):
        # A fused walk must not commit link occupancy for hops the per-hop
        # chain would not have executed by a run(until=...) horizon: callers
        # sample utilization exactly at those boundaries.
        sim_a, fused = make_fabric(hop_fusion=True)
        sim_b, unfused = make_fabric(hop_fusion=False)
        for sim, fabric in ((sim_a, fused), (sim_b, unfused)):
            fabric.send((0, 0), (7, 7), 256, MessageClass.NI_DATA)
            sim.run(until=3)
        busy_a = sum(c.busy_cycles for c in fused._channels.values())
        busy_b = sum(c.busy_cycles for c in unfused._channels.values())
        assert busy_a == busy_b
        assert fused.bisection_bytes == unfused.bisection_bytes
        assert fused.link_utilization() == unfused.link_utilization()
        # Both finish the packet identically after the horizon lifts.
        sim_a.run()
        sim_b.run()
        assert fused.packets_delivered == unfused.packets_delivered == 1
        assert fused.link_utilization() == unfused.link_utilization()

    def test_reset_stats_mid_flight_matches_unfused(self):
        # Warm-up boundary with a packet in flight: the carried-over
        # in-flight busy cycles must be identical fused vs unfused.
        sim_a, fused = make_fabric(hop_fusion=True)
        sim_b, unfused = make_fabric(hop_fusion=False)
        results = {}
        for key, (sim, fabric) in (("fused", (sim_a, fused)),
                                   ("unfused", (sim_b, unfused))):
            fabric.send((0, 0), (7, 7), 256, MessageClass.NI_DATA)
            sim.run(until=5)
            fabric.reset_stats()
            sim.run()
            results[key] = (
                fabric.bisection_bytes,
                sum(c.busy_cycles for c in fabric._channels.values()),
            )
        assert results["fused"] == results["unfused"]

    def test_reset_stats_zeroes_window_counter_only(self):
        sim, fabric = make_fabric()
        fabric.send((0, 0), (5, 3), 64, MessageClass.NI_DATA)
        sim.run()
        assert fabric.fused_hops > 0
        lifetime = fabric.lifetime_fused_hops
        fabric.reset_stats()
        assert fabric.fused_hops == 0
        assert fabric.lifetime_fused_hops == lifetime
