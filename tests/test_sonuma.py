"""Tests for the soNUMA protocol layer (wire format, contexts, unrolling)."""

import pytest

from repro.errors import ProtocolError
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.sonuma.context import ContextRegistry, RemoteContext
from repro.sonuma.unroll import block_count, unroll_blocks
from repro.sonuma.wire import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    RemoteRequest,
    RemoteResponse,
)


class TestWireFormat:
    def test_read_request_is_header_only(self):
        request = RemoteRequest(RemoteOp.READ, src_node=0, dst_node=1, ctx_id=0, offset=0)
        assert request.wire_bytes == REQUEST_HEADER_BYTES

    def test_write_request_carries_a_block(self):
        request = RemoteRequest(RemoteOp.WRITE, 0, 1, 0, 0)
        assert request.wire_bytes == REQUEST_HEADER_BYTES + 64

    def test_response_mirrors_request(self):
        request = RemoteRequest(RemoteOp.READ, src_node=0, dst_node=3, ctx_id=7,
                                offset=128, block_index=0, total_blocks=2)
        response = request.make_response()
        assert response.request_id == request.request_id
        assert response.src_node == 3 and response.dst_node == 0
        assert response.wire_bytes == RESPONSE_HEADER_BYTES + 64

    def test_write_response_is_header_only(self):
        request = RemoteRequest(RemoteOp.WRITE, 0, 1, 0, 0)
        assert request.make_response().wire_bytes == RESPONSE_HEADER_BYTES

    def test_request_ids_are_unique(self):
        a = RemoteRequest(RemoteOp.READ, 0, 1, 0, 0)
        b = RemoteRequest(RemoteOp.READ, 0, 1, 0, 0)
        assert a.request_id != b.request_id

    def test_invalid_unroll_indices_rejected(self):
        with pytest.raises(ProtocolError):
            RemoteRequest(RemoteOp.READ, 0, 1, 0, 0, block_index=2, total_blocks=2)
        with pytest.raises(ProtocolError):
            RemoteRequest(RemoteOp.READ, 0, 1, 0, offset=-1)


class TestContexts:
    def test_translate_within_bounds(self):
        ctx = RemoteContext(ctx_id=0, node_id=0, base_addr=0x4000, size_bytes=4096)
        assert ctx.translate(128) == 0x4000 + 128
        assert ctx.contains(4032, 64)
        assert not ctx.contains(4096, 1)

    def test_translate_out_of_bounds_rejected(self):
        ctx = RemoteContext(0, 0, 0x4000, 4096)
        with pytest.raises(ProtocolError):
            ctx.translate(5000)

    def test_registry_register_and_validate(self):
        registry = ContextRegistry(node_id=0)
        registry.register(1, base_addr=0x1000, size_bytes=1 << 20)
        ctx = registry.validate(1, offset=512, length=64)
        assert ctx.ctx_id == 1
        assert len(registry) == 1

    def test_registry_rejects_duplicates_and_unknown(self):
        registry = ContextRegistry(0)
        registry.register(1, 0, 4096)
        with pytest.raises(ProtocolError):
            registry.register(1, 0, 4096)
        with pytest.raises(ProtocolError):
            registry.lookup(2)
        with pytest.raises(ProtocolError):
            registry.validate(1, offset=4090, length=64)

    def test_invalid_context_parameters(self):
        with pytest.raises(ProtocolError):
            RemoteContext(0, 0, 0, 0)


class TestUnrolling:
    def test_block_count_rounds_up(self):
        assert block_count(64) == 1
        assert block_count(65) == 2
        assert block_count(8192) == 128
        with pytest.raises(ProtocolError):
            block_count(0)

    def test_unroll_produces_one_request_per_block(self):
        entry = WorkQueueEntry(RemoteOp.READ, ctx_id=2, dst_node=4,
                               remote_offset=256, local_buffer=0, length=256)
        requests = unroll_blocks(entry, src_node=0, transfer_id=9)
        assert len(requests) == 4
        assert [r.offset for r in requests] == [256, 320, 384, 448]
        assert all(r.transfer_id == 9 for r in requests)
        assert all(r.total_blocks == 4 for r in requests)
        assert [r.block_index for r in requests] == [0, 1, 2, 3]
        assert all(r.dst_node == 4 and r.ctx_id == 2 for r in requests)

    def test_unroll_preserves_operation(self):
        entry = WorkQueueEntry(RemoteOp.WRITE, 0, 1, 0, 0, length=128)
        requests = unroll_blocks(entry, src_node=0, transfer_id=0)
        assert all(r.op is RemoteOp.WRITE for r in requests)
