"""Tests for the campaign subsystem (grid expansion, cache, parallel runs)."""

import pytest

from repro.campaign import (
    Campaign,
    CampaignReport,
    ResultCache,
    RunRequest,
    expand_grid,
    load_report,
    load_results,
    parse_sweep_axes,
)
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment, unregister


@pytest.fixture
def counting_experiment():
    """A throwaway registered experiment that counts its executions."""
    calls = {"count": 0}

    @experiment(
        name="counting-test",
        title="Counting",
        description="test-only experiment",
        parameters=(Parameter("scale", int, default=1),),
    )
    def run_counting(config=None, scale=1):
        calls["count"] += 1
        result = ExperimentResult("Counting", "test", headers=["x", "y"])
        result.add_row(scale, scale * 2)
        return result

    yield calls
    unregister("counting-test")


class TestRunRequest:
    def test_fingerprint_stable_and_param_sensitive(self):
        base = RunRequest("table1")
        assert base.fingerprint() == RunRequest("table1").fingerprint()
        # An override equal to the declared default hashes like no override.
        assert base.fingerprint() == RunRequest("table1", {"hops": 1}).fingerprint()
        assert base.fingerprint() != RunRequest("table1", {"hops": 2}).fingerprint()

    def test_params_normalized_to_json_native(self):
        request = RunRequest("fig6", {"sizes": (64, 128)})
        assert request.params["sizes"] == [64, 128]

    def test_round_trip(self):
        request = RunRequest("fig6", {"design": "edge", "sizes": (64,)})
        assert RunRequest.from_dict(request.to_dict()) == request

    def test_execute_validates(self):
        with pytest.raises(ExperimentError):
            RunRequest("table1", {"bogus": 1}).execute()


class TestGrid:
    def test_expand_grid_cartesian_product(self):
        requests = expand_grid("fig6", {"design": ["edge", "split"], "hops": [1, 2]})
        assert len(requests) == 4
        assert {(r.params["design"], r.params["hops"]) for r in requests} == {
            ("edge", 1), ("edge", 2), ("split", 1), ("split", 2),
        }

    def test_expand_empty_grid_is_single_default_run(self):
        requests = expand_grid("table1", {})
        assert requests == [RunRequest("table1")]

    def test_expand_grid_validates_values(self):
        with pytest.raises(ExperimentError):
            expand_grid("fig6", {"design": ["edge", "bogus"]})
        with pytest.raises(ExperimentError):
            expand_grid("fig6", {"design": []})

    def test_parse_sweep_axes(self):
        axes = parse_sweep_axes("fig6", ["design=edge,split", "sizes=64:128,4096"])
        assert axes["design"] == ["edge", "split"]
        assert axes["sizes"] == [(64, 128), (4096,)]

    def test_parse_sweep_axes_unknown_parameter(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            parse_sweep_axes("fig6", ["bogus=1"])


class TestCache:
    def test_second_identical_run_touches_no_simulator(self, counting_experiment):
        cache = ResultCache()
        requests = [RunRequest("counting-test", {"scale": 3})]
        first = Campaign(requests, cache=cache).run()
        assert counting_experiment["count"] == 1 and first.cache_hits == 0
        second = Campaign(requests, cache=cache).run()
        assert counting_experiment["count"] == 1  # runner not invoked again
        assert second.cache_hits == 1
        assert second.results[0].column("y") == [6]

    def test_different_params_miss(self, counting_experiment):
        cache = ResultCache()
        Campaign([RunRequest("counting-test", {"scale": 1})], cache=cache).run()
        Campaign([RunRequest("counting-test", {"scale": 2})], cache=cache).run()
        assert counting_experiment["count"] == 2

    def test_disk_cache_survives_new_instance(self, counting_experiment, tmp_path):
        directory = str(tmp_path / "cache")
        request = RunRequest("counting-test", {"scale": 5})
        Campaign([request], cache=ResultCache(directory)).run()
        assert counting_experiment["count"] == 1
        report = Campaign([request], cache=ResultCache(directory)).run()
        assert counting_experiment["count"] == 1
        assert report.cache_hits == 1 and report.results[0].column("x") == [5]


class TestCampaign:
    def test_sequential_run_collects_results(self):
        report = Campaign([RunRequest("table1"), RunRequest("table3")]).run()
        assert report.succeeded == 2 and report.failed == 0
        assert [r.name for r in report.results] == ["Table 1", "Table 3"]

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(ExperimentError):
            Campaign([RunRequest("fig99")])

    def test_failure_captured_per_entry(self, counting_experiment):
        # hops=0 is fine for table1, but a bogus param type fails validation
        # at execute() time when the request is built directly.
        report = Campaign([RunRequest("table1", {"hops": 1}),
                           RunRequest("counting-test", {"scale": "x"})]).run()
        assert report.succeeded == 1 and report.failed == 1
        failing = [entry for entry in report.entries if not entry.ok]
        assert "scale" in failing[0].error

    def test_failure_error_includes_config_fingerprint(self):
        # Failed grid points must be identifiable from the report/stream:
        # the error text carries the entry's config fingerprint (or a raw
        # request hash when the request is too malformed to resolve).
        request = RunRequest(
            "load_sweep",
            {"measure_cycles": -5.0, "loads": [5.0], "warmup_cycles": 100.0},
        )
        report = Campaign([request]).run()
        failing = [entry for entry in report.entries if not entry.ok]
        assert len(failing) == 1
        assert "[config %s]" % request.fingerprint() in failing[0].error

    def test_malformed_failure_gets_raw_fingerprint(self, counting_experiment):
        report = Campaign([RunRequest("counting-test", {"scale": "x"})]).run()
        failing = [entry for entry in report.entries if not entry.ok]
        assert "[config raw-" in failing[0].error

    def test_pool_failure_error_matches_inline(self, counting_experiment):
        # Same wording on both paths, so stream contents and reports do not
        # depend on the worker count.
        requests = [
            RunRequest("table1", {"hops": 1}),
            RunRequest(
                "load_sweep",
                {"measure_cycles": -5.0, "loads": [5.0], "warmup_cycles": 100.0},
            ),
        ]
        inline = Campaign(requests).run()
        pooled = Campaign(requests, max_workers=2).run()
        inline_errors = [entry.error for entry in inline.entries if not entry.ok]
        pooled_errors = [entry.error for entry in pooled.entries if not entry.ok]
        assert inline_errors == pooled_errors
        assert inline_errors and "[config " in inline_errors[0]

    def test_parallel_run_over_processes(self):
        requests = expand_grid("table3", {"hops": [1, 2, 3, 4]})
        report = Campaign(requests, max_workers=2).run()
        assert report.succeeded == 4
        hops_totals = {entry.request.params["hops"]: entry.result.column("Analytical cycles")
                       for entry in report.entries}
        # More hops means strictly larger QP-design latency.
        assert hops_totals[2][0] > hops_totals[1][0]

    def test_broken_pool_entry_retried_once(self, monkeypatch, counting_experiment):
        # A BrokenProcessPool (OOM-killed or crashed worker) is transient:
        # the stranded entry is resubmitted exactly once on a fresh pool and
        # the retry is recorded in the result metadata.  Entries that
        # completed in the first round keep their results and stay
        # warning-free.
        import repro.campaign.runner as runner_module
        from concurrent.futures.process import BrokenProcessPool

        pools = []

        class FakePool:
            def __init__(self, max_workers=None):
                self.first_round = not pools
                pools.append(self)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, request, obs_spec):
                break_this = self.first_round and request.params.get("scale") == 2

                class FakeFuture:
                    def result(self):
                        if break_this:
                            raise BrokenProcessPool("worker died")
                        return fn(request, obs_spec)

                return FakeFuture()

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", FakePool)
        report = Campaign([
            RunRequest("counting-test", {"scale": 1}),
            RunRequest("counting-test", {"scale": 2}),
        ], max_workers=2).run()
        assert report.succeeded == 2 and report.failed == 0
        assert len(pools) == 2  # one retry round on a fresh pool
        survivor, retried = report.entries
        assert survivor.error is None and retried.error is None
        assert survivor.result.metadata.warnings == []
        assert any("retried once" in warning and "BrokenProcessPool" in warning
                   for warning in retried.result.metadata.warnings)

    def test_twice_broken_pool_entry_reports_error(self, monkeypatch,
                                                   counting_experiment):
        # A second worker death on the retry round is the entry's error.
        import repro.campaign.runner as runner_module
        from concurrent.futures.process import BrokenProcessPool

        class AlwaysBrokenPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, request, obs_spec):
                class FakeFuture:
                    def result(self):
                        raise BrokenProcessPool("worker died")

                return FakeFuture()

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", AlwaysBrokenPool)
        report = Campaign([RunRequest("counting-test", {"scale": 3})],
                          max_workers=2).run()
        assert report.failed == 1
        assert "BrokenProcessPool" in report.entries[0].error

    def test_report_json_round_trip(self, tmp_path):
        report = Campaign(expand_grid("table1", {"hops": [1, 2]})).run()
        path = str(tmp_path / "report.json")
        report.write_json(path)
        restored = load_report(path)
        assert restored.to_dict()["entries"] == report.to_dict()["entries"]
        assert [r.name for r in load_results(path)] == ["Table 1", "Table 1"]

    def test_report_csv_merges_param_columns(self):
        report = Campaign(expand_grid("table1", {"hops": [1, 2]})).run()
        lines = report.to_csv().strip().splitlines()
        assert lines[0].startswith("experiment,hops,")
        assert lines[1].startswith("table1,1,")
        assert any(line.startswith("table1,2,") for line in lines)
