"""Tests for the core (application-thread) model driving queue pairs."""

import pytest

from repro.node.core_model import CoreModel
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.errors import WorkloadError
from repro.qp.entries import RemoteOp, WorkQueueEntry


REGION = 1 << 22


def build_node(config, core_id=0):
    soc = ManycoreSoc(config)
    soc.register_context(0, size_bytes=REGION)
    emulator = RemoteEndEmulator(soc, hops=1)
    qp = soc.create_queue_pair(core_id)
    core = CoreModel(core_id, soc, qp)
    return soc, emulator, core


def read_entries(count, length=64):
    for index in range(count):
        yield WorkQueueEntry(
            op=RemoteOp.READ, ctx_id=0, dst_node=1,
            remote_offset=(index * length) % REGION,
            local_buffer=0x900_0000 + index * length,
            length=length,
        )


class TestSynchronousOperation:
    def test_single_synchronous_read_completes(self, split_config):
        soc, emulator, core = build_node(split_config)
        core.start(read_entries(1), max_outstanding=1)
        soc.run()
        assert core.completed_ops == 1
        assert core.completed_bytes == 64
        assert core.outstanding == 0
        assert len(core.latency.samples) == 1
        assert core.latency.samples[0] > 300  # includes network + remote service

    def test_sequential_reads_have_stable_latency(self, split_config):
        soc, emulator, core = build_node(split_config)
        core.start(read_entries(4), max_outstanding=1)
        soc.run()
        assert core.completed_ops == 4
        samples = core.latency.samples
        assert max(samples[1:]) - min(samples[1:]) < 0.05 * max(samples[1:])

    def test_multi_block_transfer_counts_full_length(self, split_config):
        soc, emulator, core = build_node(split_config)
        core.start(read_entries(1, length=512), max_outstanding=1)
        soc.run()
        assert core.completed_ops == 1
        assert core.completed_bytes == 512
        assert emulator.outgoing_requests == 8  # unrolled into 8 block requests

    def test_invalid_max_outstanding_rejected(self, split_config):
        soc, emulator, core = build_node(split_config)
        with pytest.raises(WorkloadError):
            core.start(read_entries(1), max_outstanding=0)


class TestAsynchronousOperation:
    def test_outstanding_respects_the_limit(self, split_config):
        soc, emulator, core = build_node(split_config)
        core.start(read_entries(64), max_outstanding=4)
        # Run a little and check the in-flight bound, then run to completion.
        soc.run(until=300)
        assert core.outstanding <= 4
        soc.run()
        assert core.completed_ops == 64
        assert core.outstanding == 0

    def test_async_issue_overlaps_requests(self, split_config):
        sync_soc, _, sync_core = build_node(split_config)
        sync_core.start(read_entries(16), max_outstanding=1)
        sync_soc.run()
        async_soc, _, async_core = build_node(split_config)
        async_core.start(read_entries(16), max_outstanding=8)
        async_soc.run()
        assert async_soc.sim.now < sync_soc.sim.now

    def test_stop_prevents_further_issue(self, split_config):
        soc, emulator, core = build_node(split_config)
        core.start(read_entries(1000), max_outstanding=2)
        soc.run(until=500)
        core.stop()
        issued_at_stop = core.issued_ops
        soc.run()
        assert core.issued_ops <= issued_at_stop + 2
        assert core.outstanding == 0

    def test_reset_measurements_clears_counters(self, split_config):
        soc, emulator, core = build_node(split_config)
        core.start(read_entries(2), max_outstanding=1)
        soc.run()
        core.reset_measurements()
        assert core.completed_ops == 0
        assert core.latency.count == 0


class TestEdgeDesignInteraction:
    def test_edge_design_round_trip_works_end_to_end(self, edge_config):
        soc, emulator, core = build_node(edge_config, core_id=5)
        core.start(read_entries(2), max_outstanding=1)
        soc.run()
        assert core.completed_ops == 2

    def test_edge_latency_exceeds_split_latency(self, split_config, edge_config):
        _, _, split_core = build_node(split_config, core_id=5)
        split_soc = split_core.soc
        split_core.start(read_entries(3), max_outstanding=1)
        split_soc.run()
        _, _, edge_core = build_node(edge_config, core_id=5)
        edge_soc = edge_core.soc
        edge_core.start(read_entries(3), max_outstanding=1)
        edge_soc.run()
        assert edge_core.latency.mean > split_core.latency.mean
