"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import CoreConfig, NIDesign, SystemConfig


def small_config(design: NIDesign = NIDesign.SPLIT, **overrides) -> SystemConfig:
    """A 16-core (4x4) configuration that keeps integration tests fast.

    All latency calibration constants are identical to the paper
    configuration; only the chip size shrinks.
    """
    base = SystemConfig.paper_defaults()
    config = base.replace(cores=dataclasses.replace(base.cores, count=16)).with_design(design)
    if overrides:
        config = config.replace(**overrides)
    return config


@pytest.fixture
def paper_config() -> SystemConfig:
    """The full 64-core Table-2 configuration."""
    return SystemConfig.paper_defaults()


@pytest.fixture
def split_config() -> SystemConfig:
    return small_config(NIDesign.SPLIT)


@pytest.fixture
def edge_config() -> SystemConfig:
    return small_config(NIDesign.EDGE)


@pytest.fixture
def per_tile_config() -> SystemConfig:
    return small_config(NIDesign.PER_TILE)
