"""Shared fixtures for the test suite (helpers live in helpers.py)."""

from __future__ import annotations

import pytest

from helpers import small_config
from repro.config import NIDesign, SystemConfig


@pytest.fixture
def paper_config() -> SystemConfig:
    """The full 64-core Table-2 configuration."""
    return SystemConfig.paper_defaults()


@pytest.fixture
def split_config() -> SystemConfig:
    return small_config(NIDesign.SPLIT)


@pytest.fixture
def edge_config() -> SystemConfig:
    return small_config(NIDesign.EDGE)


@pytest.fixture
def per_tile_config() -> SystemConfig:
    return small_config(NIDesign.PER_TILE)
