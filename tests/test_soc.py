"""Tests for the ManycoreSoc wiring and its data-path services."""

import pytest

from helpers import small_config

from repro.config import NIDesign
from repro.core.edge import NIEdgeDesign
from repro.core.per_tile import NIPerTileDesign
from repro.core.split import NISplitDesign
from repro.errors import ConfigurationError, SimulationError
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator


class TestConstruction:
    def test_split_design_builds_frontends_per_tile_and_backends_per_row(self, split_config):
        soc = ManycoreSoc(split_config)
        assert isinstance(soc.ni, NISplitDesign)
        assert len(soc.ni.frontends) == 16
        assert len(soc.ni.backends) == 4
        assert len(soc.ni.rrpps) == 4
        assert len({id(f) for f in soc.ni.frontends.values()}) == 16

    def test_edge_design_shares_one_frontend_per_row(self, edge_config):
        soc = ManycoreSoc(edge_config)
        assert isinstance(soc.ni, NIEdgeDesign)
        assert len({id(f) for f in soc.ni.frontends.values()}) == 4
        assert len(soc.ni.backends) == 4

    def test_per_tile_design_has_one_backend_per_tile(self, per_tile_config):
        soc = ManycoreSoc(per_tile_config)
        assert isinstance(soc.ni, NIPerTileDesign)
        assert len(soc.ni.backends) == 16
        # Per-tile backends are not at the chip edge, so they must route
        # packets to the network port over the NOC.
        assert any(not backend.injection_at_edge for backend in soc.ni.backends)

    def test_split_backends_inject_at_the_edge(self, split_config):
        soc = ManycoreSoc(split_config)
        assert all(backend.injection_at_edge for backend in soc.ni.backends)

    def test_numa_design_rejected(self):
        with pytest.raises(ConfigurationError):
            ManycoreSoc(small_config(NIDesign.NUMA))

    def test_tile_complexes_registered_with_coherence(self, split_config):
        soc = ManycoreSoc(split_config)
        for tile_id in range(split_config.tile_count):
            complex_ = soc.tile_complex(tile_id)
            assert soc.coherence.complex_of(complex_.entity_id) is complex_

    def test_collocated_designs_attach_ni_caches(self, split_config, edge_config):
        split_soc = ManycoreSoc(split_config)
        assert all(split_soc.tile_complex(t).ni_cache is not None for t in range(16))
        edge_soc = ManycoreSoc(edge_config)
        assert all(edge_soc.tile_complex(t).ni_cache is None for t in range(16))


class TestQueuePairSetup:
    def test_create_queue_pair_registers_with_the_right_frontend(self, split_config):
        soc = ManycoreSoc(split_config)
        qp = soc.create_queue_pair(5)
        assert qp.owner_core == 5
        assert qp.servicing_ni == soc.ni.frontend_for_core(5).name

    def test_prewarm_gives_collocated_complex_ownership(self, split_config):
        soc = ManycoreSoc(split_config)
        qp = soc.create_queue_pair(3)
        complex_ = soc.tile_complex(3)
        wq_block = qp.wq.entry_block_address(0)
        cq_block = qp.cq.entry_block_address(0)
        assert complex_.state(wq_block).writable
        assert complex_.state(cq_block).writable
        assert complex_.ni_cache.has_copy(cq_block)

    def test_prewarm_edge_design_sets_up_polling_state(self, edge_config):
        soc = ManycoreSoc(edge_config)
        qp = soc.create_queue_pair(3)
        edge_complex = soc.coherence.complex_of(soc.ni.frontend_for_core(3).entity_id)
        wq_block = qp.wq.entry_block_address(0)
        assert edge_complex.holds(wq_block)
        assert soc.directory.entry(wq_block).in_llc


class TestDataPath:
    def test_memory_read_round_trip_latency(self, split_config):
        soc = ManycoreSoc(split_config)
        done = []
        soc.memory_read((0, 0), addr=0x100000, nbytes=64, on_done=lambda: done.append(soc.sim.now))
        soc.run()
        assert len(done) == 1
        # Must include the 100-cycle DRAM latency plus several NOC traversals.
        assert done[0] > 100
        assert soc.memory_controllers[soc.address_map.mc_for_addr(0x100000)].dram.reads == 1

    def test_memory_write_is_posted_then_drained_to_dram(self, split_config):
        soc = ManycoreSoc(split_config)
        done = []
        soc.memory_write((0, 0), addr=0x200000, nbytes=64, on_done=lambda: done.append(soc.sim.now))
        soc.run()
        assert len(done) == 1
        mc = soc.memory_controllers[soc.address_map.mc_for_addr(0x200000)]
        assert mc.dram.writes == 1
        # The write is acknowledged before DRAM is updated (posted write).
        assert done[0] < soc.sim.now

    def test_off_chip_send_requires_a_port(self, split_config):
        soc = ManycoreSoc(split_config)
        with pytest.raises(SimulationError):
            soc.off_chip_send(object(), (0, 0))

    def test_translate_validates_context_bounds(self, split_config):
        soc = ManycoreSoc(split_config)
        soc.register_context(0, size_bytes=4096)
        assert soc.translate(0, 128, 64) == 0x4000_0000 + 128

    def test_llc_bank_utilization_reports_zero_when_idle(self, split_config):
        soc = ManycoreSoc(split_config)
        assert soc.llc_bank_utilization() == 0.0


class TestRemotePort:
    def test_emulator_round_trip_delivers_response(self, split_config):
        soc = ManycoreSoc(split_config)
        soc.register_context(0, size_bytes=1 << 20)
        emulator = RemoteEndEmulator(soc, hops=1)
        qp = soc.create_queue_pair(0)
        from repro.qp.entries import RemoteOp, WorkQueueEntry
        entry = WorkQueueEntry(RemoteOp.READ, 0, 1, 0, 0x9000000, 64)
        frontend = soc.ni.frontend_for_core(0)
        index = qp.wq.post(entry)
        frontend.post_doorbell(qp, 0, entry, index)
        soc.run()
        assert emulator.outgoing_requests == 1
        assert emulator.responses_delivered == 1
        assert qp.cq.count == 1
