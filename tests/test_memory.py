"""Tests for the DRAM, memory-controller and address-map models."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.memory.dram import DramModel
from repro.sim.engine import Simulator


class TestDram:
    def test_fixed_latency_plus_serialization(self):
        sim = Simulator()
        dram = DramModel(sim, latency_cycles=100, bandwidth_bytes_per_cycle=64)
        done = []
        dram.access(64, is_write=False, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [101.0]

    def test_bandwidth_serializes_consecutive_accesses(self):
        sim = Simulator()
        dram = DramModel(sim, latency_cycles=100, bandwidth_bytes_per_cycle=8)
        done = []
        dram.access(64, False, lambda: done.append(sim.now))
        dram.access(64, False, lambda: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(108.0)
        assert done[1] == pytest.approx(116.0)

    def test_read_write_counters(self):
        sim = Simulator()
        dram = DramModel(sim, 100, 64)
        dram.access(64, False)
        dram.access(128, True)
        assert dram.reads == 1 and dram.writes == 1
        assert dram.bytes_read == 64 and dram.bytes_written == 128
        assert dram.accesses == 2

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            DramModel(sim, -1, 64)
        with pytest.raises(ConfigurationError):
            DramModel(sim, 100, 0)
        with pytest.raises(ConfigurationError):
            DramModel(sim, 100, 64).access(0, False)


class TestMemoryController:
    def test_service_completes_after_dram_latency(self):
        sim = Simulator()
        mc = MemoryController(sim, 0, (7, 0), DramModel(sim, 100, 64))
        done = []
        mc.service(64, is_write=False, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done and done[0] >= 100
        assert mc.requests == 1

    def test_scheduler_serializes_requests(self):
        sim = Simulator()
        mc = MemoryController(sim, 0, (7, 0), DramModel(sim, 10, 64))
        done = []
        for _ in range(3):
            mc.service(64, False, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 3
        assert done == sorted(done)
        assert mc.utilization() > 0.0

    def test_negative_index_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            MemoryController(sim, -1, (7, 0), DramModel(sim, 10, 64))


class TestAddressMap:
    def test_block_alignment(self):
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        assert amap.block_address(130) == 128
        assert amap.block_index(130) == 2

    def test_home_slice_interleaving(self):
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        assert amap.home_llc_slice(0) == 0
        assert amap.home_llc_slice(64) == 1
        assert amap.home_llc_slice(64 * 64) == 0

    def test_rrpp_is_row_aligned_with_home_slice(self):
        """§4.3: the RRPP serving an offset sits on the home slice's mesh row."""
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        for block in range(256):
            offset = block * 64
            home_row = amap.home_llc_slice(offset) // 8
            assert amap.rrpp_for_offset(offset) == home_row

    def test_mc_interleave_is_block_granular(self):
        """Channels interleave at block granularity and cycle over all MCs."""
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        seen = {amap.mc_for_addr(block * 64) for block in range(64)}
        assert seen == set(range(8))
        assert amap.mc_for_addr(0) == 0
        assert amap.mc_for_addr(9 * 64) == 1

    def test_blocks_in_covers_the_range(self):
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        blocks = list(amap.blocks_in(100, 200))
        assert blocks[0] == 64
        assert blocks[-1] == 256
        assert all(b % 64 == 0 for b in blocks)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap(llc_slices=0, memory_controllers=8, rrpps=8)
        amap = AddressMap(llc_slices=64, memory_controllers=8, rrpps=8)
        with pytest.raises(ConfigurationError):
            amap.block_index(-1)
        with pytest.raises(ConfigurationError):
            list(amap.blocks_in(0, 0))
