"""Tests for the experiment harness (tables/figures regeneration)."""

import pytest

from helpers import small_config

from repro.config import RoutingAlgorithm, SystemConfig
from repro.errors import ExperimentError
from repro.experiments import (
    run_fig5,
    run_fig6,
    run_fig7,
    run_owned_state_ablation,
    run_routing_ablation,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.base import ExperimentResult, ResultMetadata
from repro.experiments.registry import EXPERIMENTS, get_experiment, get_spec, list_experiments
from repro.experiments.runner import FAST_EXPERIMENTS, format_results, run_experiments
from repro.experiments.spec import Parameter, experiment, unregister


class TestResultContainer:
    def test_add_row_and_format(self):
        result = ExperimentResult("X", "desc", headers=["a", "b"])
        result.add_row(1, 2.0)
        result.add_note("note text")
        text = result.format()
        assert "== X ==" in text and "note text" in text

    def test_add_row_rejects_wrong_width(self):
        result = ExperimentResult("X", "desc", headers=["a", "b"])
        with pytest.raises(ExperimentError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("X", "desc", headers=["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_unknown_column_error_lists_headers(self):
        result = ExperimentResult("X", "desc", headers=["a", "b"])
        with pytest.raises(ExperimentError, match=r"missing.*'a', 'b'"):
            result.column("missing")

    def test_units_derived_from_headers(self):
        result = ExperimentResult("X", "desc", headers=["Transfer (B)", "Latency (ns)", "Design"])
        assert result.unit("Transfer (B)") == "B"
        assert result.unit("Latency (ns)") == "ns"
        assert result.unit("Design") is None

    def test_json_round_trip(self):
        result = ExperimentResult("X", "desc", headers=["a (ns)", "b"])
        result.add_row(1, "s")
        result.add_row(2.5, "t")
        result.add_note("n")
        result.metadata = ResultMetadata(
            experiment="x", params={"k": [1, 2]}, config_fingerprint="abc",
            wall_time_s=0.25, row_count=2, events={"runs": 2},
        )
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.to_dict() == result.to_dict()
        assert restored.column("a (ns)") == [1, 2.5]
        assert restored.metadata.events == {"runs": 2}

    def test_csv_export(self):
        result = ExperimentResult("X", "desc", headers=["a", "b"])
        result.add_row(1, 2)
        lines = result.to_csv().strip().splitlines()
        assert lines == ["a,b", "1,2"]


class TestSpec:
    def test_every_experiment_has_a_spec(self):
        for name in list_experiments():
            spec = get_spec(name)
            assert spec.name == name and callable(spec.runner)

    def test_run_stamps_metadata(self):
        result = get_spec("table1").run()
        assert result.metadata.experiment == "table1"
        assert result.metadata.params == {"hops": 1}
        assert result.metadata.config_fingerprint == SystemConfig.paper_defaults().fingerprint()
        assert result.metadata.row_count == len(result.rows)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            get_spec("table1").run(bogus=3)

    def test_choice_validation(self):
        with pytest.raises(ExperimentError, match="must be one of"):
            get_spec("fig6").resolve({"design": "numa"})

    def test_type_validation(self):
        with pytest.raises(ExperimentError, match="expects a int"):
            get_spec("fig6").resolve({"hops": "two"})

    def test_parse_overrides_set_syntax(self):
        spec = get_spec("fig6")
        overrides = spec.parse_overrides(["sizes=64,4096", "design=edge", "iterations=2"])
        assert overrides == {"sizes": (64, 4096), "design": "edge", "iterations": 2}

    def test_parse_overrides_bool(self):
        spec = get_spec("table3")
        assert spec.parse_overrides(["simulate=true"]) == {"simulate": True}
        assert spec.parse_overrides(["simulate=0"]) == {"simulate": False}

    def test_malformed_set_rejected(self):
        with pytest.raises(ExperimentError, match="param=value"):
            get_spec("fig6").parse_overrides(["sizes"])

    def test_duplicate_registration_rejected(self):
        def runner(config=None):
            return ExperimentResult("d", "", headers=[])
        try:
            experiment(name="dup-test", title="d", description="")(runner)
            with pytest.raises(ExperimentError, match="already registered"):
                experiment(name="dup-test", title="d", description="")(runner)
        finally:
            unregister("dup-test")

    def test_parameter_parse_repeated(self):
        parameter = Parameter("sizes", int, default=(), repeated=True)
        assert parameter.parse("64,128") == (64, 128)
        assert parameter.parse("64:128", list_separator=":") == (64, 128)
        with pytest.raises(ExperimentError):
            parameter.parse("64,oops")


class TestAnalyticalExperiments:
    def test_table1_totals(self):
        result = run_table1()
        text = result.format()
        assert "710" in text and "395" in text and "79.7%" in text

    def test_table2_lists_parameters(self):
        text = run_table2().format()
        assert "MESI" in text and "3D torus" in text.replace("3d", "3D")

    def test_table3_rows_cover_all_designs(self):
        result = run_table3()
        designs = result.column("Design")
        assert set(designs) == {"edge", "per_tile", "split", "numa"}
        assert result.column("Analytical cycles") == [710, 445, 447, 395]

    def test_fig5_series_shapes(self):
        result = run_fig5()
        hops = result.column("Hops")
        assert hops[0] == 0 and hops[-1] == 12
        edge_overhead = result.column("NIedge overhead (%)")
        assert edge_overhead == sorted(edge_overhead, reverse=True)


class TestSimulatedExperiments:
    """Scaled-down runs of the simulator-backed experiments."""

    def test_fig6_small_sweep_preserves_design_ordering(self):
        result = run_fig6(config=small_config(), sizes=(64, 4096), iterations=2, warmup=1)
        sizes = result.column("Transfer (B)")
        assert sizes == [64, 4096]
        edge = result.column("NIedge (ns)")
        split = result.column("NIsplit (ns)")
        numa = result.column("NUMA projection (ns)")
        assert edge[0] > split[0] > numa[0]

    def test_fig6_default_columns_keep_paper_order(self):
        result = run_fig6(config=small_config(), sizes=(64,), iterations=1, warmup=0)
        assert list(result.headers) == [
            "Transfer (B)", "NIedge (ns)", "NIsplit (ns)", "NIper-tile (ns)",
            "NUMA projection (ns)",
        ]

    def test_fig9_fingerprint_matches_effective_config(self):
        config = small_config()
        result = get_spec("fig9").run(config=config, sizes=(64,), iterations=1, warmup=0)
        merged = SystemConfig.noc_out_defaults().replace(
            calibration=config.calibration, ni=config.ni, rack=config.rack
        )
        assert result.metadata.config_fingerprint == merged.fingerprint()
        assert result.metadata.config_fingerprint != config.fingerprint()

    def test_fig6_single_design_restricts_columns(self):
        result = run_fig6(config=small_config(), design="edge", sizes=(64,),
                          iterations=1, warmup=0)
        assert list(result.headers) == ["Transfer (B)", "NIedge (ns)", "NUMA projection (ns)"]

    def test_fig7_small_sweep_runs(self):
        result = run_fig7(config=small_config(), sizes=(512,), warmup_cycles=500, measure_cycles=2000)
        assert len(result.rows) == 1
        for header in ("NIedge (GBps)", "NIsplit (GBps)", "NIper-tile (GBps)"):
            assert result.column(header)[0] > 0

    def test_table3_with_simulation_column(self):
        result = run_table3(config=small_config(), simulate=True, iterations=2)
        simulated = result.column("Simulated cycles")
        assert all(value > 0 for value in simulated)

    def test_routing_ablation_covers_requested_policies(self):
        result = run_routing_ablation(
            config=small_config(),
            transfer_bytes=512,
            policies=(RoutingAlgorithm.XY, RoutingAlgorithm.CDR_EXTENDED),
            warmup_cycles=500,
            measure_cycles=1500,
        )
        assert result.column("Routing") == ["xy", "cdr_extended"]
        assert all(value > 0 for value in result.column("Application (GBps)"))

    def test_routing_ablation_accepts_string_policies(self):
        result = run_routing_ablation(
            config=small_config(),
            transfer_bytes=512,
            policies=("xy",),
            warmup_cycles=500,
            measure_cycles=1500,
        )
        assert result.column("Routing") == ["xy"]

    def test_owned_state_ablation_shows_a_penalty(self):
        result = run_owned_state_ablation(config=small_config(), iterations=2)
        rows = {(row[0], row[1]): row[2] for row in result.rows}
        assert rows[("split", "off")] >= rows[("split", "on")]


class TestRegistry:
    def test_every_table_and_figure_is_registered(self):
        names = list_experiments()
        for expected in ("table1", "table2", "table3", "fig5", "fig6", "fig7", "fig9", "fig10"):
            assert expected in names

    def test_get_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_registry_values_are_callable(self):
        assert all(callable(runner) for runner in EXPERIMENTS.values())

    def test_legacy_runner_attribute_matches_spec(self):
        assert get_experiment("fig6") is get_spec("fig6").runner
        assert run_fig6.spec is get_spec("fig6")

    def test_runner_formats_fast_experiments(self):
        results = run_experiments(["table1", "fig5"])
        text = format_results(results)
        assert "Table 1" in text and "Figure 5" in text

    def test_fast_experiments_are_analytical(self):
        assert set(FAST_EXPERIMENTS) == {"table1", "table2", "table3", "fig5"}

    def test_run_experiments_applies_applicable_overrides(self):
        results = run_experiments(["table1", "table3"], overrides={"hops": 2, "simulate": False})
        assert results[0].metadata.params["hops"] == 2
        assert results[1].metadata.params["hops"] == 2
