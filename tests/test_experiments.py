"""Tests for the experiment harness (tables/figures regeneration)."""

import pytest

from conftest import small_config

from repro.config import NIDesign, RoutingAlgorithm
from repro.errors import ExperimentError
from repro.experiments import (
    run_fig5,
    run_fig6,
    run_fig7,
    run_owned_state_ablation,
    run_routing_ablation,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.runner import format_results, run_experiments


class TestResultContainer:
    def test_add_row_and_format(self):
        result = ExperimentResult("X", "desc", headers=["a", "b"])
        result.add_row(1, 2.0)
        result.add_note("note text")
        text = result.format()
        assert "== X ==" in text and "note text" in text

    def test_column_extraction(self):
        result = ExperimentResult("X", "desc", headers=["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]
        with pytest.raises(ValueError):
            result.column("missing")


class TestAnalyticalExperiments:
    def test_table1_totals(self):
        result = run_table1()
        text = result.format()
        assert "710" in text and "395" in text and "79.7%" in text

    def test_table2_lists_parameters(self):
        text = run_table2().format()
        assert "MESI" in text and "3D torus" in text.replace("3d", "3D")

    def test_table3_rows_cover_all_designs(self):
        result = run_table3()
        designs = result.column("Design")
        assert set(designs) == {"edge", "per_tile", "split", "numa"}
        assert result.column("Analytical cycles") == [710, 445, 447, 395]

    def test_fig5_series_shapes(self):
        result = run_fig5()
        hops = result.column("Hops")
        assert hops[0] == 0 and hops[-1] == 12
        edge_overhead = result.column("NIedge overhead (%)")
        assert edge_overhead == sorted(edge_overhead, reverse=True)


class TestSimulatedExperiments:
    """Scaled-down runs of the simulator-backed experiments."""

    def test_fig6_small_sweep_preserves_design_ordering(self):
        result = run_fig6(config=small_config(), sizes=(64, 4096), iterations=2, warmup=1)
        sizes = result.column("Transfer (B)")
        assert sizes == [64, 4096]
        edge = result.column("NIedge (ns)")
        split = result.column("NIsplit (ns)")
        numa = result.column("NUMA projection (ns)")
        assert edge[0] > split[0] > numa[0]

    def test_fig7_small_sweep_runs(self):
        result = run_fig7(config=small_config(), sizes=(512,), warmup_cycles=500, measure_cycles=2000)
        assert len(result.rows) == 1
        for header in ("NIedge (GBps)", "NIsplit (GBps)", "NIper-tile (GBps)"):
            assert result.column(header)[0] > 0

    def test_table3_with_simulation_column(self):
        result = run_table3(config=small_config(), simulate=True, iterations=2)
        simulated = result.column("Simulated cycles")
        assert all(value > 0 for value in simulated)

    def test_routing_ablation_covers_requested_policies(self):
        result = run_routing_ablation(
            config=small_config(),
            transfer_bytes=512,
            policies=(RoutingAlgorithm.XY, RoutingAlgorithm.CDR_EXTENDED),
            warmup_cycles=500,
            measure_cycles=1500,
        )
        assert result.column("Routing") == ["xy", "cdr_extended"]
        assert all(value > 0 for value in result.column("Application (GBps)"))

    def test_owned_state_ablation_shows_a_penalty(self):
        result = run_owned_state_ablation(config=small_config(), iterations=2)
        rows = {(row[0], row[1]): row[2] for row in result.rows}
        assert rows[("split", "off")] >= rows[("split", "on")]


class TestRegistry:
    def test_every_table_and_figure_is_registered(self):
        names = list_experiments()
        for expected in ("table1", "table2", "table3", "fig5", "fig6", "fig7", "fig9", "fig10"):
            assert expected in names

    def test_get_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_registry_values_are_callable(self):
        assert all(callable(runner) for runner in EXPERIMENTS.values())

    def test_runner_formats_fast_experiments(self):
        results = run_experiments(["table1", "fig5"])
        text = format_results(results)
        assert "Table 1" in text and "Figure 5" in text
