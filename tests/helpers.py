"""Importable test helpers (kept outside conftest.py).

Test modules import :func:`small_config` from here rather than from
``conftest`` — pytest resolves bare ``conftest`` imports against whichever
conftest.py it imported first (e.g. ``benchmarks/conftest.py`` when both
directories are collected), so conftest must stay fixtures-only.
"""

from __future__ import annotations

import dataclasses

from repro.config import NIDesign, SystemConfig


def small_config(design: NIDesign = NIDesign.SPLIT, **overrides) -> SystemConfig:
    """A 16-core (4x4) configuration that keeps integration tests fast.

    All latency calibration constants are identical to the paper
    configuration; only the chip size shrinks.
    """
    base = SystemConfig.paper_defaults()
    config = base.replace(cores=dataclasses.replace(base.cores, count=16)).with_design(design)
    if overrides:
        config = config.replace(**overrides)
    return config
