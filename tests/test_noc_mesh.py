"""Tests for the mesh topology."""

import pytest

from repro.config import MessageClass, NocConfig, RoutingAlgorithm
from repro.errors import TopologyError
from repro.noc.mesh import MeshTopology


@pytest.fixture
def mesh() -> MeshTopology:
    return MeshTopology(8, NocConfig())


class TestStructure:
    def test_node_count(self, mesh):
        assert len(list(mesh.nodes())) == 64

    def test_tile_coordinate_round_trip(self, mesh):
        for tile_id in range(64):
            assert mesh.tile_id(mesh.tile_coord(tile_id)) == tile_id

    def test_tile_numbering_is_row_major(self, mesh):
        assert mesh.tile_coord(0) == (0, 0)
        assert mesh.tile_coord(7) == (7, 0)
        assert mesh.tile_coord(8) == (0, 1)
        assert mesh.tile_coord(63) == (7, 7)

    def test_out_of_range_tile_rejected(self, mesh):
        with pytest.raises(TopologyError):
            mesh.tile_coord(64)
        with pytest.raises(TopologyError):
            mesh.tile_id((8, 0))

    def test_edge_columns(self, mesh):
        assert mesh.ni_edge_column() == 0
        assert mesh.mc_edge_column() == 7
        assert mesh.edge_coord_for_row(3, 0) == (0, 3)
        assert mesh.edge_coord_for_row(3, 7) == (7, 3)
        with pytest.raises(TopologyError):
            mesh.edge_coord_for_row(3, 4)

    def test_invalid_side_rejected(self):
        with pytest.raises(TopologyError):
            MeshTopology(0, NocConfig())


class TestRoutingIntegration:
    def test_route_length_matches_manhattan_distance(self, mesh):
        links = mesh.route((0, 0), (5, 3), MessageClass.NI_DATA)
        assert len(links) == 8
        assert links[0].src == (0, 0)
        assert links[-1].dst == (5, 3)

    def test_hop_latency(self, mesh):
        assert mesh.min_latency_cycles((0, 0), (5, 3)) == 8 * 3

    def test_route_to_self_is_empty(self, mesh):
        assert list(mesh.route((2, 2), (2, 2), MessageClass.NI_DATA)) == []

    def test_route_rejects_foreign_nodes(self, mesh):
        with pytest.raises(TopologyError):
            mesh.route((0, 0), (9, 9), MessageClass.NI_DATA)

    def test_links_are_adjacent_router_pairs(self, mesh):
        for link in mesh.route((1, 6), (6, 1), MessageClass.NI_DATA):
            dx = abs(link.src[0] - link.dst[0])
            dy = abs(link.src[1] - link.dst[1])
            assert dx + dy == 1
            assert link.hop_cycles == 3

    def test_routing_policy_changes_path(self):
        xy_mesh = MeshTopology(8, NocConfig(routing=RoutingAlgorithm.XY))
        yx_mesh = MeshTopology(8, NocConfig(routing=RoutingAlgorithm.YX))
        xy_links = xy_mesh.route((0, 0), (3, 3), MessageClass.NI_DATA)
        yx_links = yx_mesh.route((0, 0), (3, 3), MessageClass.NI_DATA)
        assert [l.key for l in xy_links] != [l.key for l in yx_links]


class TestBisection:
    def test_bisection_link_count(self, mesh):
        links = mesh.bisection_links()
        # 8 rows x 2 directions.
        assert len(links) == 16
        for src, dst in links:
            assert {src[0], dst[0]} == {3, 4}
