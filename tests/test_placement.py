"""Tests for NI/MC/LLC placement on both topologies (§4.2, §4.3)."""

import pytest

from repro.config import NIDesign, SystemConfig, TopologyKind
from repro.core.placement import build_placement
from repro.errors import PlacementError


class TestMeshPlacement:
    @pytest.fixture
    def placement(self):
        return build_placement(SystemConfig.paper_defaults())

    def test_counts(self, placement):
        assert placement.tile_count == 64
        assert placement.llc_slice_count == 64
        assert len(placement.mc_nodes) == 8
        assert len(placement.rrpp_nodes) == 8
        assert len(placement.backend_nodes) == 8

    def test_nis_and_mcs_on_opposite_edges(self, placement):
        assert all(node[0] == 0 for node in placement.rrpp_nodes)
        assert all(node[0] == 0 for node in placement.backend_nodes)
        assert all(node[0] == 7 for node in placement.mc_nodes)

    def test_llc_slices_collocated_with_tiles(self, placement):
        assert placement.llc_nodes == placement.tile_nodes

    def test_backend_mapping_is_row_local(self, placement):
        for tile_id in range(64):
            row = tile_id // 8
            assert placement.backend_index_for_tile(tile_id) == row
            assert placement.backend_nodes[row][1] == row

    def test_network_port_is_the_row_edge(self, placement):
        assert placement.network_port_node((5, 3)) == (0, 3)
        assert placement.network_port_node((0, 6)) == (0, 6)

    def test_edge_ni_mapping_matches_backend_mapping(self, placement):
        for tile_id in range(0, 64, 7):
            assert placement.edge_ni_index_for_tile(tile_id) == placement.backend_index_for_tile(tile_id)

    def test_out_of_range_tile_rejected(self, placement):
        with pytest.raises(PlacementError):
            placement.backend_index_for_tile(64)

    def test_bad_port_query_rejected(self, placement):
        with pytest.raises(PlacementError):
            placement.network_port_node("not-a-node")


class TestNocOutPlacement:
    @pytest.fixture
    def placement(self):
        return build_placement(SystemConfig.noc_out_defaults())

    def test_counts(self, placement):
        assert placement.tile_count == 64
        assert placement.llc_slice_count == 8
        assert len(placement.backend_nodes) == 8

    def test_rrpps_live_on_llc_tiles(self, placement):
        assert set(placement.rrpp_nodes) <= set(placement.llc_nodes)

    def test_backend_mapping_is_column_local(self, placement):
        for tile_id in range(64):
            assert placement.backend_index_for_tile(tile_id) == tile_id % 8

    def test_network_port_is_the_column_llc_tile(self, placement):
        assert placement.network_port_node(("core", 3, 5)) == ("llc", 3)
        assert placement.network_port_node(("llc", 2)) == ("llc", 2)
        assert placement.network_port_node(("mc", 4)) == ("llc", 4)

    def test_kind_marker(self, placement):
        assert placement.kind is TopologyKind.NOC_OUT
