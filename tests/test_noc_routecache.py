"""Tests for the route cache and the fabric's channel-bound fast path.

The cache must be a pure memoization: for every routing algorithm, message
class and node pair, the cached route must be link-for-link identical to a
fresh :meth:`Topology.route` computation, and experiment outputs must not
change when the cache is bypassed.
"""

import dataclasses

import pytest

from repro.config import MessageClass, NocConfig, RoutingAlgorithm, SystemConfig
from repro.noc.fabric import NocFabric
from repro.noc.mesh import MeshTopology
from repro.noc.nocout import NocOutTopology
from repro.noc.topology import Topology
from repro.fabric.torus import Torus3D
from repro.sim.engine import Simulator

ALL_ALGORITHMS = list(RoutingAlgorithm)
ALL_CLASSES = list(MessageClass)


def mesh_with(algorithm, side):
    return MeshTopology(side, dataclasses.replace(NocConfig(), routing=algorithm))


class TestMeshRouteCacheEquivalence:
    @pytest.mark.parametrize("side", [4, 8])
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_cached_routes_identical_to_uncached(self, algorithm, side):
        topo = mesh_with(algorithm, side)
        # Deterministic algorithms ignore the packet id, O1Turn ignores the
        # message class; cover the axis each algorithm actually routes on.
        if algorithm is RoutingAlgorithm.O1TURN:
            sweeps = [(MessageClass.NI_DATA, packet_id) for packet_id in range(4)]
        else:
            sweeps = [(msg_class, 0) for msg_class in ALL_CLASSES]
        for msg_class, packet_id in sweeps:
            for src in topo.nodes():
                for dst in topo.nodes():
                    cached = topo.route_cached(src, dst, msg_class, packet_id)
                    fresh = tuple(topo.route(src, dst, msg_class, packet_id))
                    assert cached == fresh, (
                        "cache diverged for %s %s %s->%s pid=%d"
                        % (algorithm, msg_class, src, dst, packet_id)
                    )

    def test_cache_returns_same_tuple_object(self):
        topo = mesh_with(RoutingAlgorithm.CDR_EXTENDED, 4)
        first = topo.route_cached((0, 0), (3, 2), MessageClass.NI_DATA)
        second = topo.route_cached((0, 0), (3, 2), MessageClass.NI_DATA)
        assert first is second

    def test_class_direction_collapses_into_one_entry(self):
        # Under CDR_EXTENDED every non-directory class routes XY, so all of
        # them share one cache entry per node pair.
        topo = mesh_with(RoutingAlgorithm.CDR_EXTENDED, 4)
        xy_route = topo.route_cached((1, 1), (3, 2), MessageClass.NI_DATA)
        assert topo.route_cached((1, 1), (3, 2), MessageClass.MEMORY_REQUEST) is xy_route
        assert topo.route_cache_size() == 1
        topo.route_cached((1, 1), (3, 2), MessageClass.DIRECTORY_SOURCED)
        assert topo.route_cache_size() == 2

    def test_o1turn_caches_both_orientations(self):
        topo = mesh_with(RoutingAlgorithm.O1TURN, 8)
        seen_keys = set()
        for packet_id in range(64):
            seen_keys.add(topo.route_cache_key((1, 2), (6, 5), MessageClass.NI_DATA, packet_id))
        assert seen_keys == {((1, 2), (6, 5), "xy"), ((1, 2), (6, 5), "yx")}
        for packet_id in range(64):
            cached = topo.route_cached((1, 2), (6, 5), MessageClass.NI_DATA, packet_id)
            assert cached == tuple(topo.route((1, 2), (6, 5), MessageClass.NI_DATA, packet_id))
        assert topo.route_cache_size() == 2

    def test_clear_route_cache(self):
        topo = mesh_with(RoutingAlgorithm.XY, 4)
        topo.route_cached((0, 0), (3, 3), MessageClass.NI_DATA)
        assert topo.route_cache_size() == 1
        topo.clear_route_cache()
        assert topo.route_cache_size() == 0


class TestNocOutRouteCacheEquivalence:
    def test_cached_routes_identical_to_uncached(self):
        topo = NocOutTopology(columns=4, cores_per_column=4)
        nodes = list(topo.nodes())
        for msg_class in (MessageClass.NI_DATA, MessageClass.MEMORY_REQUEST):
            for src in nodes:
                for dst in nodes:
                    cached = topo.route_cached(src, dst, msg_class)
                    fresh = tuple(topo.route(src, dst, msg_class))
                    assert cached == fresh

    def test_routes_are_class_independent(self):
        topo = NocOutTopology(columns=4, cores_per_column=4)
        a = topo.route_cached(("core", 0, 1), ("mc", 3), MessageClass.NI_DATA)
        b = topo.route_cached(("core", 0, 1), ("mc", 3), MessageClass.MEMORY_RESPONSE)
        assert a is b


class TestTorusHopCache:
    def test_cached_hop_counts_match_fresh_computation(self):
        torus = Torus3D((4, 4, 4))
        for src in range(torus.node_count):
            for dst in range(torus.node_count):
                first = torus.hop_count(src, dst)
                again = torus.hop_count(src, dst)
                assert first == again
                sc, dc = torus.coord(src), torus.coord(dst)
                expected = sum(
                    min(abs(s - d), n - abs(s - d))
                    for s, d, n in zip(sc, dc, torus.dims)
                )
                assert first == expected


class TestFabricFastPath:
    def _drive(self, algorithm, disable_cache, packets=400):
        """Inject a deterministic packet mix; return observable fabric state."""
        config = SystemConfig.paper_defaults()
        noc = dataclasses.replace(config.noc, routing=algorithm)
        sim = Simulator()
        topo = mesh_with(algorithm, 8)
        if disable_cache:
            topo.route_cache_key = lambda *args, **kwargs: None
        fabric = NocFabric(sim, topo, noc)
        deliveries = []
        classes = list(MessageClass)
        for i in range(packets):
            src = topo.tile_coord(i % 64)
            dst = topo.tile_coord((i * 11 + 5) % 64)
            fabric.send(
                src, dst, 64 * (1 + i % 3), classes[i % len(classes)],
                callback=lambda pkt: deliveries.append(
                    (pkt.packet_id, pkt.src, pkt.dst, pkt.created_at, pkt.delivered_at)
                ),
            )
            if i % 16 == 15:
                sim.run()
        sim.run()
        return {
            "deliveries": deliveries,
            "wire_bytes": fabric.wire_bytes_sent,
            "bisection_bytes": fabric.bisection_bytes,
            "link_utilization": fabric.link_utilization(),
            "events": sim.events_executed,
            "now": sim.now,
        }

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_cached_and_uncached_fabric_behaviour_identical(self, algorithm):
        import repro.noc.packet as packet_module
        import itertools

        packet_module._packet_ids = itertools.count()
        cached = self._drive(algorithm, disable_cache=False)
        packet_module._packet_ids = itertools.count()
        uncached = self._drive(algorithm, disable_cache=True)
        assert cached == uncached

    def test_bound_routes_reused_across_packets(self):
        config = SystemConfig.paper_defaults()
        sim = Simulator()
        topo = mesh_with(RoutingAlgorithm.CDR_EXTENDED, 8)
        fabric = NocFabric(sim, topo, config.noc)
        for _ in range(10):
            fabric.send((0, 0), (7, 7), 64, MessageClass.NI_DATA)
            sim.run()
        assert len(fabric._bound_routes) == 1

    def test_base_topology_route_cache_key_is_none(self):
        class Custom(Topology):
            def nodes(self):
                return [(0,), (1,)]

            def route(self, src, dst, msg_class, packet_id=0):
                return []

        assert Custom().route_cache_key((0,), (1,), MessageClass.NI_DATA) is None


class TestRouteCacheInvalidation:
    def test_fabric_clear_drops_bound_and_topology_routes(self):
        config = SystemConfig.paper_defaults()
        sim = Simulator()
        topo = mesh_with(RoutingAlgorithm.CDR_EXTENDED, 8)
        fabric = NocFabric(sim, topo, config.noc)
        fabric.send((0, 0), (7, 7), 64, MessageClass.NI_DATA)
        sim.run()
        assert fabric._bound_routes and topo.route_cache_size() > 0
        fabric.clear_route_cache()
        assert not fabric._bound_routes
        assert topo.route_cache_size() == 0
        # The fabric must keep working after invalidation.
        fabric.send((0, 0), (7, 7), 64, MessageClass.NI_DATA)
        sim.run()
        assert fabric.packets_delivered == 2
