"""Tests for the analytical models (Tables 1/3, Figure 5, bandwidth bounds)."""

import pytest

from repro.analysis.bandwidth_model import BandwidthModel
from repro.analysis.breakdown import LatencyBreakdownModel
from repro.analysis.projection import HopProjection
from repro.analysis.report import format_table
from repro.config import NIDesign, SystemConfig
from repro.errors import ConfigurationError, ExperimentError


class TestBreakdown:
    def test_totals_match_table3(self):
        model = LatencyBreakdownModel()
        assert model.breakdown(NIDesign.EDGE).total_cycles == 710
        assert model.breakdown(NIDesign.PER_TILE).total_cycles == 445
        assert model.breakdown(NIDesign.SPLIT).total_cycles == 447
        assert model.breakdown(NIDesign.NUMA).total_cycles == 395

    def test_overheads_match_paper(self):
        model = LatencyBreakdownModel()
        assert 100 * model.overhead_over_numa(NIDesign.EDGE) == pytest.approx(79.7, abs=0.1)
        assert 100 * model.overhead_over_numa(NIDesign.PER_TILE) == pytest.approx(12.7, abs=0.1)
        assert 100 * model.overhead_over_numa(NIDesign.SPLIT) == pytest.approx(13.2, abs=0.1)

    def test_table1_view(self):
        table = LatencyBreakdownModel().table1()
        assert table["qp_based"].total_cycles == 710
        assert table["numa"].total_cycles == 395
        assert table["qp_based"].overhead_over(table["numa"]) == pytest.approx(0.797, abs=0.001)

    def test_all_breakdowns_cover_every_design(self):
        breakdowns = LatencyBreakdownModel().all_breakdowns()
        assert set(breakdowns) == set(NIDesign)

    def test_network_component_scales_with_hops(self):
        model = LatencyBreakdownModel()
        assert model.breakdown(NIDesign.SPLIT, hops=3).total_cycles == 447 + 2 * 140

    def test_negative_hops_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyBreakdownModel().breakdown(NIDesign.SPLIT, hops=-1)

    def test_as_dict_exposes_components(self):
        components = LatencyBreakdownModel().breakdown(NIDesign.SPLIT).as_dict()
        assert components["RRPP servicing"] == 208
        assert components["WQ write software overhead"] == 13


class TestProjection:
    def test_six_hop_overheads_match_paper(self):
        projection = HopProjection()
        point = projection.point(6)
        assert 100 * point.overhead_over_numa[NIDesign.EDGE] == pytest.approx(28.6, abs=0.5)
        assert 100 * point.overhead_over_numa[NIDesign.SPLIT] == pytest.approx(4.7, abs=0.3)

    def test_diameter_overheads_match_paper(self):
        point = HopProjection().point(12)
        assert 100 * point.overhead_over_numa[NIDesign.EDGE] == pytest.approx(16.2, abs=0.5)
        assert 100 * point.overhead_over_numa[NIDesign.SPLIT] == pytest.approx(2.6, abs=0.3)

    def test_sweep_covers_zero_to_diameter(self):
        points = HopProjection().sweep()
        assert points[0].hops == 0
        assert points[-1].hops == 12
        assert len(points) == 13

    def test_overhead_decreases_with_distance(self):
        projection = HopProjection()
        overheads = [projection.point(h).overhead_over_numa[NIDesign.EDGE] for h in range(1, 13)]
        assert overheads == sorted(overheads, reverse=True)

    def test_latency_is_monotonic_in_hops(self):
        projection = HopProjection()
        latencies = [projection.point(h).latency_ns[NIDesign.SPLIT] for h in range(13)]
        assert latencies == sorted(latencies)

    def test_torus_statistics(self):
        projection = HopProjection()
        assert projection.max_hops() == 12
        assert projection.average_hops() == pytest.approx(6.0)


class TestBandwidthModel:
    def test_bisection_limit_below_raw_bisection(self):
        model = BandwidthModel()
        assert model.bisection_limit_gbps() < SystemConfig.paper_defaults().noc_bisection_bandwidth_gbps
        assert model.bisection_limit_gbps() == pytest.approx(512 / 2.7, rel=0.01)

    def test_memory_never_binds(self):
        model = BandwidthModel()
        assert model.memory_limit_gbps() > model.bisection_limit_gbps()

    def test_edge_small_transfers_are_issue_limited(self):
        model = BandwidthModel()
        estimate = model.estimate(NIDesign.EDGE, 64)
        assert estimate.limiting_factor == "issue_rate"
        assert estimate.limit_gbps < model.bisection_limit_gbps()

    def test_edge_large_transfers_reach_the_bisection_limit(self):
        model = BandwidthModel()
        estimate = model.estimate(NIDesign.EDGE, 8192)
        assert estimate.limiting_factor == "bisection"

    def test_split_beats_edge_for_small_transfers(self):
        model = BandwidthModel()
        split = model.issue_rate_limit_gbps(NIDesign.SPLIT, 64)
        edge = model.issue_rate_limit_gbps(NIDesign.EDGE, 64)
        assert split > edge

    def test_per_tile_bound_is_below_the_bisection_for_bulk(self):
        model = BandwidthModel()
        per_tile = model.estimate(NIDesign.PER_TILE, 8192)
        edge = model.estimate(NIDesign.EDGE, 8192)
        assert per_tile.limit_gbps < edge.limit_gbps

    def test_invalid_inputs_rejected(self):
        model = BandwidthModel()
        with pytest.raises(ConfigurationError):
            model.issue_rate_limit_gbps(NIDesign.EDGE, 0)
        with pytest.raises(ConfigurationError):
            model.issue_rate_limit_gbps(NIDesign.NUMA, 64)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.5" in lines[2]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            format_table(["a"], [[1, 2]])
