#!/usr/bin/env python
"""Quickstart: analytical breakdowns plus one simulated remote read.

Reproduces in a few seconds the headline comparison of the paper: the
zero-load latency of a single-cache-block remote read under the three
manycore NI designs and the idealized NUMA baseline (Table 3), and then
cross-checks the NIsplit number with the discrete-event simulator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.breakdown import LatencyBreakdownModel
from repro.analysis.report import format_table
from repro.config import NIDesign, SystemConfig
from repro.workloads.microbench import RemoteReadLatencyBenchmark


def main() -> None:
    config = SystemConfig.paper_defaults()
    print("Modelled system (Table 2)")
    print("-" * 60)
    print(config.describe())
    print()

    # ------------------------------------------------------------------
    # Analytical zero-load breakdown (Table 3).
    # ------------------------------------------------------------------
    model = LatencyBreakdownModel(config)
    numa = model.breakdown(NIDesign.NUMA)
    rows = []
    for design in (NIDesign.EDGE, NIDesign.PER_TILE, NIDesign.SPLIT, NIDesign.NUMA):
        breakdown = model.breakdown(design, hops=1)
        overhead = 0.0 if design is NIDesign.NUMA else 100 * breakdown.overhead_over(numa)
        rows.append([design.value, breakdown.total_cycles,
                     breakdown.total_ns(config.cores.frequency_ghz), overhead])
    print("Zero-load single-block remote read, one rack hop (Table 3)")
    print(format_table(["design", "cycles", "ns", "overhead over NUMA (%)"], rows))
    print()

    # ------------------------------------------------------------------
    # Simulated cross-check for the paper's proposed design (NIsplit).
    # ------------------------------------------------------------------
    bench = RemoteReadLatencyBenchmark(config.with_design(NIDesign.SPLIT), iterations=5, warmup=2)
    result = bench.run(transfer_bytes=64)
    print("Simulated NIsplit 64-byte remote read: %.0f cycles (%.1f ns)"
          % (result.mean_cycles, result.mean_ns))
    print("Analytical NIsplit total           : %d cycles"
          % model.breakdown(NIDesign.SPLIT).total_cycles)


if __name__ == "__main__":
    main()
