#!/usr/bin/env python
"""Design-space sweep: latency and bandwidth of the three NI designs.

A scaled-down version of the paper's Figures 6 and 7: synchronous
remote-read latency and asynchronous application bandwidth for NIedge,
NIper-tile and NIsplit over a few transfer sizes on the mesh NOC.  Takes a
couple of minutes; shrink the size lists or the measurement window to make
it faster.

Run with::

    python examples/design_space_sweep.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.config import NIDesign, SystemConfig
from repro.workloads.microbench import (
    RemoteReadBandwidthBenchmark,
    RemoteReadLatencyBenchmark,
)

LATENCY_SIZES = (64, 1024, 8192)
BANDWIDTH_SIZES = (64, 1024, 4096)
DESIGNS = (NIDesign.EDGE, NIDesign.SPLIT, NIDesign.PER_TILE)


def latency_sweep(config: SystemConfig) -> None:
    rows = []
    results = {}
    for design in DESIGNS:
        bench = RemoteReadLatencyBenchmark(config.with_design(design), iterations=4, warmup=1)
        for size in LATENCY_SIZES:
            results[(design, size)] = bench.run(size).mean_ns
    for size in LATENCY_SIZES:
        rows.append([size] + [results[(design, size)] for design in DESIGNS])
    print("Synchronous remote-read latency (ns), one rack hop  [cf. Fig. 6]")
    print(format_table(["transfer (B)", "NIedge", "NIsplit", "NIper-tile"], rows))
    print()


def bandwidth_sweep(config: SystemConfig) -> None:
    rows = []
    results = {}
    for design in DESIGNS:
        bench = RemoteReadBandwidthBenchmark(
            config.with_design(design), warmup_cycles=3_000, measure_cycles=8_000
        )
        for size in BANDWIDTH_SIZES:
            results[(design, size)] = bench.run(size).application_gbps
    for size in BANDWIDTH_SIZES:
        rows.append([size] + [results[(design, size)] for design in DESIGNS])
    print("Aggregate application bandwidth (GBps), 64 cores  [cf. Fig. 7]")
    print(format_table(["transfer (B)", "NIedge", "NIsplit", "NIper-tile"], rows))
    print()


def main() -> None:
    config = SystemConfig.paper_defaults()
    latency_sweep(config)
    bandwidth_sweep(config)
    print("Expected shape (paper §6): NIedge pays a large constant latency penalty;")
    print("NIsplit matches NIper-tile latency and NIedge bandwidth; NIper-tile loses")
    print("bandwidth for bulk transfers because it unrolls at the source tile.")


if __name__ == "__main__":
    main()
