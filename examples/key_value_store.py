#!/usr/bin/env python
"""Partitioned key-value store GETs over one-sided remote reads.

The paper's introduction motivates rack-scale remote memory with distributed
key-value stores whose objects are a few hundred bytes (§2.1).  This example
runs the GET workload of :mod:`repro.workloads.kvstore` for two object sizes
under the NIedge and NIsplit designs and reports throughput, mean latency and
the fraction of GETs that had to cross the rack.

Run with::

    python examples/key_value_store.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.config import NIDesign, SystemConfig
from repro.workloads.kvstore import KeyValueStoreWorkload

VALUE_SIZES = (128, 512)
DESIGNS = (NIDesign.EDGE, NIDesign.SPLIT)


def main() -> None:
    config = SystemConfig.paper_defaults()
    rows = []
    for value_bytes in VALUE_SIZES:
        for design in DESIGNS:
            workload = KeyValueStoreWorkload(
                config.with_design(design),
                value_bytes=value_bytes,
                active_cores=8,
                gets_per_core=16,
                rack_nodes=64,
            )
            result = workload.run()
            rows.append([
                value_bytes,
                design.value,
                result.remote_gets,
                100.0 * result.remote_fraction,
                result.mean_latency_ns,
                result.throughput_mops,
            ])
    print("Key-value store GETs from the simulated node (8 cores active)")
    print(format_table(
        ["value (B)", "NI design", "remote GETs", "remote (%)", "mean latency (ns)", "MOPS"],
        rows,
    ))
    print()
    print("Fine-grained GETs are dominated by the QP interactions, so the split")
    print("design's local WQ/CQ handling shows up directly in the GET latency.")


if __name__ == "__main__":
    main()
