#!/usr/bin/env python
"""Distributed graph traversal over one-sided remote reads.

Graph analytics is the paper's second motivating application class (§1):
vertices are hash-partitioned across the rack and visiting a remote vertex
pulls its whole adjacency list with a single one-sided read, which the RGP
unrolls into cache-block requests in hardware.  This example traverses a
synthetic power-law graph under the NIsplit and NIper-tile designs and
reports edge throughput and fetch bandwidth — the regime where backend
placement (edge vs per-tile) matters most.

Run with::

    python examples/graph_traversal.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.config import NIDesign, SystemConfig
from repro.workloads.graphproc import GraphTraversalWorkload, SyntheticPowerLawGraph

DESIGNS = (NIDesign.SPLIT, NIDesign.PER_TILE)


def main() -> None:
    config = SystemConfig.paper_defaults()
    graph = SyntheticPowerLawGraph(vertices=4096, edges_per_vertex=12, seed=3)
    rows = []
    for design in DESIGNS:
        workload = GraphTraversalWorkload(
            config.with_design(design),
            graph=graph,
            rack_nodes=64,
            active_cores=4,
            max_vertices=120,
        )
        result = workload.run()
        rows.append([
            design.value,
            result.vertices_visited,
            result.remote_vertex_fetches,
            result.edges_traversed,
            result.bytes_fetched // 1024,
            result.edges_per_microsecond,
            result.fetch_bandwidth_gbps,
        ])
    print("Bounded BFS over a hash-partitioned power-law graph (4 cores active)")
    print(format_table(
        ["NI design", "vertices", "remote fetches", "edges", "KiB fetched",
         "edges/us", "fetch GBps"],
        rows,
    ))
    print()
    print("Adjacency lists span multiple cache blocks, so the per-tile design's")
    print("source-tile unrolling costs it bandwidth relative to the split design.")


if __name__ == "__main__":
    main()
