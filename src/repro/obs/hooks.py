"""Process-local observability hooks.

The obs analogue of :mod:`repro.sim.perf`'s session stack: the simulation
kernel calls :func:`register_simulator` from every ``Simulator.__init__``, so
this module must import nothing and cost a single truthiness check when no
session is open.  The heavyweight pieces (probes, streams, samplers) live in
their own modules and are only imported once a session is actually active.
"""

from __future__ import annotations

from typing import Any, List, Optional

#: Innermost-last stack of active :class:`repro.obs.session.ObsSession`
#: objects for this process.  Plain module state (not thread-local): the
#: simulator itself is single-threaded, and campaign workers are separate
#: processes that each open their own session.
_ACTIVE: List[Any] = []


def active() -> Optional[Any]:
    """The innermost active session, or ``None`` when obs is disabled."""
    return _ACTIVE[-1] if _ACTIVE else None


def push(session: Any) -> None:
    """Activate *session* (innermost wins); pair with :func:`pop`."""
    _ACTIVE.append(session)


def pop(session: Any) -> None:
    """Deactivate *session* (tolerates out-of-order exits)."""
    if session in _ACTIVE:
        _ACTIVE.remove(session)


def register_simulator(sim: Any) -> Optional[int]:
    """Hand *sim* its deterministic per-session index (``None`` when idle).

    Indices restart at zero whenever the session's run label changes, so the
    n-th simulator built by a given experiment run always reports the same
    ``sim`` field in its stream records regardless of what ran before it.
    """
    if not _ACTIVE:
        return None
    return _ACTIVE[-1].register_simulator(sim)
