"""Render a ``repro-obs-stream/1`` stream as a terminal summary.

Backs the ``repro-experiments watch`` subcommand: reads (or, with
``--follow``, tails) a stream file, folds records into a
:class:`WatchState`, and renders per-entry status, rolling p99, and sim-time
throughput rates.  Deliberately wall-clock free on the data path — every
number shown is derived from sim time (``t``) or record counts; the only use
of the host clock is the ``--follow`` poll sleep, which never touches the
rendered values.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, IO, List, Optional

from repro.obs.stream import validate_record


class WatchState:
    """Accumulates stream records into a renderable summary."""

    __slots__ = ("entries", "runs", "explore", "records", "invalid")

    def __init__(self) -> None:
        #: Campaign entries by index: label, fingerprint, status, error.
        self.entries: Dict[int, Dict[str, Any]] = {}
        #: Per-run rollups keyed by run label (config fingerprint).
        self.runs: Dict[str, Dict[str, Any]] = {}
        #: Exploration progress counters.
        self.explore: Dict[str, int] = {"rounds": 0, "points": 0}
        self.records = 0
        self.invalid: List[str] = []

    def feed_line(self, line: str, check: bool = False) -> None:
        """Parse and fold one stream line; record problems in ``invalid``."""
        try:
            record = json.loads(line)
        except ValueError as exc:
            self.invalid.append("invalid JSON: %s" % exc)
            return
        if check:
            problems = validate_record(record)
            if problems:
                self.invalid.extend(problems)
                return
        self.feed(record)

    def feed(self, record: Dict[str, Any]) -> None:
        self.records += 1
        event = record.get("event")
        if event in ("entry_started", "entry_cached"):
            entry = self.entries.setdefault(int(record.get("index", -1)), {})
            entry["label"] = record.get("entry", "")
            entry["fingerprint"] = record.get("fingerprint", "")
            entry["status"] = "cached" if event == "entry_cached" else "running"
        elif event == "entry_finished":
            entry = self.entries.setdefault(int(record.get("index", -1)), {})
            entry.setdefault("fingerprint", record.get("fingerprint", ""))
            entry["status"] = "ok" if record.get("ok") else "failed"
            if record.get("error"):
                entry["error"] = record["error"]
        elif event == "sample":
            self._feed_sample(record)
        elif event == "explore_round":
            self.explore["rounds"] += 1
        elif event == "explore_point":
            self.explore["points"] += 1

    def _feed_sample(self, record: Dict[str, Any]) -> None:
        run = self.runs.setdefault(
            str(record.get("run", "")),
            {
                "samples": 0,
                "t": 0.0,
                "p99": None,
                "events": 0,
                "packets": 0,
                "pk_per_kcycle": None,
                "queued": None,
                "_last_throughput": None,
            },
        )
        run["samples"] += 1
        t = record.get("t", 0.0)
        if isinstance(t, (int, float)) and t > run["t"]:
            run["t"] = float(t)
        probe = record.get("probe")
        data = record.get("data") or {}
        if probe == "rolling_tails":
            run["p99"] = data.get("p99")
        elif probe == "throughput":
            run["events"] = data.get("events", 0)
            packets = data.get("packets", 0)
            run["packets"] = packets
            last = run["_last_throughput"]
            if last is not None and isinstance(t, (int, float)) and t > last[0]:
                run["pk_per_kcycle"] = (packets - last[1]) / (t - last[0]) * 1000.0
            if isinstance(t, (int, float)):
                run["_last_throughput"] = (t, packets)
        elif probe == "queue_depth":
            run["queued"] = data.get("queued")


def _format_value(value: Any, fmt: str = "%.1f") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return fmt % value
    return str(value)


def render(state: WatchState) -> str:
    """Multi-line text summary of everything fed so far."""
    lines = ["repro-obs-stream/1: %d record(s)" % state.records]
    if state.entries:
        lines.append("entries:")
        for index in sorted(state.entries):
            entry = state.entries[index]
            line = "  [%d] %-7s %s %s" % (
                index,
                entry.get("status", "?"),
                entry.get("fingerprint", ""),
                entry.get("label", ""),
            )
            lines.append(line.rstrip())
            if entry.get("error"):
                lines.append("      error: %s" % entry["error"])
    if state.runs:
        lines.append("runs:")
        for label in sorted(state.runs):
            run = state.runs[label]
            lines.append(
                "  %s t=%s samples=%d p99=%s pk/kcycle=%s queued=%s"
                % (
                    label or "(unlabelled)",
                    _format_value(run["t"], "%.0f"),
                    run["samples"],
                    _format_value(run["p99"]),
                    _format_value(run["pk_per_kcycle"]),
                    _format_value(run["queued"], "%d"),
                )
            )
    if state.explore["rounds"] or state.explore["points"]:
        lines.append(
            "explore: %d round(s), %d point(s) evaluated"
            % (state.explore["rounds"], state.explore["points"])
        )
    if state.invalid:
        lines.append("INVALID records: %d" % len(state.invalid))
        for problem in state.invalid[:10]:
            lines.append("  - %s" % problem)
    return "\n".join(lines)


def watch_command(
    path: str,
    follow: bool = False,
    check: bool = False,
    interval_s: float = 1.0,
    out: Optional[IO[str]] = None,
) -> int:
    """Read (or tail) *path* and print a summary; exit 1 on invalid records."""
    destination = sys.stdout if out is None else out
    state = WatchState()
    with open(path, "r", encoding="utf-8") as handle:
        try:
            while True:
                line = handle.readline()
                if line:
                    if line.strip():
                        state.feed_line(line, check=check)
                    continue
                if not follow:
                    break
                destination.write(render(state) + "\n\n")
                destination.flush()
                time.sleep(interval_s)
        except KeyboardInterrupt:
            pass
    destination.write(render(state) + "\n")
    return 1 if state.invalid else 0
