"""Sim-time cadence sampling: the bridge from a session to its probes.

A :class:`Sampler` ticks on a simulator's own event queue via the
allocation-free ``schedule_fast`` path, bounded by an explicit *horizon*: the
tick at or before the horizon is the last one scheduled, so attaching a
sampler never keeps an otherwise-drained simulator alive (``Simulator.run()``
with no ``until`` must still terminate).  Hosts that drive time in batches
with drain-to-quiescence runs (the benchmark harness) skip :meth:`install`
and call :meth:`sample_now` between batches instead.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.probes import ProbeContext


class Sampler:
    """Samples a session's probes against one simulator at a fixed cadence."""

    __slots__ = ("session", "sim", "context", "horizon", "cadence", "probes", "sim_index")

    def __init__(self, session: Any, sim: Any, context: ProbeContext, horizon: float) -> None:
        self.session = session
        self.sim = sim
        self.context = context
        self.horizon = float(horizon)
        self.cadence = session.sample_cycles
        self.probes = session.build_probes()
        index = getattr(sim, "_obs_index", None)
        self.sim_index = session.register_simulator(sim) if index is None else index

    def install(self) -> None:
        """Schedule the first tick (no-op when the horizon is too close)."""
        if self.sim.now + self.cadence <= self.horizon:
            self.sim.schedule_fast(self.cadence, self._tick)

    def sample_now(self) -> None:
        """Sample every probe at the current sim time (no rescheduling)."""
        now = self.sim.now
        emit = self.session.emit_sample
        for probe in self.probes:
            data = probe.sample(self.context)
            if data is not None:
                emit(probe.name, self.sim_index, now, data)

    def _tick(self) -> None:
        self.sample_now()
        if self.sim.now + self.cadence <= self.horizon:
            self.sim.schedule_fast(self.cadence, self._tick)


def attach_driver_sampler(session: Any, driver: Any) -> Sampler:
    """Attach probes to an :class:`~repro.load.driver.OpenLoopDriver` run.

    Called from ``OpenLoopDriver.run()`` once per run, after fault
    installation and before the warm-up window, with the run horizon known
    (warm-up + measurement cycles).  On fault-free runs where the
    ``rolling_tails`` probe is selected, installs a ``WindowedTails`` at the
    probe's window so rolling tails are observable without an injector —
    recording into it is pure bookkeeping and never feeds back into the
    simulation, preserving obs-off byte-identity.
    """
    from repro.faults.metrics import WindowedTails

    sim = driver.machine.sim
    horizon = sim.now + driver.warmup_cycles + driver.measure_cycles
    context = ProbeContext(
        sim=sim,
        fabric=driver.machine.fabric,
        driver=driver,
        states=driver._states,
        tails=None,
        fault_state=driver._fault_state,
    )
    sampler = Sampler(session, sim, context, horizon)
    for probe in sampler.probes:
        if probe.name == "rolling_tails" and driver._window_tails is None:
            driver._window_tails = WindowedTails(probe.window_cycles)
    context.tails = driver._window_tails
    sampler.install()
    return sampler
