"""The ``repro-obs-stream/1`` JSONL channel.

Every record is one line of compact sorted-key JSON stamped with the schema
tag.  Records are **sim-time-stamped only**: the validator recursively rejects
wall-clock-looking keys anywhere in a record, which is what lets two seeded
runs (or the same run split across ``--parallel`` workers) produce identical
*sorted* streams — record contents are deterministic, only the interleaving
of independent writers varies.

Writers append; regular files are truncated once when the parent opens the
stream (:meth:`ObsStream.open`) and then shared in append mode with worker
processes (:meth:`ObsStream.attach`), whose line-sized ``O_APPEND`` writes do
not interleave mid-record on POSIX.  FIFOs are never truncated.
"""

from __future__ import annotations

import json
import os
import stat
from typing import Any, Dict, IO, List, Mapping, Optional, Tuple

from repro.errors import ObsError

#: Schema tag stamped on (and required of) every stream record.
STREAM_SCHEMA = "repro-obs-stream/1"

#: Required fields per event type (beyond ``schema`` and ``event``).
EVENT_FIELDS: Mapping[str, Tuple[str, ...]] = {
    "sample": ("run", "sim", "t", "probe", "data"),
    "entry_started": ("index", "entry", "fingerprint"),
    "entry_cached": ("index", "entry", "fingerprint"),
    "entry_finished": ("index", "fingerprint", "ok"),
    "explore_round": ("round", "proposed", "evaluated"),
    "explore_point": ("index", "fingerprint", "objectives"),
}

#: Key names that smell like wall clocks; banned anywhere in a record so the
#: stream stays reproducible (sim time is the only clock, carried in ``t``).
WALL_CLOCK_KEYS = frozenset(
    {
        "created_at",
        "date",
        "datetime",
        "elapsed_s",
        "time",
        "timestamp",
        "wall_clock",
        "wall_s",
        "wall_time_s",
        "walltime",
    }
)


def _scan_wall_keys(value: Any, problems: List[str], prefix: str = "") -> None:
    if isinstance(value, Mapping):
        for key in sorted(value, key=str):
            dotted = "%s.%s" % (prefix, key) if prefix else str(key)
            if str(key) in WALL_CLOCK_KEYS:
                problems.append("wall-clock key %r is banned from the stream" % dotted)
            _scan_wall_keys(value[key], problems, dotted)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _scan_wall_keys(item, problems, "%s[%d]" % (prefix, index))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_record(record: Any) -> List[str]:
    """All the ways *record* fails the ``repro-obs-stream/1`` contract."""
    if not isinstance(record, Mapping):
        return ["record is not a JSON object"]
    problems: List[str] = []
    if record.get("schema") != STREAM_SCHEMA:
        problems.append(
            "schema is %r, expected %r" % (record.get("schema"), STREAM_SCHEMA)
        )
    event = record.get("event")
    if event not in EVENT_FIELDS:
        problems.append(
            "unknown event %r (known: %s)" % (event, ", ".join(sorted(EVENT_FIELDS)))
        )
    else:
        for field in EVENT_FIELDS[event]:
            if field not in record:
                problems.append("event %r is missing field %r" % (event, field))
        if event == "sample":
            if "t" in record and not _is_number(record["t"]):
                problems.append("sample field 't' must be sim time (a number)")
            if "sim" in record and not isinstance(record["sim"], int):
                problems.append("sample field 'sim' must be an integer index")
            if "probe" in record and not isinstance(record["probe"], str):
                problems.append("sample field 'probe' must be a string")
            if "data" in record and not isinstance(record["data"], Mapping):
                problems.append("sample field 'data' must be an object")
        elif event == "entry_finished":
            if "ok" in record and not isinstance(record["ok"], bool):
                problems.append("entry_finished field 'ok' must be a boolean")
        elif event in ("entry_started", "entry_cached", "explore_point"):
            if "index" in record and not isinstance(record["index"], int):
                problems.append("%s field 'index' must be an integer" % event)
    _scan_wall_keys(record, problems)
    return problems


def read_stream(path: str) -> List[Dict[str, Any]]:
    """Parse a stream file into records; raise :class:`ObsError` on bad JSON."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ObsError("%s:%d: invalid JSON: %s" % (path, number, exc))
    return records


class ObsStream:
    """Line-buffered JSONL sink over a file handle, path, or FIFO.

    Every :meth:`emit` stamps the schema tag, validates the record against
    the contract above (so a malformed probe payload fails loudly instead of
    poisoning the stream), and writes one compact sorted-key line.
    """

    __slots__ = ("path", "records", "_handle", "_owns")

    def __init__(self, handle: IO[str], path: Optional[str] = None, owns: bool = False) -> None:
        self._handle = handle
        self.path = path
        self._owns = owns
        #: Records written through this sink (not the whole file's count).
        self.records = 0

    @classmethod
    def open(cls, path: str) -> "ObsStream":
        """Open *path* as the primary sink: truncate regular files, never FIFOs."""
        try:
            is_fifo = stat.S_ISFIFO(os.stat(path).st_mode)
        except OSError:
            is_fifo = False
        if not is_fifo:
            with open(path, "w", encoding="utf-8"):
                pass
        return cls(open(path, "a", encoding="utf-8"), path=path, owns=True)

    @classmethod
    def attach(cls, path: str) -> "ObsStream":
        """Open *path* append-only without truncating (worker processes)."""
        return cls(open(path, "a", encoding="utf-8"), path=path, owns=True)

    def emit(self, record: Mapping[str, Any]) -> None:
        """Validate and write one record (``schema`` is stamped here)."""
        document: Dict[str, Any] = {"schema": STREAM_SCHEMA}
        document.update(record)
        problems = validate_record(document)
        if problems:
            raise ObsError(
                "refusing to emit invalid stream record: %s" % "; ".join(problems)
            )
        line = json.dumps(document, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        self.records += 1

    def close(self) -> None:
        """Close the underlying handle if this stream opened it."""
        if self._owns:
            self._handle.close()
