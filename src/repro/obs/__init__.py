"""repro.obs: live telemetry for long-running simulations.

The observability subsystem — the eighth component registry — samples
registered **telemetry probes** (``@register_probe``) at a sim-time cadence
and streams schema'd JSONL records (``repro-obs-stream/1``) to a file or
FIFO, alongside campaign progress events (entry started/cached/finished) and
rolling objective values during design-space exploration.  The
``repro-experiments watch`` subcommand tails a stream and renders a live
summary.

The contract mirrors every prior subsystem's: **obs disabled ⇒ byte-identical
figures and fingerprints** (the kernel hook is one truthiness check in
:mod:`repro.obs.hooks`); **obs enabled ⇒ deterministic stream contents**
(modulo writer interleaving) for a fixed seed — records carry sim time only,
never wall clocks.

This package root stays import-light because ``repro.sim.engine`` imports
:mod:`repro.obs.hooks`; sessions, probes, samplers, and the watch renderer
are imported lazily where used.
"""

from __future__ import annotations

from repro.obs.hooks import active
from repro.obs.stream import STREAM_SCHEMA, ObsStream, read_stream, validate_record

__all__ = [
    "STREAM_SCHEMA",
    "ObsSession",
    "ObsStream",
    "active",
    "read_stream",
    "validate_record",
]


def __getattr__(name: str):
    if name == "ObsSession":
        from repro.obs.session import ObsSession

        return ObsSession
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
