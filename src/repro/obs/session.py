"""One telemetry session: a sink plus probe/cadence configuration.

A session owns an :class:`~repro.obs.stream.ObsStream` and the names of the
probes to sample.  Activating it (:meth:`ObsSession.activate`) pushes it on
the process-local :mod:`repro.obs.hooks` stack; while active, simulators
self-register for deterministic ``sim`` indices and the load driver attaches
a :class:`~repro.obs.sampler.Sampler`.  Campaign pool workers rebuild an
equivalent session in their own process from :meth:`worker_spec`, appending
to the same stream path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import ObsError
from repro.obs import hooks
from repro.obs.stream import ObsStream
from repro.scenario.registry import PROBES

#: Default sim-time sampling cadence (cycles between probe ticks).
DEFAULT_SAMPLE_CYCLES = 500.0


class ObsSession:
    """Live telemetry configuration threaded through campaign/explore runs."""

    __slots__ = ("stream", "probe_names", "sample_cycles", "run_label", "_sim_count")

    def __init__(
        self,
        stream: ObsStream,
        probes: Optional[Sequence[str]] = None,
        sample_cycles: Optional[float] = None,
    ) -> None:
        self.stream = stream
        if probes is None:
            self.probe_names: List[str] = PROBES.names()
        else:
            self.probe_names = [PROBES.resolve(name) for name in probes]
        cadence = DEFAULT_SAMPLE_CYCLES if sample_cycles is None else float(sample_cycles)
        if cadence <= 0:
            raise ObsError("sample cadence must be positive (got %g)" % cadence)
        self.sample_cycles = cadence
        #: Current run identity stamped on sample records (a campaign sets
        #: this to the entry's config fingerprint; standalone spec runs fall
        #: back to the spec name).
        self.run_label = ""
        self._sim_count = 0

    # -- hook targets ---------------------------------------------------

    def set_run(self, label: str) -> None:
        """Start a new run: stamp *label* and restart simulator indices."""
        self.run_label = str(label)
        self._sim_count = 0

    def register_simulator(self, sim: Any) -> int:
        """Deterministic 0-based index of the next simulator in this run."""
        index = self._sim_count
        self._sim_count += 1
        return index

    # -- probes ---------------------------------------------------------

    def build_probes(self) -> List[Any]:
        """Fresh default-parameter instances of the configured probes."""
        return [PROBES.get(name).from_params() for name in self.probe_names]

    # -- emission -------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> None:
        """Write one validated event record to the sink."""
        record: Dict[str, Any] = {"event": event}
        record.update(fields)
        self.stream.emit(record)

    def emit_sample(self, probe: str, sim_index: int, t: float, data: Dict[str, Any]) -> None:
        """Write one probe sample stamped with the current run label."""
        self.emit("sample", run=self.run_label, sim=sim_index, t=t, probe=probe, data=data)

    # -- lifecycle ------------------------------------------------------

    @contextmanager
    def activate(self, run: Optional[str] = None) -> Iterator["ObsSession"]:
        """Make this the innermost active session for the ``with`` body."""
        if run is not None:
            self.set_run(run)
        hooks.push(self)
        try:
            yield self
        finally:
            hooks.pop(self)

    def close(self) -> None:
        self.stream.close()

    # -- process boundary -----------------------------------------------

    def worker_spec(self) -> Optional[Dict[str, Any]]:
        """Picklable config for pool workers (``None`` for pathless sinks)."""
        if self.stream.path is None:
            return None
        return {
            "path": self.stream.path,
            "probes": list(self.probe_names),
            "sample_cycles": self.sample_cycles,
        }

    @classmethod
    def from_worker_spec(cls, spec: Dict[str, Any]) -> "ObsSession":
        """Rebuild a session in a worker, appending to the shared stream."""
        return cls(
            ObsStream.attach(spec["path"]),
            probes=spec["probes"],
            sample_cycles=spec["sample_cycles"],
        )
