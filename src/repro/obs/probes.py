"""Built-in telemetry probes — the eighth component registry.

A probe turns one aspect of a live run into a JSON-native payload sampled at
a sim-time cadence by :class:`repro.obs.sampler.Sampler`.  The probe contract
(statically enforced by lint rule REP008) is deliberately strict because
probes execute inside the event loop of the very simulation they report on:

* a probe **reads** the run through :class:`ProbeContext` and never writes
  it — no attribute assignment whose target is rooted anywhere but ``self``
  (that would silently perturb the run and break the obs-disabled
  byte-identity contract);
* every probe class declares ``__slots__`` so per-tick sampling allocates no
  per-instance ``__dict__``;
* :meth:`TelemetryProbe.sample` returns ``None`` when its source is absent
  (e.g. ``queue_depth`` outside an open-loop run), never a partial payload.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.errors import ObsError
from repro.scenario.registry import register_probe


class ProbeContext:
    """Read-only views of a run handed to every probe at each tick.

    Fields default to ``None``; a sampler fills in what its host exposes
    (the load driver provides everything, the benchmark harness only
    ``sim`` + ``fabric``) and probes skip sampling when their source is
    missing.
    """

    __slots__ = ("sim", "fabric", "driver", "states", "tails", "fault_state")

    def __init__(
        self,
        sim: Any = None,
        fabric: Any = None,
        driver: Any = None,
        states: Any = None,
        tails: Any = None,
        fault_state: Any = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.driver = driver
        self.states = states
        self.tails = tails
        self.fault_state = fault_state


class TelemetryProbe:
    """Base class for telemetry probes (see the module docstring contract)."""

    __slots__ = ()

    #: Registry name; set by subclasses to match their ``@register_probe``.
    name: str = ""
    #: Constructor parameters with defaults (the ``from_params`` contract).
    param_defaults: Mapping[str, object] = {}

    @classmethod
    def validate_params(cls, params: Mapping[str, object]) -> None:
        """Reject parameter names the probe does not declare."""
        unknown = sorted(set(params) - set(cls.param_defaults))
        if unknown:
            raise ObsError(
                "unknown parameter(s) %s for probe %r (known: %s)"
                % (
                    ", ".join(repr(name) for name in unknown),
                    cls.name,
                    ", ".join(sorted(cls.param_defaults)) or "none",
                )
            )

    @classmethod
    def from_params(cls, **params: object) -> "TelemetryProbe":
        """Build the probe from registry-style keyword parameters."""
        cls.validate_params(params)
        merged = dict(cls.param_defaults)
        merged.update(params)
        return cls(**merged)  # type: ignore[arg-type]

    def sample(self, ctx: ProbeContext) -> Optional[Dict[str, object]]:
        """One JSON-native payload at the current sim time (``None`` = skip)."""
        raise NotImplementedError


@register_probe("rolling_tails")
class RollingTailsProbe(TelemetryProbe):
    """Latest closed-or-open window's p50/p99 completion latency.

    Reads the driver's :class:`~repro.faults.metrics.WindowedTails`; on
    fault-free runs the sampler installs one at this probe's
    ``window_cycles`` so rolling tails are observable without an injector.
    """

    __slots__ = ("window_cycles",)

    name = "rolling_tails"
    param_defaults: Mapping[str, object] = {"window_cycles": 500.0}

    def __init__(self, window_cycles: float = 500.0) -> None:
        if window_cycles <= 0:
            raise ObsError("rolling_tails window_cycles must be positive")
        self.window_cycles = float(window_cycles)

    def sample(self, ctx: ProbeContext) -> Optional[Dict[str, object]]:
        tails = ctx.tails
        if tails is None:
            return None
        p99_rows = tails.window_percentiles(99.0)
        if not p99_rows:
            return None
        p50_by_start = {row[0]: row[2] for row in tails.window_percentiles(50.0)}
        window_start, count, p99 = p99_rows[-1]
        return {
            "window_start": window_start,
            "count": count,
            "p50": p50_by_start.get(window_start, 0.0),
            "p99": p99,
            "windows": len(p99_rows),
        }


@register_probe("throughput")
class ThroughputProbe(TelemetryProbe):
    """Cumulative and per-tick-delta event/packet counts (sim-time based).

    Wall-clock rates are banned from the stream; consumers derive sim-time
    rates (e.g. packets per kilocycle) from ``t`` deltas between samples.
    ``packets`` (the fabric's lifetime perf counter) advances live;
    ``events`` is folded in at run-window boundaries by the kernel's hot
    loop, so its deltas step once per warm-up/measurement window.
    """

    __slots__ = ("_last_events", "_last_packets")

    name = "throughput"
    param_defaults: Mapping[str, object] = {}

    def __init__(self) -> None:
        self._last_events = 0
        self._last_packets = 0

    def sample(self, ctx: ProbeContext) -> Optional[Dict[str, object]]:
        sim = ctx.sim
        if sim is None:
            return None
        events = sim.events_executed
        fabric = ctx.fabric
        packets = fabric.lifetime_packets_sent if fabric is not None else 0
        data = {
            "events": events,
            "packets": packets,
            "delta_events": events - self._last_events,
            "delta_packets": packets - self._last_packets,
        }
        self._last_events = events
        self._last_packets = packets
        return data


@register_probe("queue_depth")
class QueueDepthProbe(TelemetryProbe):
    """Open-loop queue occupancy and drop counters, summed over tenants."""

    __slots__ = ()

    name = "queue_depth"
    param_defaults: Mapping[str, object] = {}

    def sample(self, ctx: ProbeContext) -> Optional[Dict[str, object]]:
        states = ctx.states
        if not states:
            return None
        queued = 0
        deepest = 0
        arrived = 0
        dropped = 0
        fault_dropped = 0
        completed = 0
        for state in states:
            for core in state.cores:
                depth = core.queued
                queued += depth
                if depth > deepest:
                    deepest = depth
            arrived += state.arrived
            dropped += state.dropped
            fault_dropped += state.fault_dropped
            completed += state.completed
        return {
            "queued": queued,
            "deepest_core_queue": deepest,
            "arrived": arrived,
            "dropped": dropped,
            "fault_dropped": fault_dropped,
            "completed": completed,
        }


@register_probe("fault_windows")
class FaultWindowsProbe(TelemetryProbe):
    """Active fault-model state: which model, whether a window is open, hits."""

    __slots__ = ()

    name = "fault_windows"
    param_defaults: Mapping[str, object] = {}

    def sample(self, ctx: ProbeContext) -> Optional[Dict[str, object]]:
        state = ctx.fault_state
        if state is None:
            return None
        payload = {
            "model": state.model.name,
            "active": bool(state.active),
            "windows": int(state.windows),
            "hits": int(state.hits),
        }
        cascade = getattr(state, "cascade", None)
        if cascade is not None:
            # Cascading runs attach a composite state; surface the
            # secondary model with its trigger lineage.  Plain faulted
            # runs emit the exact pre-cascade payload.
            payload["cascade"] = {
                "model": cascade.model.name,
                "active": bool(cascade.active),
                "windows": int(cascade.windows),
                "hits": int(cascade.hits),
                "triggered_by": state.primary.model.name,
            }
        return payload


@register_probe("heap_health")
class HeapHealthProbe(TelemetryProbe):
    """Event-heap pressure: pending/peak counts and the cancellation backlog."""

    __slots__ = ()

    name = "heap_health"
    param_defaults: Mapping[str, object] = {}

    def sample(self, ctx: ProbeContext) -> Optional[Dict[str, object]]:
        sim = ctx.sim
        if sim is None:
            return None
        return {
            "pending": sim.pending_events,
            "peak_pending": sim.peak_pending_events,
            "cancelled_backlog": sim.cancelled_backlog,
            "executed": sim.events_executed,
        }
