"""One tile of the manycore chip: a core, its L1 and its LLC slice."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.coherence.caches import L1Cache, TileCacheComplex


@dataclass
class Tile:
    """Static description of one core tile.

    The tile's cache complex is the coherence entity that represents the
    core's L1 (and, for the per-tile and split NI designs, the back-side NI
    cache the design assembly attaches later).
    """

    tile_id: int
    node: Hashable
    complex: TileCacheComplex
    #: Index of the LLC slice collocated with this tile (mesh only; None on NOC-Out).
    llc_slice: Optional[int] = None

    @classmethod
    def create(cls, tile_id: int, node: Hashable, l1_latency: int,
               llc_slice: Optional[int] = None) -> "Tile":
        """Build a tile with a fresh L1-only cache complex."""
        l1 = L1Cache(tile_id, access_latency=l1_latency)
        complex_ = TileCacheComplex(entity_id=("tile", tile_id), node=node, l1=l1)
        return cls(tile_id=tile_id, node=node, complex=complex_, llc_slice=llc_slice)

    @property
    def l1(self) -> L1Cache:
        return self.complex.l1
