"""Remote-end emulation (the paper's single-node methodology, §5).

Only one node is simulated in microarchitectural detail.  The
:class:`RemoteEndEmulator` plays the role of the rest of the rack:

* every *outgoing* request receives a response after a round trip of
  ``2 x hops x 35 ns`` plus the remote node's servicing latency, which — as
  in the paper — is taken to be the measured average servicing latency of the
  *local* RRPPs (falling back to the calibrated 208-cycle constant before any
  local sample exists);
* when rate matching is enabled (bandwidth experiments), each outgoing
  request also triggers one *incoming* request to the local node, so the
  local RRPPs service exactly as much traffic as the node generates;
  incoming requests target uniformly random block offsets of the registered
  context and are steered to RRPPs by address interleaving (§4.3).
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.qp.entries import RemoteOp
from repro.sonuma.wire import RemoteRequest, RemoteResponse


class RemoteEndEmulator:
    """Rack-side traffic model attached to a :class:`~repro.node.soc.ManycoreSoc`."""

    def __init__(
        self,
        soc,
        hops: int = 1,
        rate_match_incoming: bool = False,
        incoming_ctx_id: int = 0,
        incoming_region_bytes: Optional[int] = None,
        remote_node_id: int = 1,
        seed: int = 1,
    ) -> None:
        if hops < 0:
            raise WorkloadError("hop count cannot be negative")
        if rate_match_incoming:
            # Validate the rate-matching configuration now: discovering a
            # missing region size on the first incoming request would waste a
            # whole warm-up before failing mid-simulation.
            if incoming_region_bytes is None:
                raise WorkloadError(
                    "rate matching requires incoming_region_bytes (the exported context size)"
                )
            if incoming_region_bytes <= 0:
                raise WorkloadError(
                    "incoming_region_bytes must be positive, got %r" % (incoming_region_bytes,)
                )
        self.soc = soc
        self.sim = soc.sim
        self.config: SystemConfig = soc.config
        self.hops = hops
        self.rate_match_incoming = rate_match_incoming
        self.incoming_ctx_id = incoming_ctx_id
        self.incoming_region_bytes = incoming_region_bytes
        self.remote_node_id = remote_node_id
        self._rng = random.Random(seed)
        soc.attach_remote_port(self)
        # Statistics
        self.outgoing_requests = 0
        self.outgoing_responses = 0
        self.incoming_generated = 0
        self.responses_delivered = 0

    # ------------------------------------------------------------------
    # Port interface (called by the SoC)
    # ------------------------------------------------------------------
    def send(self, message, from_node: Hashable) -> None:
        """The local node pushed a packet off chip."""
        if isinstance(message, RemoteRequest):
            self._handle_outgoing_request(message)
        elif isinstance(message, RemoteResponse):
            # A response produced by a local RRPP leaves for the remote
            # requester; nothing further happens on the local node.
            self.outgoing_responses += 1
        else:
            raise WorkloadError("unexpected off-chip message %r" % (message,))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def one_way_network_cycles(self) -> float:
        """One-way inter-node network latency for the configured hop count."""
        return self.hops * self.soc.config.network_hop_cycles

    def remote_service_cycles(self) -> float:
        """Servicing latency charged at the emulated remote node.

        Uses the running average of the local RRPPs (the paper's
        methodology); before any sample exists, the calibrated zero-load
        RRPP latency is used instead.
        """
        measured = self.soc.ni.average_rrpp_latency()
        if measured > 0:
            return measured
        return float(self.config.calibration.rrpp_service_cycles)

    def _handle_outgoing_request(self, request: RemoteRequest) -> None:
        self.outgoing_requests += 1
        round_trip = 2 * self.one_way_network_cycles + self.remote_service_cycles()
        response = request.make_response()
        self.sim.schedule_fast(round_trip, self._deliver_response, response)
        if self.rate_match_incoming:
            self._generate_incoming_request()

    def _deliver_response(self, response: RemoteResponse) -> None:
        self.responses_delivered += 1
        self.soc.deliver_response(response)

    def _generate_incoming_request(self) -> None:
        region = self.incoming_region_bytes
        block_bytes = self.config.cache_block_bytes
        blocks = max(1, region // block_bytes)
        offset = self._rng.randrange(blocks) * block_bytes
        request = RemoteRequest(
            op=RemoteOp.READ,
            src_node=self.remote_node_id,
            dst_node=self.soc.node_id,
            ctx_id=self.incoming_ctx_id,
            offset=offset,
        )
        self.incoming_generated += 1
        self.sim.schedule_fast(self.one_way_network_cycles, self.soc.deliver_remote_request, request)
