"""Core (application thread) model.

The cores of Table 2 are 3-wide OoO ARM-like cores; §6.1.1 shows that the
only software costs that matter for remote operations are the ~dozen
instructions creating a WQ entry and the handful reading a CQ entry, so the
core model reduces the application to exactly those interactions:

* issuing an operation costs :attr:`~repro.config.LatencyCalibration.wq_write_instruction_cycles`
  of execution plus a *coherent store* to the WQ block (the store is where
  the NIedge design loses ~100 cycles to QP ping-ponging);
* consuming a completion costs a *coherent load* from the CQ block plus
  :attr:`~repro.config.LatencyCalibration.cq_read_instruction_cycles`.

A core is busy while it issues or polls (one activity at a time), which
naturally produces the issue-rate throttling that limits NIedge's bandwidth
for small transfers (§6.2).  Drivers feed the core an iterator of WQ entries
(synchronous latency runs use ``max_outstanding=1``; asynchronous bandwidth
runs use the full WQ depth).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, Optional

from repro.errors import WorkloadError
from repro.qp.entries import WorkQueueEntry
from repro.qp.manager import QueuePair
from repro.sim.stats import LatencyRecorder


class CoreModel:
    """One application thread bound to one core and one queue pair."""

    def __init__(self, core_id: int, soc, qp: QueuePair) -> None:
        self.core_id = core_id
        self.soc = soc
        self.sim = soc.sim
        self.qp = qp
        self.calibration = soc.config.calibration
        self.entity = soc.tile_complex(core_id).entity_id
        self.frontend = soc.ni.frontend_for_core(core_id)
        soc.register_completion_listener(core_id, self._on_cq_notification)
        # Measurements
        #: When True, (re)created latency recorders use the exact-histogram
        #: mode so tail percentiles cover every completion (open-loop runs).
        self.latency_exact = False
        self.latency = LatencyRecorder("core%d-e2e" % core_id)
        self.issued_ops = 0
        self.completed_ops = 0
        self.completed_bytes = 0
        #: posted_at of the most recently completed operation (None when the
        #: posting time was unknown); lets on_op_complete listeners attribute
        #: the completion to a measurement window.
        self.last_completion_posted_at: Optional[float] = None
        # Internal state
        self._posted_times: Dict[int, float] = {}
        self._outstanding = 0
        self._busy = False
        self._cq_pending = 0
        self._stopped = False
        self._issue_source: Optional[Iterator[WorkQueueEntry]] = None
        #: Open-loop feed: entries pushed by a driver on its arrival clock.
        #: None in closed-loop mode (the default).
        self._open_queue: Optional[Deque[WorkQueueEntry]] = None
        self._max_outstanding = qp.wq.capacity
        self._on_op_complete: Optional[Callable[["CoreModel"], None]] = None

    # ------------------------------------------------------------------
    # Driver API
    # ------------------------------------------------------------------
    def start(
        self,
        entry_source: Iterator[WorkQueueEntry],
        max_outstanding: Optional[int] = None,
        on_op_complete: Optional[Callable[["CoreModel"], None]] = None,
    ) -> None:
        """Start issuing the entries produced by ``entry_source``.

        ``max_outstanding`` limits in-flight operations (1 reproduces the
        synchronous microbenchmark; the WQ depth reproduces the asynchronous
        one).  ``on_op_complete`` fires after every completed operation.
        """
        if max_outstanding is not None and max_outstanding <= 0:
            raise WorkloadError("max_outstanding must be positive")
        self._issue_source = entry_source
        self._open_queue = None
        self._max_outstanding = max_outstanding or self.qp.wq.capacity
        self._on_op_complete = on_op_complete
        self._stopped = False
        self.sim.schedule_fast(0, self._try_work)

    def open_loop(
        self,
        max_outstanding: Optional[int] = None,
        on_op_complete: Optional[Callable[["CoreModel"], None]] = None,
    ) -> None:
        """Switch to open-loop mode: entries arrive via :meth:`feed`.

        Unlike :meth:`start`'s pull iterator — whose exhaustion permanently
        retires the core — an empty open-loop queue just means the core idles
        until the driver's arrival clock feeds the next request.
        """
        if max_outstanding is not None and max_outstanding <= 0:
            raise WorkloadError("max_outstanding must be positive")
        self._issue_source = None
        self._open_queue = deque()
        self._max_outstanding = max_outstanding or self.qp.wq.capacity
        self._on_op_complete = on_op_complete
        self._stopped = False

    def feed(self, entry: WorkQueueEntry) -> None:
        """Hand the core one open-loop request (stamped with its arrival time).

        The entry's ``posted_at`` is set to *now* — the arrival instant — so
        the recorded end-to-end latency includes any time spent waiting in
        the core's queue, which is exactly the component that explodes as
        offered load approaches saturation.
        """
        if self._open_queue is None:
            raise WorkloadError("core %d is not in open-loop mode" % self.core_id)
        entry.posted_at = self.sim.now
        self._open_queue.append(entry)
        self._try_work()

    @property
    def queued(self) -> int:
        """Open-loop requests accepted but not yet picked up by the core."""
        return len(self._open_queue) if self._open_queue is not None else 0

    def stop(self) -> None:
        """Stop issuing new operations (in-flight ones still complete)."""
        self._stopped = True

    def reset_measurements(self) -> None:
        """Drop throughput/latency counters (end of warm-up)."""
        self.latency = LatencyRecorder("core%d-e2e" % self.core_id, exact=self.latency_exact)
        self.issued_ops = 0
        self.completed_ops = 0
        self.completed_bytes = 0

    def use_exact_latency(self) -> None:
        """Record latencies into an exact histogram from now on (drops samples)."""
        self.latency_exact = True
        self.reset_measurements()

    @property
    def outstanding(self) -> int:
        """Operations issued but not yet completed."""
        return self._outstanding

    # ------------------------------------------------------------------
    # Core activity state machine
    # ------------------------------------------------------------------
    def _try_work(self) -> None:
        if self._busy:
            return
        # Drain completions first: when the WQ is full the application spins
        # on the CQ until a completion frees an entry (§5).
        if self._cq_pending > 0 and not self.qp.cq.is_empty():
            self._begin_poll()
            return
        if self._stopped or (self._issue_source is None and self._open_queue is None):
            return
        if self._outstanding >= self._max_outstanding or self.qp.wq.is_full():
            return
        if self._open_queue is not None:
            if not self._open_queue:
                return  # idle until the next open-loop arrival
            entry = self._open_queue.popleft()
        else:
            entry = next(self._issue_source, None)
            if entry is None:
                self._issue_source = None
                return
        self._begin_issue(entry)

    # -- issue path ------------------------------------------------------
    def _begin_issue(self, entry: WorkQueueEntry) -> None:
        self._busy = True
        if self._open_queue is None:
            # Closed loop: the entry is created the instant the core issues
            # it.  Open-loop entries were already stamped at arrival (feed()).
            entry.posted_at = self.sim.now
        delay = self.calibration.wq_write_instruction_cycles
        faults = self.soc.fault_state
        if faults is not None:
            delay += faults.issue_penalty(self.core_id)
        self.sim.schedule_fast(delay, self._store_wq_entry, entry)

    def _store_wq_entry(self, entry: WorkQueueEntry) -> None:
        index = self.qp.wq.post(entry)
        self._posted_times[index] = entry.posted_at
        block = self.qp.wq.entry_block_address(index)
        self.soc.coherence.access(
            self.entity, "core", block, write=True,
            on_done=lambda result: self._wq_stored(entry, index),
        )

    def _wq_stored(self, entry: WorkQueueEntry, index: int) -> None:
        self.issued_ops += 1
        self._outstanding += 1
        self.frontend.post_doorbell(self.qp, self.core_id, entry, index)
        self._busy = False
        self._try_work()

    # -- completion path ---------------------------------------------------
    def _on_cq_notification(self) -> None:
        self._cq_pending += 1
        self._try_work()

    def _begin_poll(self) -> None:
        self._busy = True
        block = self.qp.cq.head_block_address()
        self.soc.coherence.access(
            self.entity, "core", block, write=False,
            on_done=lambda result: self._cq_loaded(),
        )

    def _cq_loaded(self) -> None:
        self.sim.schedule_fast(self.calibration.cq_read_instruction_cycles, self._consume_cq_entry)

    def _consume_cq_entry(self) -> None:
        cq_entry = self.qp.cq.pop()
        self._cq_pending = max(0, self._cq_pending - 1)
        if not self.qp.wq.is_empty():
            self.qp.wq.pop()  # a completion frees one WQ slot
        posted_at = self._posted_times.pop(cq_entry.wq_index, None)
        self.last_completion_posted_at = posted_at
        if posted_at is not None:
            self.latency.add(self.sim.now - posted_at)
        self._outstanding = max(0, self._outstanding - 1)
        self.completed_ops += 1
        self.completed_bytes += cq_entry.length
        self._busy = False
        if self._on_op_complete is not None:
            self._on_op_complete(self)
        self._try_work()
