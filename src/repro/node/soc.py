"""The manycore SoC: the full single-node model.

:class:`ManycoreSoc` wires together every substrate — the NOC fabric and
topology-specific placement, the MESI coherence protocol with its distributed
directory, the NUCA LLC banks, the memory controllers and DRAM, the queue
pairs and the configured NI design — and implements the
:class:`~repro.core.base.NodeServices` interface the NI pipelines program
against.

The off-chip side (responses to locally-initiated requests and incoming
remote requests) is provided by whatever object is attached with
:meth:`attach_remote_port` — normally the
:class:`~repro.node.traffic.RemoteEndEmulator` that implements the paper's
single-node methodology (§5).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.coherence.directory import DirectoryController
from repro.coherence.protocol import CoherenceProtocol
from repro.coherence.states import CacheState
from repro.config import MessageClass, NIDesign, SystemConfig, design_name
from repro.core.factory import build_ni_design
from repro.core.placement import build_placement
from repro.errors import ConfigurationError, SimulationError
from repro.memory.address import AddressMap
from repro.memory.controller import MemoryController
from repro.memory.dram import DramModel
from repro.noc.fabric import NocFabric
from repro.node.tile import Tile
from repro.qp.manager import QPManager, QueuePair
from repro.sim.engine import Simulator
from repro.sim.resource import Resource
from repro.sonuma.context import ContextRegistry
from repro.sonuma.wire import RemoteRequest, RemoteResponse
from repro.core.base import NodeServices

#: Payload bytes of a dataless memory request on the NOC.
_MEM_REQUEST_BYTES = 8


class ManycoreSoc(NodeServices):
    """A 64-core tiled SoC with the configured NI design."""

    def __init__(self, config: SystemConfig, sim: Optional[Simulator] = None, node_id: int = 0) -> None:
        if design_name(config.ni.design) == NIDesign.NUMA.value:
            raise ConfigurationError(
                "ManycoreSoc models the QP-based designs; use repro.numa.NumaMachine for the baseline"
            )
        self.sim = sim if sim is not None else Simulator()
        self.config = config
        self.node_id = node_id
        self.placement = build_placement(config)
        self.fabric = NocFabric(self.sim, self.placement.topology, config.noc)
        #: Fault state installed by a FaultInjector (None on healthy runs);
        #: consulted by the core issue path for slow-node penalties.
        self.fault_state = None
        self.address_map = AddressMap(
            llc_slices=self.placement.llc_slice_count,
            memory_controllers=len(self.placement.mc_nodes),
            rrpps=len(self.placement.rrpp_nodes),
            block_bytes=config.cache_block_bytes,
        )
        self.directory = DirectoryController(
            home_tile_count=self.placement.llc_slice_count,
            block_bytes=config.cache_block_bytes,
        )
        self.coherence = CoherenceProtocol(
            sim=self.sim,
            fabric=self.fabric,
            directory=self.directory,
            home_node_of_tile=lambda s: self.placement.llc_nodes[s],
            llc_latency_cycles=config.llc.latency_cycles,
            memory_access=self._coherence_memory_fetch,
            fallback_memory_latency_cycles=config.memory_latency_cycles,
        )
        self.tiles: List[Tile] = self._build_tiles()
        self.llc_banks: List[Resource] = [
            Resource(self.sim, name="llc_bank[%d]" % i)
            for i in range(self.placement.llc_slice_count)
        ]
        self.memory_controllers: List[MemoryController] = self._build_memory_controllers()
        self.contexts = ContextRegistry(node_id)
        self.qp_manager = QPManager(
            wq_entries=config.ni.wq_entries, cq_entries=config.ni.cq_entries
        )
        self.ni = build_ni_design(self, self.placement).build()
        self._remote_port = None
        self._completion_listeners: Dict[int, Callable[[], None]] = {}
        # Off-chip traffic statistics (payload bytes, not headers).
        self.offchip_request_bytes = 0
        self.offchip_response_bytes = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_tiles(self) -> List[Tile]:
        tiles = []
        for tile_id in range(self.config.tile_count):
            node = self.placement.tile_nodes[tile_id]
            llc_slice = tile_id if self.placement.llc_slice_count == self.config.tile_count else None
            tile = Tile.create(
                tile_id=tile_id,
                node=node,
                l1_latency=self.config.cores.l1_latency_cycles,
                llc_slice=llc_slice,
            )
            self.coherence.register_complex(tile.complex)
            tiles.append(tile)
        return tiles

    def _build_memory_controllers(self) -> List[MemoryController]:
        bandwidth_bytes_per_cycle = (
            self.config.memory.bandwidth_gbps_per_controller / self.config.cores.frequency_ghz
        )
        controllers = []
        for index, node in enumerate(self.placement.mc_nodes):
            dram = DramModel(
                self.sim,
                latency_cycles=self.config.memory_latency_cycles,
                bandwidth_bytes_per_cycle=bandwidth_bytes_per_cycle,
                name="dram[%d]" % index,
            )
            controllers.append(MemoryController(self.sim, index, node, dram))
        return controllers

    # ------------------------------------------------------------------
    # Setup API used by workloads and examples
    # ------------------------------------------------------------------
    def register_context(self, ctx_id: int, size_bytes: int, base_addr: int = 0x4000_0000):
        """Register a memory region for one-sided remote access."""
        return self.contexts.register(ctx_id, base_addr, size_bytes)

    def create_queue_pair(self, core_id: int, prewarm: bool = True) -> QueuePair:
        """Allocate a queue pair for ``core_id``, registered with its NI frontend."""
        frontend = self.ni.frontend_for_core(core_id)
        qp = self.qp_manager.create(core_id, servicing_ni=frontend.name)
        if prewarm:
            self._prewarm_queue_pair(core_id, qp)
        return qp

    def _prewarm_queue_pair(self, core_id: int, qp: QueuePair) -> None:
        """Install the steady-state coherence state of the QP blocks.

        In steady state the NI polls on the WQ head (it holds the WQ blocks
        shared) and the core polls on the CQ head (it holds the CQ blocks
        shared); all QP blocks have a clean LLC copy.  For collocated NI
        caches (per-tile / split) the whole complex simply owns its QP blocks.
        """
        frontend = self.ni.frontend_for_core(core_id)
        core_complex = self.tiles[core_id].complex
        ni_entity = frontend.entity_id
        collocated = ni_entity == core_complex.entity_id
        wq_blocks = {qp.wq.entry_block_address(i) for i in range(qp.wq.capacity)}
        cq_blocks = {qp.cq.entry_block_address(i) for i in range(qp.cq.capacity)}
        if collocated:
            for block in wq_blocks:
                entry = self.directory.entry(block)
                entry.record_exclusive(core_complex.entity_id)
                core_complex.install(block, CacheState.MODIFIED, into="core")
            for block in cq_blocks:
                entry = self.directory.entry(block)
                entry.record_exclusive(core_complex.entity_id)
                core_complex.install(block, CacheState.MODIFIED, into="ni")
            return
        ni_complex = self.coherence.complex_of(ni_entity)
        for block in wq_blocks:
            entry = self.directory.entry(block)
            entry.in_llc = True
            entry.record_shared({ni_entity})
            ni_complex.install(block, CacheState.SHARED, into="ni")
        for block in cq_blocks:
            entry = self.directory.entry(block)
            entry.in_llc = True
            entry.record_shared({core_complex.entity_id})
            core_complex.install(block, CacheState.SHARED, into="core")

    def attach_remote_port(self, port) -> None:
        """Attach the rack-side model (normally a :class:`RemoteEndEmulator`)."""
        self._remote_port = port

    def register_completion_listener(self, core_id: int, callback: Callable[[], None]) -> None:
        """Register the core model's CQ-notification callback."""
        self._completion_listeners[core_id] = callback

    # ------------------------------------------------------------------
    # NodeServices implementation
    # ------------------------------------------------------------------
    def tile_complex(self, tile_id: int):
        return self.tiles[tile_id].complex

    def network_port_node(self, near_node: Hashable) -> Hashable:
        return self.placement.network_port_node(near_node)

    def translate(self, ctx_id: int, offset: int, length: int) -> int:
        return self.contexts.validate(ctx_id, offset, length).translate(offset)

    def notify_completion(self, core_id: int) -> None:
        callback = self._completion_listeners.get(core_id)
        if callback is not None:
            callback()

    def off_chip_send(self, message, from_node: Hashable) -> None:
        if self._remote_port is None:
            raise SimulationError("no remote port attached; call attach_remote_port() first")
        if isinstance(message, RemoteRequest):
            self.offchip_request_bytes += message.wire_bytes
        elif isinstance(message, RemoteResponse):
            self.offchip_response_bytes += message.wire_bytes
        self._remote_port.send(message, from_node)

    # -- data path (LLC + MC + DRAM) -------------------------------------
    def memory_read(self, requester_node: Hashable, addr: int, nbytes: int,
                    on_done: Callable[[], None]) -> None:
        """Data-path read: requester -> home LLC slice (miss) -> MC -> DRAM,
        with the fill returning through the home slice before the data is
        forwarded to the requester.

        The paper sizes all remote regions and local buffers to exceed the
        aggregate on-chip cache capacity (§5), so the LLC lookup always
        misses and the access is served by memory.  The final forward is
        directory-sourced traffic, which is what the paper's extended CDR
        routes YX to keep it from turning at the NI edge column (§4.3).
        """
        slice_idx = self.address_map.home_llc_slice(addr)
        llc_node = self.placement.llc_nodes[slice_idx]
        mc = self.memory_controllers[self.address_map.mc_for_addr(addr)]

        def at_llc(_packet) -> None:
            bank = self.llc_banks[slice_idx]
            grant = bank.acquire(self.config.llc.bank_occupancy_cycles)
            ready = grant + self.config.llc.latency_cycles
            self.sim.schedule_fast(max(0.0, ready - self.sim.now), forward_to_mc)

        def forward_to_mc() -> None:
            self.fabric.send(
                llc_node, mc.node, _MEM_REQUEST_BYTES, MessageClass.DIRECTORY_SOURCED, at_mc
            )

        def at_mc(_packet) -> None:
            mc.service(nbytes, is_write=False, on_done=send_fill_to_home)

        def send_fill_to_home() -> None:
            self.fabric.send(
                mc.node, llc_node, nbytes, MessageClass.MEMORY_RESPONSE, forward_to_requester
            )

        def forward_to_requester(_packet) -> None:
            self.fabric.send(
                llc_node, requester_node, nbytes, MessageClass.DIRECTORY_SOURCED,
                lambda packet: on_done(),
            )

        self.fabric.send(
            requester_node, llc_node, _MEM_REQUEST_BYTES, MessageClass.MEMORY_REQUEST, at_llc
        )

    def memory_write(self, requester_node: Hashable, addr: int, nbytes: int,
                     on_done: Callable[[], None]) -> None:
        """Data-path write: posted at the home LLC slice, drained to the MC behind it."""
        slice_idx = self.address_map.home_llc_slice(addr)
        llc_node = self.placement.llc_nodes[slice_idx]
        mc = self.memory_controllers[self.address_map.mc_for_addr(addr)]

        def at_llc(_packet) -> None:
            bank = self.llc_banks[slice_idx]
            grant = bank.acquire(self.config.llc.bank_occupancy_cycles)
            ready = grant + self.config.llc.latency_cycles
            self.sim.schedule_fast(max(0.0, ready - self.sim.now), accept)

        def accept() -> None:
            on_done()
            # Dirty data drains to memory off the critical path.
            self.fabric.send(
                llc_node, mc.node, nbytes, MessageClass.DIRECTORY_SOURCED,
                lambda packet: mc.service(nbytes, is_write=True),
            )

        self.fabric.send(requester_node, llc_node, nbytes, MessageClass.NI_DATA, at_llc)

    def _coherence_memory_fetch(self, home_node: Hashable, addr: int,
                                callback: Callable[[], None]) -> None:
        """LLC-miss fill path used by the coherence protocol for QP blocks."""
        mc = self.memory_controllers[self.address_map.mc_for_addr(addr)]

        def at_mc(_packet) -> None:
            mc.service(self.config.cache_block_bytes, is_write=False, on_done=send_back)

        def send_back() -> None:
            self.fabric.send(
                mc.node, home_node, self.config.cache_block_bytes, MessageClass.MEMORY_RESPONSE,
                lambda packet: callback(),
            )

        self.fabric.send(home_node, mc.node, _MEM_REQUEST_BYTES, MessageClass.DIRECTORY_SOURCED, at_mc)

    # ------------------------------------------------------------------
    # Rack-facing delivery API (called by the remote port)
    # ------------------------------------------------------------------
    def deliver_response(self, response: RemoteResponse) -> None:
        """A response to a locally-initiated request arrived from the network."""
        self.ni.deliver_response(response)

    def deliver_remote_request(self, request: RemoteRequest) -> None:
        """An incoming one-sided request arrived from a remote node."""
        self.ni.deliver_remote_request(request)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Advance the simulation."""
        return self.sim.run(until=until, max_events=max_events)

    def llc_bank_utilization(self) -> float:
        """Utilization of the most loaded LLC bank."""
        if not self.llc_banks:
            return 0.0
        return max(bank.utilization() for bank in self.llc_banks)
