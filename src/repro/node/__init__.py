"""Single-node (chip) model: tiles, the manycore SoC, core models and the
remote-end traffic generator used by the paper's methodology (§5)."""

from repro.node.tile import Tile
from repro.node.soc import ManycoreSoc
from repro.node.core_model import CoreModel
from repro.node.traffic import RemoteEndEmulator

__all__ = ["Tile", "ManycoreSoc", "CoreModel", "RemoteEndEmulator"]
