"""Work-queue and completion-queue entry formats.

The entry layout follows soNUMA: a WQ entry encodes a one-sided remote
operation (read or write) with its context id, destination node, remote
offset, local buffer address and length; a CQ entry signals the completion
of the WQ entry at a given index.  Entries are 32 bytes, so two entries share
one 64-byte cache block — which is exactly what makes the edge design's QP
blocks ping-pong between the core and the NI when requests are issued back
to back (§6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import QueueError

#: Size of one work-queue entry on the wire / in memory.
WQ_ENTRY_BYTES = 32
#: Size of one completion-queue entry.
CQ_ENTRY_BYTES = 32


class RemoteOp(enum.Enum):
    """One-sided remote operations supported by the RMC."""

    READ = "read"
    WRITE = "write"


@dataclass
class WorkQueueEntry:
    """A request descriptor written by the application into its WQ."""

    op: RemoteOp
    ctx_id: int
    dst_node: int
    remote_offset: int
    local_buffer: int
    length: int
    #: Index in the WQ ring, filled in by the queue on post.
    wq_index: Optional[int] = None
    #: Simulation time at which the application created the entry.
    posted_at: float = 0.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise QueueError("WQ entry length must be positive")
        if self.remote_offset < 0 or self.local_buffer < 0:
            raise QueueError("WQ entry addresses cannot be negative")
        if self.dst_node < 0:
            raise QueueError("destination node id cannot be negative")


@dataclass
class CompletionQueueEntry:
    """A completion notification written by the NI into the CQ."""

    wq_index: int
    success: bool = True
    length: int = 0
    #: Simulation time at which the NI wrote the completion.
    completed_at: float = 0.0

    def __post_init__(self) -> None:
        if self.wq_index < 0:
            raise QueueError("CQ entry must reference a valid WQ index")
