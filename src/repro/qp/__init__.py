"""Queue-pair (WQ/CQ) communication layer between cores and NIs (§2.2)."""

from repro.qp.entries import RemoteOp, WorkQueueEntry, CompletionQueueEntry, WQ_ENTRY_BYTES, CQ_ENTRY_BYTES
from repro.qp.queues import WorkQueue, CompletionQueue
from repro.qp.manager import QueuePair, QPManager

__all__ = [
    "RemoteOp",
    "WorkQueueEntry",
    "CompletionQueueEntry",
    "WQ_ENTRY_BYTES",
    "CQ_ENTRY_BYTES",
    "WorkQueue",
    "CompletionQueue",
    "QueuePair",
    "QPManager",
]
