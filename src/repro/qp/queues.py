"""Memory-mapped work and completion queues.

Both queues are lock-free single-producer / single-consumer rings held in
cacheable memory.  The queue objects track functional state (entries,
head/tail) and expose the *block address* of any entry so the simulator can
drive the coherence protocol for the exact cache blocks a real implementation
would touch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import CACHE_BLOCK_BYTES
from repro.errors import QueueError
from repro.qp.entries import (
    CQ_ENTRY_BYTES,
    WQ_ENTRY_BYTES,
    CompletionQueueEntry,
    WorkQueueEntry,
)


class _RingQueue:
    """Common ring-buffer mechanics for WQ and CQ."""

    def __init__(self, capacity: int, base_addr: int, entry_bytes: int, name: str) -> None:
        if capacity <= 0:
            raise QueueError("%s capacity must be positive" % name)
        if base_addr < 0:
            raise QueueError("%s base address cannot be negative" % name)
        if base_addr % CACHE_BLOCK_BYTES != 0:
            raise QueueError("%s base address must be cache-block aligned" % name)
        self.capacity = capacity
        self.base_addr = base_addr
        self.entry_bytes = entry_bytes
        self.name = name
        self._entries: List[Optional[object]] = [None] * capacity
        self._head = 0  # consumer position
        self._tail = 0  # producer position
        self._count = 0
        # Statistics
        self.posts = 0
        self.pops = 0
        self.full_stalls = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def is_full(self) -> bool:
        return self._count == self.capacity

    @property
    def head_index(self) -> int:
        return self._head

    @property
    def tail_index(self) -> int:
        return self._tail

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def entry_address(self, index: int) -> int:
        """Memory address of entry ``index``."""
        if not 0 <= index < self.capacity:
            raise QueueError("%s index %d out of range" % (self.name, index))
        return self.base_addr + index * self.entry_bytes

    def entry_block_address(self, index: int) -> int:
        """Cache-block address holding entry ``index``."""
        addr = self.entry_address(index)
        return addr - (addr % CACHE_BLOCK_BYTES)

    def head_block_address(self) -> int:
        """Cache block the consumer polls on."""
        return self.entry_block_address(self._head)

    def tail_block_address(self) -> int:
        """Cache block the producer writes next."""
        return self.entry_block_address(self._tail)

    @property
    def entries_per_block(self) -> int:
        return max(1, CACHE_BLOCK_BYTES // self.entry_bytes)

    def footprint_blocks(self) -> int:
        """Number of distinct cache blocks backing the ring."""
        total_bytes = self.capacity * self.entry_bytes
        return (total_bytes + CACHE_BLOCK_BYTES - 1) // CACHE_BLOCK_BYTES

    # ------------------------------------------------------------------
    # Ring operations
    # ------------------------------------------------------------------
    def _post(self, entry: object) -> int:
        if self.is_full():
            self.full_stalls += 1
            raise QueueError("%s is full" % self.name)
        index = self._tail
        self._entries[index] = entry
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        self.posts += 1
        return index

    def _peek(self) -> Optional[object]:
        if self.is_empty():
            return None
        return self._entries[self._head]

    def _pop(self) -> object:
        if self.is_empty():
            raise QueueError("%s is empty" % self.name)
        entry = self._entries[self._head]
        self._entries[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        self.pops += 1
        return entry


class WorkQueue(_RingQueue):
    """The application-to-NI request ring."""

    def __init__(self, capacity: int, base_addr: int) -> None:
        super().__init__(capacity, base_addr, WQ_ENTRY_BYTES, "WQ@0x%x" % base_addr)

    def post(self, entry: WorkQueueEntry) -> int:
        """Append a request; returns the entry's WQ index."""
        index = self._post(entry)
        entry.wq_index = index
        return index

    def peek(self) -> Optional[WorkQueueEntry]:
        return self._peek()  # type: ignore[return-value]

    def pop(self) -> WorkQueueEntry:
        return self._pop()  # type: ignore[return-value]


class CompletionQueue(_RingQueue):
    """The NI-to-application completion ring."""

    def __init__(self, capacity: int, base_addr: int) -> None:
        super().__init__(capacity, base_addr, CQ_ENTRY_BYTES, "CQ@0x%x" % base_addr)

    def post(self, entry: CompletionQueueEntry) -> int:
        """Append a completion; returns the entry's CQ index."""
        return self._post(entry)

    def peek(self) -> Optional[CompletionQueueEntry]:
        return self._peek()  # type: ignore[return-value]

    def pop(self) -> CompletionQueueEntry:
        return self._pop()  # type: ignore[return-value]
