"""Queue-pair allocation and registration.

A :class:`QueuePair` bundles one work queue and one completion queue for one
application thread (one per core in the paper's microbenchmarks).  The
:class:`QPManager` hands out non-overlapping, cache-block-aligned memory
ranges for the queues so the coherence model sees distinct blocks per core,
and records which NI (edge NI, per-tile NI or split frontend) services each
queue pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.config import CACHE_BLOCK_BYTES
from repro.errors import QueueError
from repro.qp.queues import CompletionQueue, WorkQueue


@dataclass
class QueuePair:
    """One WQ/CQ pair owned by a core and registered with an NI."""

    qp_id: int
    owner_core: int
    wq: WorkQueue
    cq: CompletionQueue
    #: Identifier of the NI frontend servicing this queue pair.
    servicing_ni: Optional[Hashable] = None

    def qp_blocks(self):
        """All cache blocks backing either queue (for coherence pre-warming)."""
        blocks = set()
        for queue in (self.wq, self.cq):
            for index in range(queue.capacity):
                blocks.add(queue.entry_block_address(index))
        return sorted(blocks)


class QPManager:
    """Allocates queue pairs in a dedicated, block-aligned address range."""

    def __init__(self, base_addr: int = 0x1000_0000, wq_entries: int = 128, cq_entries: int = 128) -> None:
        if base_addr % CACHE_BLOCK_BYTES != 0:
            raise QueueError("QP region base must be cache-block aligned")
        self.base_addr = base_addr
        self.wq_entries = wq_entries
        self.cq_entries = cq_entries
        self._next_addr = base_addr
        self._pairs: Dict[int, QueuePair] = {}
        self._by_core: Dict[int, QueuePair] = {}
        self._next_id = 0

    def create(self, owner_core: int, servicing_ni: Optional[Hashable] = None) -> QueuePair:
        """Allocate a queue pair for ``owner_core``."""
        if owner_core in self._by_core:
            raise QueueError("core %d already owns a queue pair" % owner_core)
        wq_base = self._allocate(self.wq_entries * 32)
        cq_base = self._allocate(self.cq_entries * 32)
        pair = QueuePair(
            qp_id=self._next_id,
            owner_core=owner_core,
            wq=WorkQueue(self.wq_entries, wq_base),
            cq=CompletionQueue(self.cq_entries, cq_base),
            servicing_ni=servicing_ni,
        )
        self._pairs[pair.qp_id] = pair
        self._by_core[owner_core] = pair
        self._next_id += 1
        return pair

    def _allocate(self, nbytes: int) -> int:
        aligned = ((nbytes + CACHE_BLOCK_BYTES - 1) // CACHE_BLOCK_BYTES) * CACHE_BLOCK_BYTES
        addr = self._next_addr
        self._next_addr += aligned
        return addr

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, qp_id: int) -> QueuePair:
        try:
            return self._pairs[qp_id]
        except KeyError:
            raise QueueError("unknown queue pair %d" % qp_id) from None

    def for_core(self, core_id: int) -> QueuePair:
        try:
            return self._by_core[core_id]
        except KeyError:
            raise QueueError("core %d has no queue pair" % core_id) from None

    def all_pairs(self):
        """All queue pairs, ordered by id."""
        return [self._pairs[qp_id] for qp_id in sorted(self._pairs)]

    def __len__(self) -> int:
        return len(self._pairs)
