"""System configuration for the manycore NI design-space study.

This module is the single source of truth for every parameter used by the
simulator, the analytical models and the experiment harness.  Default values
reproduce Table 2 of the paper:

* 64 ARM Cortex-A15-like cores at 2 GHz, 3-wide OoO (modelled only through
  the fixed instruction-overhead costs of QP interactions),
* split 32 KB L1 caches with 3-cycle latency,
* a 16 MB shared block-interleaved NUCA LLC, one bank per tile, 6-cycle
  latency,
* a directory-based non-inclusive MESI protocol,
* 50 ns memory latency,
* a 2D mesh NOC with 16-byte links and 3 cycles per hop (or the NOC-Out
  topology: a flattened butterfly over LLC tiles at 2 tiles/cycle plus
  1 cycle/hop core reduction/dispersion trees),
* one RRPP per mesh row (8 in total),
* a fixed 35 ns inter-node network latency per hop.

The QP-interaction instruction overheads and the pipeline stage occupancies
come from the paper's Table 3 (they are properties of the RMC
microarchitecture, not of this simulator) and are grouped in
:class:`LatencyCalibration` so experiments can override or ablate them.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: Size of a cache block in bytes (constant throughout the paper).
CACHE_BLOCK_BYTES = 64


class NIDesign(enum.Enum):
    """The network-interface placements studied in the paper (§3).

    .. deprecated::
        This enum is kept as a thin compatibility shim.  The source of truth
        for available designs is the component registry
        (:data:`repro.scenario.registry.NI_DESIGNS`); new designs register
        there by name and need no enum member.  Prefer registry names and
        :class:`repro.scenario.ScenarioSpec` in new code.
    """

    EDGE = "edge"
    PER_TILE = "per_tile"
    SPLIT = "split"
    #: Idealized hardware NUMA with a load/store interface (baseline).
    NUMA = "numa"

    @classmethod
    def messaging_designs(cls) -> Tuple["NIDesign", ...]:
        """The QP-based designs (i.e. everything except the NUMA baseline)."""
        return (cls.EDGE, cls.PER_TILE, cls.SPLIT)

    @classmethod
    def coerce(cls, value: object) -> "NIDesign":
        """Accept an NIDesign or a registered design name (CLI parameters).

        Delegates the string→component normalization to the design
        registry's ``resolve`` helper, so unknown names fail with the
        registered inventory (and a suggestion) in the message.
        """
        if isinstance(value, cls):
            return value
        from repro.scenario.registry import NI_DESIGNS

        name = NI_DESIGNS.resolve(value)
        try:
            return cls(name)
        except ValueError:
            raise ConfigurationError(
                "NI design %r is registered but has no NIDesign enum member; "
                "use repro.scenario.ScenarioSpec / MachineBuilder for "
                "registry-only designs" % name
            ) from None

    @property
    def label(self) -> str:
        """The paper's display name for the design (e.g. "NIper-tile")."""
        return _DESIGN_LABELS[self]


def design_name(design: object) -> str:
    """Canonical name of an NI design (enum member or registry name string)."""
    return design.value if isinstance(design, NIDesign) else str(design)


def topology_name(topology: object) -> str:
    """Canonical name of a topology (enum member or registry name string)."""
    return topology.value if isinstance(topology, TopologyKind) else str(topology)


_DESIGN_LABELS = {
    NIDesign.EDGE: "NIedge",
    NIDesign.PER_TILE: "NIper-tile",
    NIDesign.SPLIT: "NIsplit",
    NIDesign.NUMA: "NUMA",
}


class TopologyKind(enum.Enum):
    """On-chip interconnect topologies evaluated in the paper.

    Like :class:`NIDesign`, this enum is a compatibility shim over the
    topology registry (:data:`repro.scenario.registry.TOPOLOGIES`).
    """

    MESH = "mesh"
    NOC_OUT = "noc_out"

    @classmethod
    def coerce(cls, value: object) -> "TopologyKind":
        """Accept a TopologyKind or a registered chip-topology name."""
        if isinstance(value, cls):
            return value
        from repro.scenario.registry import TOPOLOGIES

        name = TOPOLOGIES.resolve(value)
        try:
            return cls(name)
        except ValueError:
            raise ConfigurationError(
                "topology %r is registered but has no TopologyKind enum member; "
                "use repro.scenario.ScenarioSpec for registry-only topologies" % name
            ) from None


class RoutingAlgorithm(enum.Enum):
    """On-chip routing policies (§4.3)."""

    XY = "xy"
    YX = "yx"
    O1TURN = "o1turn"
    #: Class-based deterministic routing [Abts et al.]: memory requests YX,
    #: responses XY.
    CDR = "cdr"
    #: The paper's extension of CDR: directory-sourced traffic gets its own
    #: YX class so that it never turns at the NI/MC edge columns.
    CDR_EXTENDED = "cdr_extended"

    @classmethod
    def coerce(cls, value: object) -> "RoutingAlgorithm":
        """Accept either a RoutingAlgorithm or its string value (CLI parameters)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise ConfigurationError(
                "unknown routing algorithm %r (expected one of %s)"
                % (value, ", ".join(r.value for r in cls))
            ) from None


class MessageClass(enum.Enum):
    """NOC packet classes used by routing policies and statistics."""

    #: Members are singletons, so identity hashing is correct — and C-level,
    #: unlike Enum.__hash__, which shows up in packet-injection profiles
    #: (every send hashes its class into per-class byte counters and the
    #: route-cache key).
    __hash__ = object.__hash__

    MEMORY_REQUEST = "memory_request"
    MEMORY_RESPONSE = "memory_response"
    COHERENCE_REQUEST = "coherence_request"
    COHERENCE_RESPONSE = "coherence_response"
    #: Traffic originating at a directory/LLC slice (extended-CDR class).
    DIRECTORY_SOURCED = "directory_sourced"
    NI_COMMAND = "ni_command"
    NI_DATA = "ni_data"


@dataclass(frozen=True)
class CoreConfig:
    """Core and L1 parameters (Table 2)."""

    count: int = 64
    frequency_ghz: float = 2.0
    l1_size_kib: int = 32
    l1_ways: int = 2
    l1_latency_cycles: int = 3
    l1_mshrs: int = 32

    def validate(self) -> None:
        if self.count <= 0:
            raise ConfigurationError("core count must be positive")
        if self.frequency_ghz <= 0:
            raise ConfigurationError("core frequency must be positive")
        if self.l1_size_kib <= 0 or self.l1_ways <= 0:
            raise ConfigurationError("L1 size/associativity must be positive")
        if self.l1_latency_cycles < 1:
            raise ConfigurationError("L1 latency must be at least one cycle")


@dataclass(frozen=True)
class LlcConfig:
    """Shared NUCA LLC parameters (Table 2)."""

    total_size_mib: int = 16
    ways: int = 16
    latency_cycles: int = 6
    #: Mesh: one bank (slice) per tile.  NOC-Out: 8 banks in a central row.
    banks_mesh: int = 64
    banks_noc_out: int = 8
    #: Bank occupancy per access (limits per-bank throughput; the source of
    #: the contended-LLC bandwidth ceiling of NOC-Out, §6.3.1).  The bank is
    #: busy for the full array access, i.e. it is not internally pipelined.
    bank_occupancy_cycles: int = 6

    def validate(self) -> None:
        if self.total_size_mib <= 0 or self.ways <= 0:
            raise ConfigurationError("LLC size/associativity must be positive")
        if self.latency_cycles < 1:
            raise ConfigurationError("LLC latency must be at least one cycle")
        if self.banks_mesh <= 0 or self.banks_noc_out <= 0:
            raise ConfigurationError("LLC bank counts must be positive")
        if self.bank_occupancy_cycles < 0:
            raise ConfigurationError("LLC bank occupancy cannot be negative")


@dataclass(frozen=True)
class NocConfig:
    """On-chip interconnect parameters (Table 2)."""

    topology: TopologyKind = TopologyKind.MESH
    routing: RoutingAlgorithm = RoutingAlgorithm.CDR_EXTENDED
    link_bytes: int = 16
    mesh_hop_cycles: int = 3
    router_pipeline_cycles: int = 0
    #: NOC-Out flattened-butterfly traversal rate (tiles per cycle).
    noc_out_tiles_per_cycle: int = 2
    #: NOC-Out reduction/dispersion tree latency per hop.
    noc_out_tree_hop_cycles: int = 1

    def validate(self) -> None:
        if self.link_bytes <= 0:
            raise ConfigurationError("NOC link width must be positive")
        if self.mesh_hop_cycles < 1:
            raise ConfigurationError("mesh hop latency must be at least one cycle")
        if self.noc_out_tiles_per_cycle < 1:
            raise ConfigurationError("NOC-Out traversal rate must be >= 1 tile/cycle")
        if self.noc_out_tree_hop_cycles < 1:
            raise ConfigurationError("NOC-Out tree hop latency must be >= 1 cycle")
        if self.router_pipeline_cycles < 0:
            raise ConfigurationError("router pipeline cycles cannot be negative")


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory parameters (Table 2)."""

    latency_ns: float = 50.0
    controllers: int = 8
    #: Per-controller peak bandwidth in GBps.  The paper intentionally
    #: assumes memory is not the bottleneck (HMC-class interfaces).
    bandwidth_gbps_per_controller: float = 160.0

    def validate(self) -> None:
        if self.latency_ns <= 0:
            raise ConfigurationError("memory latency must be positive")
        if self.controllers <= 0:
            raise ConfigurationError("memory controller count must be positive")
        if self.bandwidth_gbps_per_controller <= 0:
            raise ConfigurationError("memory bandwidth must be positive")


@dataclass(frozen=True)
class NIConfig:
    """Network-interface (RMC) parameters."""

    design: NIDesign = NIDesign.SPLIT
    #: RRPPs per chip: one per mesh row in the default configuration.
    rrpp_count: int = 8
    #: Work-queue / completion-queue entries per queue pair (§5).
    wq_entries: int = 128
    cq_entries: int = 128
    #: Unroll rate: cache-block requests generated per cycle by an RGP backend.
    unroll_blocks_per_cycle: int = 1
    #: Whether the NI cache implements the owned-state optimization (§3.4).
    ni_cache_owned_state: bool = True
    #: NI cache capacity in blocks (holds QP entries only).
    ni_cache_blocks: int = 32

    def validate(self) -> None:
        if self.rrpp_count <= 0:
            raise ConfigurationError("RRPP count must be positive")
        if self.wq_entries <= 0 or self.cq_entries <= 0:
            raise ConfigurationError("queue depths must be positive")
        if self.unroll_blocks_per_cycle <= 0:
            raise ConfigurationError("unroll rate must be positive")
        if self.ni_cache_blocks <= 0:
            raise ConfigurationError("NI cache capacity must be positive")


@dataclass(frozen=True)
class RackConfig:
    """Rack-scale fabric parameters (§1, §5)."""

    nodes: int = 512
    torus_dims: Tuple[int, int, int] = (8, 8, 8)
    network_hop_ns: float = 35.0

    def validate(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError("node count must be positive")
        if len(self.torus_dims) != 3 or any(d <= 0 for d in self.torus_dims):
            raise ConfigurationError("torus dimensions must be three positive integers")
        if math.prod(self.torus_dims) != self.nodes:
            raise ConfigurationError(
                "torus dimensions %r do not multiply to the node count %d"
                % (self.torus_dims, self.nodes)
            )
        if self.network_hop_ns <= 0:
            raise ConfigurationError("network hop latency must be positive")


@dataclass(frozen=True)
class LatencyCalibration:
    """Fixed microarchitectural costs from the paper's Table 3 (2 GHz cycles).

    These are not free parameters of this reproduction: they are the
    measured instruction overheads and pipeline occupancies reported by the
    paper for its detailed RMC model, and the analytical breakdown uses them
    verbatim.  The discrete-event simulator uses the *processing* constants as
    stage occupancies; the coherence-induced components (e.g. the 104-cycle
    NIedge WQ write) are not taken from here but emerge from the coherence and
    NOC models.
    """

    #: WQ-entry creation: ~a dozen arithmetic instructions plus two stores.
    wq_write_instruction_cycles: int = 13
    #: CQ poll/read: four instructions including a load.
    cq_read_instruction_cycles: int = 10
    #: Transfer of a QP entry between a core's L1 and a collocated NI cache.
    qp_entry_local_transfer_cycles: int = 5
    #: NUMA baseline: issuing a remote load/store instruction.
    numa_issue_cycles: int = 1
    #: NOC transfer between a tile and the chip edge (average, one way).
    tile_to_edge_transfer_cycles: int = 23
    #: Monolithic RGP occupancy (NIedge / NIper-tile).
    rgp_processing_cycles: int = 7
    #: Monolithic RCP occupancy (NIedge / NIper-tile).
    rcp_processing_cycles: int = 11
    #: Split-design stage occupancies.
    rgp_frontend_cycles: int = 4
    rgp_backend_cycles: int = 4
    rcp_backend_cycles: int = 4
    rcp_frontend_cycles: int = 8
    #: Remote-end servicing (RRPP + LLC miss + DRAM + NOC to/from the MC).
    rrpp_service_cycles: int = 208
    #: Coherence-dominated QP interactions for the edge design (Table 1/3).
    edge_wq_write_cycles: int = 104
    edge_wq_read_cycles: int = 95
    edge_cq_write_cycles: int = 79
    edge_cq_read_cycles: int = 84

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigurationError("calibration constant %s cannot be negative" % f.name)


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated rack-scale node.

    Instances are immutable; use :meth:`replace` to derive variants, e.g.::

        cfg = SystemConfig.paper_defaults()
        per_tile = cfg.replace(ni=cfg.ni_replace(design=NIDesign.PER_TILE))
    """

    cores: CoreConfig = field(default_factory=CoreConfig)
    llc: LlcConfig = field(default_factory=LlcConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    ni: NIConfig = field(default_factory=NIConfig)
    rack: RackConfig = field(default_factory=RackConfig)
    calibration: LatencyCalibration = field(default_factory=LatencyCalibration)
    cache_block_bytes: int = CACHE_BLOCK_BYTES

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls) -> "SystemConfig":
        """The configuration of Table 2 (mesh NOC, extended-CDR routing)."""
        return cls()

    @classmethod
    def noc_out_defaults(cls) -> "SystemConfig":
        """The NOC-Out configuration used for Figures 9 and 10 (§6.3)."""
        base = cls()
        return base.replace(noc=dataclasses.replace(base.noc, topology=TopologyKind.NOC_OUT))

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given top-level sections replaced."""
        return dataclasses.replace(self, **kwargs)

    def with_design(self, design: NIDesign) -> "SystemConfig":
        """Return a copy configured for the given NI design."""
        return self.replace(ni=dataclasses.replace(self.ni, design=design))

    def with_routing(self, routing: RoutingAlgorithm) -> "SystemConfig":
        """Return a copy configured for the given on-chip routing policy."""
        return self.replace(noc=dataclasses.replace(self.noc, routing=routing))

    def with_topology(self, topology: TopologyKind) -> "SystemConfig":
        """Return a copy configured for the given on-chip topology."""
        return self.replace(noc=dataclasses.replace(self.noc, topology=topology))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.cores.validate()
        self.llc.validate()
        self.noc.validate()
        self.memory.validate()
        self.ni.validate()
        self.rack.validate()
        self.calibration.validate()
        if self.cache_block_bytes <= 0:
            raise ConfigurationError("cache block size must be positive")
        side = math.isqrt(self.cores.count)
        if self.noc.topology is TopologyKind.MESH and side * side != self.cores.count:
            raise ConfigurationError(
                "mesh topology requires a square core count, got %d" % self.cores.count
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def mesh_side(self) -> int:
        """Number of tiles along one side of the (square) mesh."""
        return math.isqrt(self.cores.count)

    @property
    def tile_count(self) -> int:
        """Number of core tiles on the chip."""
        return self.cores.count

    @property
    def cycles_per_ns(self) -> float:
        """Core clock cycles per nanosecond."""
        return self.cores.frequency_ghz

    def ns_to_cycles(self, nanoseconds: float) -> int:
        """Convert a latency in nanoseconds to (rounded) core cycles."""
        return int(round(nanoseconds * self.cycles_per_ns))

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a latency in core cycles to nanoseconds."""
        return cycles / self.cycles_per_ns

    @property
    def memory_latency_cycles(self) -> int:
        """DRAM access latency in core cycles (50 ns -> 100 cycles at 2 GHz)."""
        return self.ns_to_cycles(self.memory.latency_ns)

    @property
    def network_hop_cycles(self) -> int:
        """Inter-node network latency per hop in core cycles (35 ns -> 70)."""
        return self.ns_to_cycles(self.rack.network_hop_ns)

    @property
    def blocks_per_noc_packet_flits(self) -> int:
        """Flits needed to move one cache block plus a header over the NOC."""
        return 1 + math.ceil(self.cache_block_bytes / self.noc.link_bytes)

    @property
    def noc_bisection_bandwidth_gbps(self) -> float:
        """Bidirectional mesh bisection bandwidth in GBps.

        An 8x8 mesh with 16-byte links clocked at the core frequency has
        8 links x 16 B x 2 GHz x 2 directions = 512 GBps, matching §6.2.
        """
        links_across_bisection = self.mesh_side
        bytes_per_second = (
            links_across_bisection
            * self.noc.link_bytes
            * self.cores.frequency_ghz
            * 1e9
        )
        return 2.0 * bytes_per_second / 1e9

    def to_dict(self) -> Dict[str, object]:
        """All parameters as a JSON-serializable nested dict (enums by value)."""
        def convert(value: object) -> object:
            if isinstance(value, enum.Enum):
                return value.value
            if isinstance(value, dict):
                return {key: convert(item) for key, item in value.items()}
            if isinstance(value, (list, tuple)):
                return [convert(item) for item in value]
            return value
        return convert(dataclasses.asdict(self))

    def fingerprint(self) -> str:
        """Short content hash identifying this exact configuration.

        Two configs share a fingerprint iff every parameter (including the
        calibration constants) is equal, which makes the fingerprint usable
        as a cache key component for experiment results.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """Human-readable multi-line description (used by the Table-2 experiment)."""
        lines = [
            "Cores      : %d x ARM-like OoO @ %.1f GHz" % (self.cores.count, self.cores.frequency_ghz),
            "L1 caches  : split I/D, %d KiB, %d-way, %d-cycle"
            % (self.cores.l1_size_kib, self.cores.l1_ways, self.cores.l1_latency_cycles),
            "LLC        : shared NUCA, %d MiB, %d-way, %d-cycle, %d banks (mesh)"
            % (self.llc.total_size_mib, self.llc.ways, self.llc.latency_cycles, self.llc.banks_mesh),
            "Coherence  : directory-based non-inclusive MESI",
            "Memory     : %.0f ns latency, %d MCs" % (self.memory.latency_ns, self.memory.controllers),
            "Interconnect: %s, %d-byte links, %d cycles/hop (mesh), routing=%s"
            % (
                topology_name(self.noc.topology),
                self.noc.link_bytes,
                self.noc.mesh_hop_cycles,
                self.noc.routing.value,
            ),
            "NI         : design=%s, %d RRPPs, %d-entry WQ/CQ"
            % (design_name(self.ni.design), self.ni.rrpp_count, self.ni.wq_entries),
            "Rack       : %d nodes, 3D torus %r, %.0f ns/hop"
            % (self.rack.nodes, self.rack.torus_dims, self.rack.network_hop_ns),
        ]
        return "\n".join(lines)
