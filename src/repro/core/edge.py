"""The NIedge design (§3.1).

One monolithic NI (RGP + RCP, plus the NI cache holding QP entries) per mesh
row, placed at the chip's edge next to the network router.  The NI cache is
its own coherence agent with a unique tile id, so every WQ/CQ interaction
between a core and its edge NI bounces the QP block across the chip through
the normal coherence protocol — the source of the ~80 % latency overhead of
Table 1.

On NOC-Out the same design places the NIs at the LLC tiles in the middle of
the chip ("NImiddle" would be the more accurate name, §6.3), which the
placement map handles transparently.
"""

from __future__ import annotations

from repro.coherence.caches import TileCacheComplex
from repro.config import NIDesign
from repro.core.assembly import BaseNIDesign
from repro.scenario.registry import register_ni_design


@register_ni_design("edge", label="NIedge", messaging=True)
class NIEdgeDesign(BaseNIDesign):
    """Monolithic edge-integrated NIs, one per backend site."""

    design = NIDesign.EDGE

    def _build_frontends_and_backends(self) -> None:
        edge_frontends = {}
        for site, node in enumerate(self.placement.backend_nodes):
            entity_id = ("ni_edge", site)
            complex_ = TileCacheComplex(
                entity_id=entity_id,
                node=node,
                ni_cache=self._make_ni_cache("ni_edge[%d].cache" % site),
            )
            self.services.coherence.register_complex(complex_)
            frontend = self._make_frontend(
                "ni_edge[%d]" % site, entity_id=entity_id, node=node, monolithic=True
            )
            backend = self._make_backend("ni_edge[%d]" % site, node=node, injection_at_edge=True)
            frontend.backend = backend
            edge_frontends[site] = frontend
            self.backends.append(backend)
        # Every core's queue pairs are serviced by its row's (column's) edge NI.
        for core_id in range(self.placement.tile_count):
            site = self.placement.edge_ni_index_for_tile(core_id)
            self.frontends[core_id] = edge_frontends[site]

    def edge_complex(self, site: int) -> TileCacheComplex:
        """The coherence entity of the edge NI at ``site`` (for tests)."""
        return self.services.coherence.complex_of(("ni_edge", site))
