"""Factory for NI design assemblies."""

from __future__ import annotations

from repro.config import NIDesign
from repro.core.assembly import BaseNIDesign
from repro.core.base import NodeServices
from repro.core.edge import NIEdgeDesign
from repro.core.per_tile import NIPerTileDesign
from repro.core.placement import ChipPlacement
from repro.core.split import NISplitDesign
from repro.errors import ConfigurationError

_DESIGNS = {
    NIDesign.EDGE: NIEdgeDesign,
    NIDesign.PER_TILE: NIPerTileDesign,
    NIDesign.SPLIT: NISplitDesign,
}


def build_ni_design(services: NodeServices, placement: ChipPlacement) -> BaseNIDesign:
    """Build (but not yet :meth:`~BaseNIDesign.build`) the configured NI design."""
    design = services.config.ni.design
    if design is NIDesign.NUMA:
        raise ConfigurationError(
            "the NUMA baseline has no QP-based NI; use repro.numa.NumaMachine instead"
        )
    try:
        cls = _DESIGNS[design]
    except KeyError:
        raise ConfigurationError("unknown NI design %r" % design) from None
    return cls(services, placement)
