"""Factory for NI design assemblies (registry-backed).

The configured design name is resolved through the component registry
(:data:`repro.scenario.registry.NI_DESIGNS`), so any registered assembly
class — built-in or third-party — is constructible without editing this
module.  The legacy ``NIDesign`` enum values resolve to the same names.
"""

from __future__ import annotations

from repro.core.assembly import BaseNIDesign
from repro.core.base import NodeServices
from repro.core.placement import ChipPlacement
from repro.errors import ConfigurationError
from repro.scenario.registry import NI_DESIGNS


def build_ni_design(services: NodeServices, placement: ChipPlacement) -> BaseNIDesign:
    """Build (but not yet :meth:`~BaseNIDesign.build`) the configured NI design."""
    name = NI_DESIGNS.resolve(services.config.ni.design)
    entry = NI_DESIGNS.entry(name)
    if not entry.metadata.get("messaging", True):
        raise ConfigurationError(
            "the NUMA baseline has no QP-based NI; use repro.numa.NumaMachine instead"
            if name == "numa"
            else "NI design %r has no QP-based NI pipelines (messaging designs: %s)"
            % (name, ", ".join(NI_DESIGNS.names(messaging=True)))
        )
    return entry.component(services, placement)
