"""Shared infrastructure for the NI designs.

:class:`NodeServices` is the interface the NI pipelines use to talk to the
rest of the chip — the NOC fabric, the coherence protocol, the data-path
memory system and the off-chip network port.  The single-node simulator
(:class:`repro.node.soc.ManycoreSoc`) implements it; unit tests implement
lightweight fakes.

:class:`TransferTable` is the NI-internal bookkeeping structure tracking
in-flight transfers (one entry per WQ entry being serviced), shared between
the RGP that creates entries and the RCP that retires them.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

from repro.config import SystemConfig
from repro.errors import ProtocolError
from repro.qp.entries import WorkQueueEntry
from repro.qp.manager import QueuePair


class NodeServices(abc.ABC):
    """Chip-level services available to NI pipelines."""

    #: The simulation kernel.
    sim = None
    #: The node's :class:`~repro.config.SystemConfig`.
    config: SystemConfig = None
    #: The on-chip fabric (:class:`~repro.noc.fabric.NocFabric`).
    fabric = None
    #: The coherence protocol (:class:`~repro.coherence.protocol.CoherenceProtocol`).
    coherence = None
    #: Rack-level identifier of this node (chip).
    node_id: int = 0

    @abc.abstractmethod
    def tile_complex(self, tile_id: int):
        """The :class:`~repro.coherence.caches.TileCacheComplex` of a core tile."""

    @abc.abstractmethod
    def memory_read(self, requester_node: Hashable, addr: int, nbytes: int,
                    on_done: Callable[[], None]) -> None:
        """Read ``nbytes`` at ``addr`` through the LLC/MC data path."""

    @abc.abstractmethod
    def memory_write(self, requester_node: Hashable, addr: int, nbytes: int,
                     on_done: Callable[[], None]) -> None:
        """Write ``nbytes`` at ``addr`` through the LLC/MC data path."""

    @abc.abstractmethod
    def off_chip_send(self, message, from_node: Hashable) -> None:
        """Hand an outgoing :class:`RemoteRequest`/:class:`RemoteResponse` to the network port."""

    @abc.abstractmethod
    def network_port_node(self, near_node: Hashable) -> Hashable:
        """NOC node of the chip-to-chip network port nearest ``near_node``."""

    @abc.abstractmethod
    def translate(self, ctx_id: int, offset: int, length: int) -> int:
        """Translate a context offset to a local physical address."""

    @abc.abstractmethod
    def notify_completion(self, core_id: int) -> None:
        """Tell the core model that a new CQ entry is available to poll."""


@dataclass
class TransferRecord:
    """State of one in-flight transfer (one WQ entry being serviced)."""

    transfer_id: int
    core_id: int
    qp: QueuePair
    entry: WorkQueueEntry
    total_blocks: int
    issued_at: float
    blocks_injected: int = 0
    blocks_completed: int = 0
    completed_at: Optional[float] = None
    #: Arbitrary per-design bookkeeping (e.g. owning backend).
    metadata: dict = field(default_factory=dict)

    @property
    def is_complete(self) -> bool:
        return self.blocks_completed >= self.total_blocks

    @property
    def bytes_total(self) -> int:
        return self.entry.length


class TransferTable:
    """Chip-wide registry of in-flight transfers, indexed by transfer id."""

    def __init__(self) -> None:
        self._records: Dict[int, TransferRecord] = {}
        self._ids = itertools.count()
        self.created = 0
        self.retired = 0

    def create(self, core_id: int, qp: QueuePair, entry: WorkQueueEntry,
               total_blocks: int, issued_at: float) -> TransferRecord:
        """Allocate a record for a new transfer."""
        record = TransferRecord(
            transfer_id=next(self._ids),
            core_id=core_id,
            qp=qp,
            entry=entry,
            total_blocks=total_blocks,
            issued_at=issued_at,
        )
        self._records[record.transfer_id] = record
        self.created += 1
        return record

    def get(self, transfer_id: int) -> TransferRecord:
        try:
            return self._records[transfer_id]
        except KeyError:
            raise ProtocolError("unknown transfer id %d" % transfer_id) from None

    def retire(self, transfer_id: int) -> TransferRecord:
        """Remove a completed transfer from the table."""
        record = self.get(transfer_id)
        if not record.is_complete:
            raise ProtocolError("cannot retire incomplete transfer %d" % transfer_id)
        del self._records[transfer_id]
        self.retired += 1
        return record

    @property
    def in_flight(self) -> int:
        return len(self._records)

    def __contains__(self, transfer_id: int) -> bool:
        return transfer_id in self._records
