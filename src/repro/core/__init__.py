"""The paper's primary contribution: manycore NI microarchitectures.

The package models the soNUMA Remote Memory Controller as three pipelines
(§4.1) — the Request Generation Pipeline (RGP), the Request Completion
Pipeline (RCP) and the Remote Request Processing Pipeline (RRPP) — with the
frontend/backend stage separation of §4.2, and assembles them into the three
NI placements studied in §3:

* :class:`~repro.core.edge.NIEdgeDesign` — monolithic NIs along the chip
  edge next to the network router (one per mesh row),
* :class:`~repro.core.per_tile.NIPerTileDesign` — a full NI collocated with
  every core,
* :class:`~repro.core.split.NISplitDesign` — per-tile frontends plus
  edge-replicated backends (the paper's proposal).
"""

from repro.core.base import NodeServices, TransferRecord, TransferTable
from repro.core.pipelines import NIFrontend, NIBackend, RemoteRequestPipeline
from repro.core.placement import ChipPlacement, build_placement
from repro.core.edge import NIEdgeDesign
from repro.core.per_tile import NIPerTileDesign
from repro.core.split import NISplitDesign
from repro.core.factory import build_ni_design

__all__ = [
    "NodeServices",
    "TransferRecord",
    "TransferTable",
    "NIFrontend",
    "NIBackend",
    "RemoteRequestPipeline",
    "ChipPlacement",
    "build_placement",
    "NIEdgeDesign",
    "NIPerTileDesign",
    "NISplitDesign",
    "build_ni_design",
]
