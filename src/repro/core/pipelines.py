"""The RMC pipelines: RGP/RCP frontends and backends, and the RRPP (§4.1, §4.2).

The same two classes implement all three NI designs; what differs is *where*
their instances are placed and whether the frontend and backend share a node:

* **NIedge / NIper-tile** — frontend and backend are collocated (the
  Frontend-Backend Interface is a pipeline latch), so handing a WQ entry to
  the backend or a completion to the frontend costs nothing extra.
* **NIsplit** — the frontend sits at the core's tile and the backend at the
  chip edge, so the hand-off is an explicit NOC packet (the "Transfer request
  to RGP backend" / "Transfer reply to RCP frontend" rows of Table 3).

Whether the backend can inject packets straight into the chip-to-chip
network (it sits next to the network router) or must first cross the NOC to
reach the router (per-tile placement) is likewise decided by placement, and
is what produces the bandwidth collapse of NIper-tile for bulk transfers
(§6.2).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.config import CACHE_BLOCK_BYTES, LatencyCalibration, MessageClass
from repro.core.base import NodeServices, TransferRecord, TransferTable
from repro.errors import ProtocolError
from repro.qp.entries import CQ_ENTRY_BYTES, WQ_ENTRY_BYTES, CompletionQueueEntry, RemoteOp, WorkQueueEntry
from repro.qp.manager import QueuePair
from repro.sim.resource import Pipeline
from repro.sim.stats import StatAccumulator
from repro.sonuma.unroll import block_count, unroll_blocks
from repro.sonuma.wire import REQUEST_HEADER_BYTES, RESPONSE_HEADER_BYTES, RemoteRequest, RemoteResponse


class NIFrontend:
    """The core-facing half of an NI: WQ entry loads and CQ entry writes.

    One frontend serves one or more queue pairs.  It owns (a share of) the NI
    cache through its coherence entity, so every WQ read and CQ write goes
    through the coherence protocol with the latency appropriate to its
    placement (local 5-cycle transfers when collocated with the core,
    chip-crossing coherence transactions when at the edge).
    """

    def __init__(
        self,
        name: str,
        entity_id: Hashable,
        node: Hashable,
        services: NodeServices,
        calibration: LatencyCalibration,
        monolithic: bool,
        transfers: TransferTable,
    ) -> None:
        self.name = name
        self.entity_id = entity_id
        self.node = node
        self.services = services
        self.calibration = calibration
        self.monolithic = monolithic
        self.transfers = transfers
        self.backend: Optional["NIBackend"] = None
        sim = services.sim
        rgp_cycles = (
            max(1, calibration.rgp_processing_cycles - calibration.rgp_backend_cycles)
            if monolithic
            else calibration.rgp_frontend_cycles
        )
        rcp_cycles = (
            max(1, calibration.rcp_processing_cycles - calibration.rcp_backend_cycles)
            if monolithic
            else calibration.rcp_frontend_cycles
        )
        self.rgp_pipe = Pipeline(sim, 1, rgp_cycles, name + "-rgp-fe")
        self.rcp_pipe = Pipeline(sim, 1, rcp_cycles, name + "-rcp-fe")
        # Statistics
        self.doorbells = 0
        self.completions = 0

    # ------------------------------------------------------------------
    # Request generation (frontend stages of Fig. 4a)
    # ------------------------------------------------------------------
    def post_doorbell(self, qp: QueuePair, core_id: int, entry: WorkQueueEntry, wq_index: int) -> None:
        """A core finished writing a WQ entry; schedule the frontend to pick it up."""
        if self.backend is None:
            raise ProtocolError("frontend %s has no backend attached" % self.name)
        self.doorbells += 1
        self.rgp_pipe.issue_then(self._load_wq_entry, qp, core_id, entry, wq_index)

    def _load_wq_entry(self, qp: QueuePair, core_id: int, entry: WorkQueueEntry, wq_index: int) -> None:
        block_addr = qp.wq.entry_block_address(wq_index)
        self.services.coherence.access(
            self.entity_id, "ni", block_addr, write=False,
            on_done=lambda result: self._wq_loaded(qp, core_id, entry),
        )

    def _wq_loaded(self, qp: QueuePair, core_id: int, entry: WorkQueueEntry) -> None:
        if self.backend.node == self.node:
            # Frontend-Backend Interface is a latch: no NOC transfer.
            self.backend.start_transfer(entry, qp, core_id, self)
        else:
            self.services.fabric.send(
                self.node, self.backend.node, WQ_ENTRY_BYTES, MessageClass.NI_COMMAND,
                lambda packet: self.backend.start_transfer(entry, qp, core_id, self),
            )

    # ------------------------------------------------------------------
    # Request completion (frontend stages of Fig. 4b)
    # ------------------------------------------------------------------
    def complete_transfer(self, record: TransferRecord) -> None:
        """All blocks of a transfer have arrived; write its CQ entry."""
        self.rcp_pipe.issue_then(self._write_cq, record)

    def _write_cq(self, record: TransferRecord) -> None:
        cq = record.qp.cq
        block_addr = cq.tail_block_address()
        self.services.coherence.access(
            self.entity_id, "ni", block_addr, write=True,
            on_done=lambda result: self._cq_written(record),
        )

    def _cq_written(self, record: TransferRecord) -> None:
        record.completed_at = self.services.sim.now
        record.qp.cq.post(
            CompletionQueueEntry(
                wq_index=record.entry.wq_index or 0,
                length=record.entry.length,
                completed_at=self.services.sim.now,
            )
        )
        self.completions += 1
        if record.transfer_id in self.transfers:
            self.transfers.retire(record.transfer_id)
        self.services.notify_completion(record.core_id)


class NIBackend:
    """The network-facing half of an NI: unrolling, injection and data placement.

    The backend owns the RGP stages that unroll a WQ entry into
    cache-block-sized request packets (one per cycle) and the RCP stages that
    receive response packets, store remote data into local memory and retire
    transfers.
    """

    def __init__(
        self,
        name: str,
        node: Hashable,
        services: NodeServices,
        calibration: LatencyCalibration,
        transfers: TransferTable,
        injection_at_edge: bool,
        unroll_blocks_per_cycle: int = 1,
        block_bytes: int = CACHE_BLOCK_BYTES,
    ) -> None:
        self.name = name
        self.node = node
        self.services = services
        self.calibration = calibration
        self.transfers = transfers
        self.injection_at_edge = injection_at_edge
        self.block_bytes = block_bytes
        sim = services.sim
        interval = 1.0 / max(1, unroll_blocks_per_cycle)
        self.rgp_pipe = Pipeline(sim, interval, calibration.rgp_backend_cycles, name + "-rgp-be")
        self.rcp_pipe = Pipeline(sim, interval, calibration.rcp_backend_cycles, name + "-rcp-be")
        # Statistics
        self.transfers_started = 0
        self.blocks_injected = 0
        self.blocks_completed = 0
        self.payload_bytes_completed = 0

    # ------------------------------------------------------------------
    # RGP backend (Fig. 4a): unroll and inject
    # ------------------------------------------------------------------
    def start_transfer(self, entry: WorkQueueEntry, qp: QueuePair, core_id: int,
                       frontend: NIFrontend) -> TransferRecord:
        """Create the in-flight record and unroll the request."""
        record = self.transfers.create(
            core_id=core_id,
            qp=qp,
            entry=entry,
            total_blocks=block_count(entry.length, self.block_bytes),
            issued_at=entry.posted_at,
        )
        record.metadata["frontend"] = frontend
        record.metadata["backend"] = self
        self.transfers_started += 1
        for request in unroll_blocks(entry, self.services.node_id, record.transfer_id, self.block_bytes):
            self.rgp_pipe.issue_then(self._inject_request, request, record)
        return record

    def _inject_request(self, request: RemoteRequest, record: TransferRecord) -> None:
        record.blocks_injected += 1
        self.blocks_injected += 1
        if request.op is RemoteOp.WRITE:
            # Remote writes carry local data: read it from memory first.
            addr = record.entry.local_buffer + request.block_index * self.block_bytes
            self.services.memory_read(
                self.node, addr, self.block_bytes,
                lambda: self._send_off_chip(request),
            )
        else:
            self._send_off_chip(request)

    def _send_off_chip(self, request: RemoteRequest) -> None:
        if self.injection_at_edge:
            self.services.off_chip_send(request, self.node)
            return
        # Per-tile placement: the request packet must cross the NOC to reach
        # the network router at the chip edge (two flits for reads, §6.1.3).
        port = self.services.network_port_node(self.node)
        payload = REQUEST_HEADER_BYTES
        if request.op is RemoteOp.WRITE:
            payload += self.block_bytes
        self.services.fabric.send(
            self.node, port, payload, MessageClass.NI_COMMAND,
            lambda packet: self.services.off_chip_send(request, port),
        )

    # ------------------------------------------------------------------
    # RCP backend (Fig. 4b): receive, store, retire
    # ------------------------------------------------------------------
    def deliver_response(self, response: RemoteResponse) -> None:
        """A response for one of this backend's transfers arrived at the network port."""
        if self.injection_at_edge:
            self._receive(response)
            return
        # Per-tile placement: the response is first routed to the source NI
        # before its payload can be sent to its home LLC tile (§6.2).
        port = self.services.network_port_node(self.node)
        payload = RESPONSE_HEADER_BYTES
        if response.op is RemoteOp.READ:
            payload += self.block_bytes
        self.services.fabric.send(
            port, self.node, payload, MessageClass.NI_DATA,
            lambda packet: self._receive(response),
        )

    def _receive(self, response: RemoteResponse) -> None:
        self.rcp_pipe.issue_then(self._process_response, response)

    def _process_response(self, response: RemoteResponse) -> None:
        record = self.transfers.get(response.transfer_id)
        if response.op is RemoteOp.READ:
            addr = record.entry.local_buffer + response.block_index * self.block_bytes
            self.services.memory_write(
                self.node, addr, self.block_bytes,
                lambda: self._block_done(record),
            )
        else:
            self._block_done(record)

    def _block_done(self, record: TransferRecord) -> None:
        record.blocks_completed += 1
        self.blocks_completed += 1
        self.payload_bytes_completed += self.block_bytes
        if not record.is_complete:
            return
        frontend: NIFrontend = record.metadata["frontend"]
        if frontend.node == self.node:
            frontend.complete_transfer(record)
        else:
            # Ship the new CQ entry to the frontend over the NOC (NIsplit).
            self.services.fabric.send(
                self.node, frontend.node, CQ_ENTRY_BYTES, MessageClass.NI_COMMAND,
                lambda packet: frontend.complete_transfer(record),
            )


class RemoteRequestPipeline:
    """The RRPP: services one-sided requests arriving from remote nodes (§4.1).

    RRPPs never interact with the cores, so in every design they sit where
    they can reach the full NOC bisection — the chip edge next to the network
    router (mesh) or the LLC tiles (NOC-Out).
    """

    #: Protocol processing occupancy per request (the RRPP is the simplest pipeline).
    PROCESSING_CYCLES = 4

    def __init__(
        self,
        index: int,
        node: Hashable,
        services: NodeServices,
        block_bytes: int = CACHE_BLOCK_BYTES,
    ) -> None:
        self.index = index
        self.node = node
        self.services = services
        self.block_bytes = block_bytes
        self.pipe = Pipeline(services.sim, 1, self.PROCESSING_CYCLES, "rrpp%d" % index)
        self.service_latency = StatAccumulator("rrpp%d-latency" % index)
        self.requests_received = 0
        self.responses_sent = 0
        self.payload_bytes_serviced = 0

    def handle_request(self, request: RemoteRequest) -> None:
        """An incoming remote request was steered to this RRPP."""
        self.requests_received += 1
        arrival = self.services.sim.now
        self.pipe.issue_then(self._process, request, arrival)

    def _process(self, request: RemoteRequest, arrival: float) -> None:
        addr = self.services.translate(request.ctx_id, request.offset, self.block_bytes)
        if request.op is RemoteOp.READ:
            self.services.memory_read(
                self.node, addr, self.block_bytes,
                lambda: self._respond(request, arrival),
            )
        else:
            self.services.memory_write(
                self.node, addr, self.block_bytes,
                lambda: self._respond(request, arrival),
            )

    def _respond(self, request: RemoteRequest, arrival: float) -> None:
        latency = self.services.sim.now - arrival
        self.service_latency.add(latency)
        self.responses_sent += 1
        if request.op is RemoteOp.READ:
            self.payload_bytes_serviced += self.block_bytes
        self.services.off_chip_send(request.make_response(), self.node)
