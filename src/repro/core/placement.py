"""Placement of NIs, LLC slices, memory controllers and network ports (§4.2, §4.3).

For the mesh, the NIs (RRPPs and RGP/RCP backends) occupy the west edge
column next to the chip-to-chip network router, one per row; the memory
controllers occupy the east edge column; the frontend of a tile maps to its
row's backend (minimizing frontend-to-backend distance).

For NOC-Out, the RRPPs and backends are collocated with the LLC tiles in the
chip's central row (their rich flattened-butterfly connectivity provides the
full bisection bandwidth), memory controllers hang off the same tiles, and a
core's frontend maps to its column's LLC tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List

from repro.config import SystemConfig, TopologyKind
from repro.errors import PlacementError
from repro.noc.mesh import MeshTopology
from repro.noc.nocout import NocOutTopology
from repro.noc.topology import Topology
from repro.scenario.registry import TOPOLOGIES, register_topology


@dataclass
class ChipPlacement:
    """Where every agent of the chip sits on the NOC."""

    topology: Topology
    kind: TopologyKind
    #: NOC node of each core tile, indexed by tile id.
    tile_nodes: List[Hashable]
    #: NOC node of each LLC slice (and its directory), indexed by slice id.
    llc_nodes: List[Hashable]
    #: NOC node of each memory controller.
    mc_nodes: List[Hashable]
    #: NOC node of each RRPP.
    rrpp_nodes: List[Hashable]
    #: NOC node of each RGP/RCP backend site (also the edge-NI sites).
    backend_nodes: List[Hashable]

    # ------------------------------------------------------------------
    # Derived lookups
    # ------------------------------------------------------------------
    @property
    def tile_count(self) -> int:
        return len(self.tile_nodes)

    @property
    def llc_slice_count(self) -> int:
        return len(self.llc_nodes)

    def backend_index_for_tile(self, tile_id: int) -> int:
        """Backend servicing a tile's frontend (row mapping on mesh, column on NOC-Out)."""
        self._check_tile(tile_id)
        side = self._side()
        if self.kind is TopologyKind.MESH:
            return tile_id // side
        return tile_id % side

    def edge_ni_index_for_tile(self, tile_id: int) -> int:
        """Edge NI servicing a tile's queue pairs in the NIedge design."""
        return self.backend_index_for_tile(tile_id)

    def network_port_node(self, near_node: Hashable) -> Hashable:
        """The NOC node through which ``near_node`` reaches the chip-to-chip router."""
        if self.kind is TopologyKind.MESH:
            if not (isinstance(near_node, tuple) and len(near_node) == 2):
                raise PlacementError("mesh nodes are (x, y) coordinates, got %r" % (near_node,))
            _, row = near_node
            return (0, row)
        # NOC-Out: everything reaches the router through its column's LLC tile.
        if near_node[0] == "llc":
            return near_node
        if near_node[0] in ("core", "mc"):
            return ("llc", near_node[1])
        if near_node[0] == "netrouter":
            return ("llc", 0)
        raise PlacementError("unknown NOC-Out node %r" % (near_node,))

    def _side(self) -> int:
        if self.kind is TopologyKind.MESH:
            return self.topology.side
        return self.topology.columns

    def _check_tile(self, tile_id: int) -> None:
        if not 0 <= tile_id < self.tile_count:
            raise PlacementError("tile id %d outside the chip (%d tiles)" % (tile_id, self.tile_count))


def build_placement(config: SystemConfig) -> ChipPlacement:
    """Build the placement for the configured topology (registry-backed).

    The configured :class:`TopologyKind` (or raw name) resolves through the
    topology registry, so registered chip topologies plug in without editing
    this module; non-chip (rack-scope) topologies are rejected by name.
    """
    name = TOPOLOGIES.resolve(config.noc.topology)
    entry = TOPOLOGIES.entry(name)
    if entry.metadata.get("scope", "chip") != "chip":
        raise PlacementError(
            "topology %r is %s-scoped and has no chip placement (chip topologies: %s)"
            % (name, entry.metadata.get("scope"), ", ".join(TOPOLOGIES.names(scope="chip")))
        )
    return entry.component(config)


@register_topology("mesh", scope="chip", kind="mesh")
def _mesh_placement(config: SystemConfig) -> ChipPlacement:
    """2D mesh: NIs on the west edge column, MCs on the east (Table 2)."""
    side = config.mesh_side
    topology = MeshTopology(side, config.noc)
    tile_nodes = [topology.tile_coord(t) for t in range(config.tile_count)]
    llc_nodes = list(tile_nodes)  # one LLC slice per tile (Table 2)
    mc_column = topology.mc_edge_column()
    ni_column = topology.ni_edge_column()
    mc_nodes = [(mc_column, row) for row in range(min(side, config.memory.controllers))]
    rrpp_nodes = [(ni_column, row) for row in range(min(side, config.ni.rrpp_count))]
    backend_nodes = [(ni_column, row) for row in range(side)]
    return ChipPlacement(
        topology=topology,
        kind=TopologyKind.MESH,
        tile_nodes=tile_nodes,
        llc_nodes=llc_nodes,
        mc_nodes=mc_nodes,
        rrpp_nodes=rrpp_nodes,
        backend_nodes=backend_nodes,
    )


@register_topology("noc_out", scope="chip", kind="noc_out")
def _noc_out_placement(config: SystemConfig) -> ChipPlacement:
    """NOC-Out: flattened-butterfly LLC row plus per-column core trees (§6.3)."""
    columns = config.mesh_side
    cores_per_column = config.tile_count // columns
    topology = NocOutTopology(columns=columns, cores_per_column=cores_per_column, noc_config=config.noc)
    tile_nodes = [topology.core_node(t) for t in range(config.tile_count)]
    llc_nodes = [topology.llc_node(i) for i in range(config.llc.banks_noc_out)]
    mc_nodes = [topology.mc_node(i) for i in range(min(columns, config.memory.controllers))]
    rrpp_nodes = [topology.llc_node(i) for i in range(min(columns, config.ni.rrpp_count))]
    backend_nodes = [topology.llc_node(i) for i in range(columns)]
    return ChipPlacement(
        topology=topology,
        kind=TopologyKind.NOC_OUT,
        tile_nodes=tile_nodes,
        llc_nodes=llc_nodes,
        mc_nodes=mc_nodes,
        rrpp_nodes=rrpp_nodes,
        backend_nodes=backend_nodes,
    )
