"""The NIsplit design (§3.3, §4.2) — the paper's proposal.

Each tile hosts an RGP/RCP *frontend* (with the NI cache attached behind the
core's L1), so QP interactions are local; the RGP/RCP *backends* are
replicated across the chip edge next to the network router, so unrolling and
data placement happen where the full NOC bisection is available.  The
Frontend-Backend Interface becomes an explicit NOC message in each direction
(a valid WQ entry travelling to the backend; a new CQ entry travelling back
to the frontend).

The frontend-to-backend mapping is the paper's simple policy: all frontends
of a NOC row (mesh) or column (NOC-Out) map to that row's/column's backend,
minimizing frontend-to-backend distance (§4.3).
"""

from __future__ import annotations

from repro.config import NIDesign
from repro.core.assembly import BaseNIDesign
from repro.errors import PlacementError
from repro.scenario.registry import register_ni_design


@register_ni_design("split", label="NIsplit", messaging=True)
class NISplitDesign(BaseNIDesign):
    """Per-tile frontends with edge-replicated backends."""

    design = NIDesign.SPLIT

    def _build_frontends_and_backends(self) -> None:
        for site, node in enumerate(self.placement.backend_nodes):
            port = self.placement.network_port_node(node)
            self.backends.append(
                self._make_backend(
                    "ni_split_be[%d]" % site,
                    node=node,
                    injection_at_edge=(port == node),
                )
            )
        for core_id in range(self.placement.tile_count):
            node = self.placement.tile_nodes[core_id]
            complex_ = self.services.tile_complex(core_id)
            if complex_ is None:
                raise PlacementError("tile %d has no cache complex registered" % core_id)
            if complex_.ni_cache is None:
                complex_.ni_cache = self._make_ni_cache("ni_split_fe[%d].cache" % core_id)
            frontend = self._make_frontend(
                "ni_split_fe[%d]" % core_id,
                entity_id=complex_.entity_id,
                node=node,
                monolithic=False,
            )
            frontend.backend = self.backends[self.placement.backend_index_for_tile(core_id)]
            self.frontends[core_id] = frontend
