"""Common machinery for assembling an NI design on a chip.

A *design assembly* owns the chip's NI frontends, backends and RRPPs, knows
which frontend services which core's queue pairs, and routes incoming
responses/requests to the right pipeline.  The concrete subclasses
(:class:`~repro.core.edge.NIEdgeDesign`,
:class:`~repro.core.per_tile.NIPerTileDesign`,
:class:`~repro.core.split.NISplitDesign`) only differ in where they place
the pipelines and which coherence entity backs each frontend's NI cache.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from repro.coherence.caches import NICache
from repro.config import NIDesign, SystemConfig
from repro.core.base import NodeServices, TransferTable
from repro.core.pipelines import NIBackend, NIFrontend, RemoteRequestPipeline
from repro.core.placement import ChipPlacement
from repro.errors import PlacementError
from repro.sonuma.wire import RemoteRequest, RemoteResponse


class BaseNIDesign(abc.ABC):
    """Abstract NI design assembly."""

    design = NIDesign.SPLIT

    def __init__(self, services: NodeServices, placement: ChipPlacement) -> None:
        self.services = services
        self.placement = placement
        self.config: SystemConfig = services.config
        self.transfers = TransferTable()
        self.frontends: Dict[int, NIFrontend] = {}
        self.backends: List[NIBackend] = []
        self.rrpps: List[RemoteRequestPipeline] = []
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> "BaseNIDesign":
        """Instantiate pipelines and register coherence entities."""
        if self._built:
            return self
        self._build_rrpps()
        self._build_frontends_and_backends()
        self._built = True
        return self

    def _build_rrpps(self) -> None:
        for index, node in enumerate(self.placement.rrpp_nodes):
            self.rrpps.append(
                RemoteRequestPipeline(
                    index=index,
                    node=node,
                    services=self.services,
                    block_bytes=self.config.cache_block_bytes,
                )
            )

    @abc.abstractmethod
    def _build_frontends_and_backends(self) -> None:
        """Create the design-specific RGP/RCP frontends and backends."""

    def _make_ni_cache(self, name: str) -> NICache:
        return NICache(
            name,
            access_latency=2,
            owned_state_enabled=self.config.ni.ni_cache_owned_state,
        )

    def _make_backend(self, name: str, node, injection_at_edge: bool) -> NIBackend:
        return NIBackend(
            name=name,
            node=node,
            services=self.services,
            calibration=self.config.calibration,
            transfers=self.transfers,
            injection_at_edge=injection_at_edge,
            unroll_blocks_per_cycle=self.config.ni.unroll_blocks_per_cycle,
            block_bytes=self.config.cache_block_bytes,
        )

    def _make_frontend(self, name: str, entity_id, node, monolithic: bool) -> NIFrontend:
        return NIFrontend(
            name=name,
            entity_id=entity_id,
            node=node,
            services=self.services,
            calibration=self.config.calibration,
            monolithic=monolithic,
            transfers=self.transfers,
        )

    # ------------------------------------------------------------------
    # Runtime routing
    # ------------------------------------------------------------------
    def frontend_for_core(self, core_id: int) -> NIFrontend:
        """The NI frontend servicing a given core's queue pairs."""
        try:
            return self.frontends[core_id]
        except KeyError:
            raise PlacementError("no frontend registered for core %d" % core_id) from None

    def deliver_response(self, response: RemoteResponse) -> None:
        """Route an arriving response to the backend owning its transfer."""
        record = self.transfers.get(response.transfer_id)
        backend: NIBackend = record.metadata["backend"]
        backend.deliver_response(response)

    def rrpp_for_request(self, request: RemoteRequest) -> RemoteRequestPipeline:
        """Address-interleaved steering of incoming requests to RRPPs (§4.3).

        The chosen RRPP is row-aligned with the home LLC slice of the block
        the request touches, so the data path never turns at the chip edge.
        """
        block = request.offset // self.config.cache_block_bytes
        group = max(1, self.placement.llc_slice_count // len(self.rrpps))
        index = (block // group) % len(self.rrpps)
        return self.rrpps[index]

    def deliver_remote_request(self, request: RemoteRequest) -> None:
        """Hand an incoming remote request to its RRPP."""
        self.rrpp_for_request(request).handle_request(request)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def total_blocks_completed(self) -> int:
        return sum(backend.blocks_completed for backend in self.backends)

    def total_payload_bytes_completed(self) -> int:
        return sum(backend.payload_bytes_completed for backend in self.backends)

    def total_rrpp_payload_bytes(self) -> int:
        return sum(rrpp.payload_bytes_serviced for rrpp in self.rrpps)

    def average_rrpp_latency(self) -> float:
        """Average RRPP servicing latency (the remote-end component of §5)."""
        samples = [rrpp.service_latency for rrpp in self.rrpps if rrpp.service_latency.count]
        if not samples:
            return 0.0
        total = sum(acc.total for acc in samples)
        count = sum(acc.count for acc in samples)
        return total / count
