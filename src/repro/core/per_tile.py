"""The NIper-tile design (§3.2).

A full NI (RGP + RCP + NI cache) is collocated with every core.  The NI cache
attaches to the back side of the core's L1, so QP interactions stay local
(the 5-cycle entry transfer of Table 3), but large transfers are unrolled at
the source tile: every cache-block request and response crosses the NOC
between the tile and the network router, flooding the network and collapsing
bandwidth for bulk transfers (§6.2).
"""

from __future__ import annotations

from repro.config import NIDesign
from repro.core.assembly import BaseNIDesign
from repro.errors import PlacementError
from repro.scenario.registry import register_ni_design


@register_ni_design("per_tile", label="NIper-tile", messaging=True)
class NIPerTileDesign(BaseNIDesign):
    """One complete NI per core tile."""

    design = NIDesign.PER_TILE

    def _build_frontends_and_backends(self) -> None:
        for core_id in range(self.placement.tile_count):
            node = self.placement.tile_nodes[core_id]
            complex_ = self.services.tile_complex(core_id)
            if complex_ is None:
                raise PlacementError("tile %d has no cache complex registered" % core_id)
            if complex_.ni_cache is None:
                complex_.ni_cache = self._make_ni_cache("ni_tile[%d].cache" % core_id)
            frontend = self._make_frontend(
                "ni_tile[%d]" % core_id,
                entity_id=complex_.entity_id,
                node=node,
                monolithic=True,
            )
            port = self.placement.network_port_node(node)
            backend = self._make_backend(
                "ni_tile[%d]" % core_id,
                node=node,
                injection_at_edge=(port == node),
            )
            frontend.backend = backend
            self.frontends[core_id] = frontend
            self.backends.append(backend)
