"""A distributed graph-traversal workload (§1, §2.1).

Graph analytics is the paper's second motivating application class: graphs
are hard to partition, so once the dataset exceeds one node's memory a large
fraction of every traversal step touches adjacency lists stored on other
nodes.  Those accesses are coarse-grained (an adjacency list of a few
hundred neighbours spans kilobytes), which is exactly the regime where the
RGP's hardware unrolling and the NI backend placement matter.

The workload builds a synthetic power-law graph, hash-partitions its
vertices across the rack, and runs a bounded breadth-first traversal from
the simulated node: visiting a remote vertex issues a one-sided remote read
of that vertex's adjacency list (one WQ entry, unrolled into cache-block
requests by the RGP).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.config import NIDesign, SystemConfig
from repro.errors import WorkloadError
from repro.node.core_model import CoreModel
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry

GRAPH_CTX_ID = 0
PARTITION_BYTES = 64 * 1024 * 1024
LOCAL_BUFFER_BASE = 0xB000_0000
#: Bytes per encoded edge (destination vertex id).
EDGE_BYTES = 8


@dataclass
class GraphResult:
    """Outcome of one graph-traversal run."""

    design: NIDesign
    vertices_visited: int
    remote_vertex_fetches: int
    edges_traversed: int
    bytes_fetched: int
    elapsed_cycles: float
    frequency_ghz: float

    @property
    def edges_per_microsecond(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.edges_traversed / self.elapsed_cycles * self.frequency_ghz * 1e3

    @property
    def fetch_bandwidth_gbps(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.bytes_fetched / self.elapsed_cycles * self.frequency_ghz


class SyntheticPowerLawGraph:
    """A small deterministic power-law graph (preferential attachment)."""

    def __init__(self, vertices: int = 4096, edges_per_vertex: int = 16, seed: int = 3) -> None:
        if vertices <= 2 or edges_per_vertex <= 0:
            raise WorkloadError("graph needs at least 3 vertices and 1 edge per vertex")
        self.vertices = vertices
        self.edges_per_vertex = edges_per_vertex
        rng = random.Random(seed)
        self.adjacency: Dict[int, List[int]] = {0: [1], 1: [0]}
        targets: List[int] = [0, 1]
        for vertex in range(2, vertices):
            neighbours = set()
            for _ in range(min(edges_per_vertex, len(targets))):
                neighbours.add(targets[rng.randrange(len(targets))])
            self.adjacency[vertex] = sorted(neighbours)
            for neighbour in neighbours:
                targets.append(neighbour)
            targets.append(vertex)
            for neighbour in neighbours:
                self.adjacency.setdefault(neighbour, []).append(vertex)

    def degree(self, vertex: int) -> int:
        return len(self.adjacency.get(vertex, ()))

    def adjacency_bytes(self, vertex: int) -> int:
        """Size of the vertex's adjacency list in memory."""
        return max(EDGE_BYTES * self.degree(vertex), EDGE_BYTES)


class GraphTraversalWorkload:
    """Bounded BFS over a hash-partitioned synthetic graph."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        graph: Optional[SyntheticPowerLawGraph] = None,
        rack_nodes: Optional[int] = None,
        active_cores: int = 4,
        max_vertices: int = 200,
        seed: int = 5,
    ) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        self.graph = graph if graph is not None else SyntheticPowerLawGraph()
        self.rack_nodes = rack_nodes if rack_nodes is not None else self.config.rack.nodes
        if active_cores <= 0 or active_cores > self.config.cores.count:
            raise WorkloadError("active core count must be in [1, %d]" % self.config.cores.count)
        if max_vertices <= 0:
            raise WorkloadError("must visit at least one vertex")
        self.active_cores = active_cores
        self.max_vertices = max_vertices
        self._rng = random.Random(seed)

    def owner_node(self, vertex: int) -> int:
        """Hash partitioning of vertices across the rack."""
        return (vertex * 2654435761) % self.rack_nodes

    def vertex_offset(self, vertex: int) -> int:
        slots = PARTITION_BYTES // 4096
        return (vertex % slots) * 4096

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _plan_traversal(self) -> List[int]:
        """BFS order from vertex 0, bounded to ``max_vertices`` vertices."""
        frontier = [0]
        visited = {0}
        order: List[int] = []
        while frontier and len(order) < self.max_vertices:
            vertex = frontier.pop(0)
            order.append(vertex)
            for neighbour in self.graph.adjacency.get(vertex, ()):
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append(neighbour)
        return order

    def _entries_for_core(self, core_id: int, vertices: List[int], stats: dict) -> Iterator[WorkQueueEntry]:
        for index, vertex in enumerate(vertices):
            stats["visited"] += 1
            stats["edges"] += self.graph.degree(vertex)
            owner = self.owner_node(vertex)
            if owner == 0:
                continue  # local partition, no remote fetch needed
            nbytes = self.graph.adjacency_bytes(vertex)
            stats["remote"] += 1
            stats["bytes"] += nbytes
            yield WorkQueueEntry(
                op=RemoteOp.READ,
                ctx_id=GRAPH_CTX_ID,
                dst_node=owner,
                remote_offset=self.vertex_offset(vertex),
                local_buffer=LOCAL_BUFFER_BASE + core_id * (1 << 20) + index * 4096,
                length=nbytes,
            )

    def run(self) -> GraphResult:
        """Traverse the graph and report edge throughput and fetch bandwidth."""
        soc = ManycoreSoc(self.config)
        soc.register_context(GRAPH_CTX_ID, PARTITION_BYTES)
        RemoteEndEmulator(
            soc,
            hops=2,
            rate_match_incoming=True,
            incoming_ctx_id=GRAPH_CTX_ID,
            incoming_region_bytes=PARTITION_BYTES,
        )
        order = self._plan_traversal()
        shards = [order[i::self.active_cores] for i in range(self.active_cores)]
        stats = {"visited": 0, "remote": 0, "edges": 0, "bytes": 0}
        for core_id, shard in enumerate(shards):
            if not shard:
                continue
            qp = soc.create_queue_pair(core_id)
            core = CoreModel(core_id, soc, qp)
            core.start(self._entries_for_core(core_id, shard, stats), max_outstanding=8)
        soc.run()
        return GraphResult(
            design=self.config.ni.design,
            vertices_visited=stats["visited"],
            remote_vertex_fetches=stats["remote"],
            edges_traversed=stats["edges"],
            bytes_fetched=stats["bytes"],
            elapsed_cycles=soc.sim.now,
            frequency_ghz=self.config.cores.frequency_ghz,
        )
