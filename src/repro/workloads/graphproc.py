"""A distributed graph-traversal workload (§1, §2.1).

Graph analytics is the paper's second motivating application class: graphs
are hard to partition, so once the dataset exceeds one node's memory a large
fraction of every traversal step touches adjacency lists stored on other
nodes.  Those accesses are coarse-grained (an adjacency list of a few
hundred neighbours spans kilobytes), which is exactly the regime where the
RGP's hardware unrolling and the NI backend placement matter.

The workload builds a synthetic power-law graph, hash-partitions its
vertices across the rack, and runs a bounded breadth-first traversal from
the simulated node: visiting a remote vertex issues a one-sided remote read
of that vertex's adjacency list (one WQ entry, unrolled into cache-block
requests by the RGP).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.config import NIDesign, SystemConfig, design_name
from repro.errors import WorkloadError
from repro.node.core_model import CoreModel
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.scenario.registry import register_workload
from repro.scenario.workload import Workload

GRAPH_CTX_ID = 0
PARTITION_BYTES = 64 * 1024 * 1024
LOCAL_BUFFER_BASE = 0xB000_0000
#: Bytes per encoded edge (destination vertex id).
EDGE_BYTES = 8


@dataclass
class GraphResult:
    """Outcome of one graph-traversal run."""

    design: NIDesign
    vertices_visited: int
    remote_vertex_fetches: int
    edges_traversed: int
    bytes_fetched: int
    elapsed_cycles: float
    frequency_ghz: float

    @property
    def edges_per_microsecond(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.edges_traversed / self.elapsed_cycles * self.frequency_ghz * 1e3

    @property
    def fetch_bandwidth_gbps(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.bytes_fetched / self.elapsed_cycles * self.frequency_ghz


class SyntheticPowerLawGraph:
    """A small deterministic power-law graph (preferential attachment)."""

    def __init__(self, vertices: int = 4096, edges_per_vertex: int = 16, seed: int = 3) -> None:
        if vertices <= 2 or edges_per_vertex <= 0:
            raise WorkloadError("graph needs at least 3 vertices and 1 edge per vertex")
        self.vertices = vertices
        self.edges_per_vertex = edges_per_vertex
        rng = random.Random(seed)
        self.adjacency: Dict[int, List[int]] = {0: [1], 1: [0]}
        targets: List[int] = [0, 1]
        for vertex in range(2, vertices):
            neighbours = set()
            for _ in range(min(edges_per_vertex, len(targets))):
                neighbours.add(targets[rng.randrange(len(targets))])
            self.adjacency[vertex] = sorted(neighbours)
            for neighbour in neighbours:
                targets.append(neighbour)
            targets.append(vertex)
            for neighbour in neighbours:
                self.adjacency.setdefault(neighbour, []).append(vertex)

    def degree(self, vertex: int) -> int:
        return len(self.adjacency.get(vertex, ()))

    def adjacency_bytes(self, vertex: int) -> int:
        """Size of the vertex's adjacency list in memory."""
        return max(EDGE_BYTES * self.degree(vertex), EDGE_BYTES)


@register_workload("graph_traversal")
class GraphTraversalWorkload(Workload):
    """Bounded BFS over a hash-partitioned synthetic graph."""

    name = "graph_traversal"
    param_defaults = {
        "rack_nodes": None,
        "active_cores": 4,
        "max_vertices": 200,
        "seed": 5,
        "graph_vertices": 4096,
        "graph_edges_per_vertex": 16,
        "graph_seed": 3,
    }

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        graph: Optional[SyntheticPowerLawGraph] = None,
        rack_nodes: Optional[int] = None,
        active_cores: int = 4,
        max_vertices: int = 200,
        seed: int = 5,
    ) -> None:
        super().__init__(config)
        self.graph = graph if graph is not None else SyntheticPowerLawGraph()
        self.rack_nodes = rack_nodes if rack_nodes is not None else self.config.rack.nodes
        if active_cores <= 0 or active_cores > self.config.cores.count:
            raise WorkloadError("active core count must be in [1, %d]" % self.config.cores.count)
        if max_vertices <= 0:
            raise WorkloadError("must visit at least one vertex")
        self.active_cores = active_cores
        self.max_vertices = max_vertices
        self._rng = random.Random(seed)
        self._cores: List[CoreModel] = []
        self._stats = {"visited": 0, "remote": 0, "edges": 0, "bytes": 0}

    @classmethod
    def from_params(cls, config: Optional[SystemConfig] = None, **params: object) -> "GraphTraversalWorkload":
        """Scenario construction: the graph shape is part of the parameters."""
        cls.validate_params(params)
        graph = SyntheticPowerLawGraph(
            vertices=int(params.pop("graph_vertices", cls.param_defaults["graph_vertices"])),
            edges_per_vertex=int(
                params.pop("graph_edges_per_vertex", cls.param_defaults["graph_edges_per_vertex"])
            ),
            seed=int(params.pop("graph_seed", cls.param_defaults["graph_seed"])),
        )
        return cls(config=config, graph=graph, **params)

    def owner_node(self, vertex: int) -> int:
        """Hash partitioning of vertices across the rack."""
        return (vertex * 2654435761) % self.rack_nodes

    def vertex_offset(self, vertex: int) -> int:
        slots = PARTITION_BYTES // 4096
        return (vertex % slots) * 4096

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _plan_traversal(self) -> List[int]:
        """BFS order from vertex 0, bounded to ``max_vertices`` vertices."""
        frontier = [0]
        visited = {0}
        order: List[int] = []
        while frontier and len(order) < self.max_vertices:
            vertex = frontier.pop(0)
            order.append(vertex)
            for neighbour in self.graph.adjacency.get(vertex, ()):
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append(neighbour)
        return order

    def _entries_for_core(self, core_id: int, vertices: List[int], stats: dict) -> Iterator[WorkQueueEntry]:
        for index, vertex in enumerate(vertices):
            stats["visited"] += 1
            stats["edges"] += self.graph.degree(vertex)
            owner = self.owner_node(vertex)
            if owner == 0:
                continue  # local partition, no remote fetch needed
            nbytes = self.graph.adjacency_bytes(vertex)
            stats["remote"] += 1
            stats["bytes"] += nbytes
            yield WorkQueueEntry(
                op=RemoteOp.READ,
                ctx_id=GRAPH_CTX_ID,
                dst_node=owner,
                remote_offset=self.vertex_offset(vertex),
                local_buffer=LOCAL_BUFFER_BASE + core_id * (1 << 20) + index * 4096,
                length=nbytes,
            )

    # ------------------------------------------------------------------
    # Workload lifecycle
    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        machine.register_context(GRAPH_CTX_ID, PARTITION_BYTES)
        RemoteEndEmulator(
            machine,
            hops=2,
            rate_match_incoming=True,
            incoming_ctx_id=GRAPH_CTX_ID,
            incoming_region_bytes=PARTITION_BYTES,
        )
        order = self._plan_traversal()
        self._shards = [order[i::self.active_cores] for i in range(self.active_cores)]
        self._stats = {"visited": 0, "remote": 0, "edges": 0, "bytes": 0}
        self._cores = []
        for core_id, shard in enumerate(self._shards):
            if not shard:
                continue
            qp = machine.create_queue_pair(core_id)
            self._cores.append(CoreModel(core_id, machine, qp))

    def inject(self) -> None:
        shards = {core_id: shard for core_id, shard in enumerate(self._shards) if shard}
        for core in self._cores:
            core.start(
                self._entries_for_core(core.core_id, shards[core.core_id], self._stats),
                max_outstanding=8,
            )

    def result(self) -> GraphResult:
        """The finished run as the legacy typed result record."""
        return GraphResult(
            design=self.config.ni.design,
            vertices_visited=self._stats["visited"],
            remote_vertex_fetches=self._stats["remote"],
            edges_traversed=self._stats["edges"],
            bytes_fetched=self._stats["bytes"],
            elapsed_cycles=self.machine.sim.now,
            frequency_ghz=self.config.cores.frequency_ghz,
        )

    def metrics(self) -> dict:
        result = self.result()
        return {
            "design": design_name(result.design),
            "vertices_visited": result.vertices_visited,
            "remote_vertex_fetches": result.remote_vertex_fetches,
            "edges_traversed": result.edges_traversed,
            "bytes_fetched": result.bytes_fetched,
            "elapsed_cycles": result.elapsed_cycles,
            "edges_per_microsecond": result.edges_per_microsecond,
            "fetch_bandwidth_gbps": result.fetch_bandwidth_gbps,
        }

    def run(self) -> GraphResult:
        """Traverse the graph and report edge throughput and fetch bandwidth."""
        soc = ManycoreSoc(self.config)
        self.setup(soc)
        self.inject()
        self.drain()
        return self.result()
