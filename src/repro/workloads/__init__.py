"""Workload drivers: the paper's microbenchmarks plus application-level workloads.

All workloads implement the unified :class:`repro.scenario.workload.Workload`
lifecycle (setup / inject / drain / metrics) and are registered by name in
:data:`repro.scenario.registry.WORKLOADS`, so any of them — and any
third-party registration — runs on any machine composition through
:class:`repro.scenario.MachineBuilder`.
"""

from repro.workloads.microbench import (
    LatencyResult,
    BandwidthResult,
    RemoteReadLatencyBenchmark,
    RemoteReadBandwidthBenchmark,
    UniformRandomReadWorkload,
)
from repro.workloads.kvstore import KeyValueStoreWorkload, KVStoreResult, ZipfKeySampler
from repro.workloads.graphproc import (
    GraphTraversalWorkload,
    GraphResult,
    SyntheticPowerLawGraph,
)
from repro.workloads.hotspot import HotspotReadWorkload
from repro.workloads.rwmix import ReadWriteMixWorkload

__all__ = [
    "LatencyResult",
    "BandwidthResult",
    "RemoteReadLatencyBenchmark",
    "RemoteReadBandwidthBenchmark",
    "UniformRandomReadWorkload",
    "KeyValueStoreWorkload",
    "KVStoreResult",
    "ZipfKeySampler",
    "GraphTraversalWorkload",
    "GraphResult",
    "SyntheticPowerLawGraph",
    "HotspotReadWorkload",
    "ReadWriteMixWorkload",
]
