"""Workload drivers: the paper's microbenchmarks plus application-level workloads."""

from repro.workloads.microbench import (
    LatencyResult,
    BandwidthResult,
    RemoteReadLatencyBenchmark,
    RemoteReadBandwidthBenchmark,
)
from repro.workloads.kvstore import KeyValueStoreWorkload, KVStoreResult, ZipfKeySampler
from repro.workloads.graphproc import (
    GraphTraversalWorkload,
    GraphResult,
    SyntheticPowerLawGraph,
)

__all__ = [
    "LatencyResult",
    "BandwidthResult",
    "RemoteReadLatencyBenchmark",
    "RemoteReadBandwidthBenchmark",
    "KeyValueStoreWorkload",
    "KVStoreResult",
    "ZipfKeySampler",
    "GraphTraversalWorkload",
    "GraphResult",
    "SyntheticPowerLawGraph",
]
