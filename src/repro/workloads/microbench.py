"""The paper's remote-read microbenchmarks (§5).

Two drivers are provided:

* :class:`RemoteReadLatencyBenchmark` — a single core issues *synchronous*
  remote reads of a given size in an otherwise unloaded system; the measured
  end-to-end latency (WQ-entry creation through CQ-entry consumption)
  reproduces Figures 6 and 9.
* :class:`RemoteReadBandwidthBenchmark` — all 64 cores issue *asynchronous*
  remote reads while the remote-end emulator mirrors the outgoing request
  rate back as incoming requests; the measured application bandwidth (data
  written to local buffers by RCPs plus data streamed out by RRPPs)
  reproduces Figures 7 and 10.

Both drivers operate on a fresh :class:`~repro.node.soc.ManycoreSoc` per run
so that results for different transfer sizes and designs are independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.config import NIDesign, SystemConfig
from repro.errors import WorkloadError
from repro.node.core_model import CoreModel
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.scenario.registry import register_workload
from repro.scenario.workload import Workload
from repro.sim.stats import WindowedMonitor

#: Context id used for the benchmark's exported memory region.
BENCH_CTX_ID = 0
#: Size of the exported region / remote region: large enough that every data
#: access misses the on-chip caches (the paper sizes both regions and the
#: local buffers to exceed aggregate cache capacity, §5).
BENCH_REGION_BYTES = 64 * 1024 * 1024
#: Base address of the local destination buffers.
LOCAL_BUFFER_BASE = 0x8000_0000
#: Per-core stride between local buffer regions.
LOCAL_BUFFER_STRIDE = 16 * 1024 * 1024


@dataclass
class LatencyResult:
    """Outcome of one synchronous-latency run."""

    design: NIDesign
    transfer_bytes: int
    hops: int
    samples_cycles: List[float]
    frequency_ghz: float

    @property
    def mean_cycles(self) -> float:
        if not self.samples_cycles:
            return 0.0
        return sum(self.samples_cycles) / len(self.samples_cycles)

    @property
    def mean_ns(self) -> float:
        return self.mean_cycles / self.frequency_ghz


@dataclass
class BandwidthResult:
    """Outcome of one asynchronous-bandwidth run."""

    design: NIDesign
    transfer_bytes: int
    measure_cycles: float
    rcp_payload_bytes: int
    rrpp_payload_bytes: int
    noc_wire_bytes: int
    frequency_ghz: float
    max_link_utilization: float = 0.0
    llc_bank_utilization: float = 0.0
    completed_transfers: int = 0
    #: Number of measurement windows taken (0 for fixed-window runs).
    measurement_windows: int = 0
    #: Whether the windowed metric met the tolerance criterion (None for
    #: fixed-window runs, False when the window budget ran out first).
    converged_naturally: Optional[bool] = None
    #: Human-readable warning when measurement stopped without converging.
    convergence_warning: Optional[str] = None

    @property
    def application_bytes(self) -> int:
        """Application data moved during the measurement window (§6.2 definition)."""
        return self.rcp_payload_bytes + self.rrpp_payload_bytes

    @property
    def application_gbps(self) -> float:
        if self.measure_cycles <= 0:
            return 0.0
        return self.application_bytes / self.measure_cycles * self.frequency_ghz

    @property
    def noc_wire_gbps(self) -> float:
        if self.measure_cycles <= 0:
            return 0.0
        return self.noc_wire_bytes / self.measure_cycles * self.frequency_ghz

    @property
    def wire_expansion(self) -> float:
        """NOC traffic per application byte (the paper reports ~2.7x at peak)."""
        if self.application_bytes == 0:
            return 0.0
        return self.noc_wire_bytes / self.application_bytes


def _read_entries(count: Optional[int], transfer_bytes: int, core_id: int,
                  region_bytes: int = BENCH_REGION_BYTES) -> Iterator[WorkQueueEntry]:
    """Generate remote-read WQ entries walking the remote region."""
    if transfer_bytes <= 0:
        raise WorkloadError("transfer size must be positive")
    local_base = LOCAL_BUFFER_BASE + core_id * LOCAL_BUFFER_STRIDE
    produced = 0
    offset = (core_id * 8191 * transfer_bytes) % region_bytes
    while count is None or produced < count:
        if offset + transfer_bytes > region_bytes:
            offset = 0
        yield WorkQueueEntry(
            op=RemoteOp.READ,
            ctx_id=BENCH_CTX_ID,
            dst_node=1,
            remote_offset=offset,
            local_buffer=local_base + (produced * transfer_bytes) % LOCAL_BUFFER_STRIDE,
            length=transfer_bytes,
        )
        offset += transfer_bytes
        produced += 1


@register_workload("uniform_random")
class UniformRandomReadWorkload(Workload):
    """Asynchronous uniform-random remote reads from the active cores.

    The scenario-lifecycle form of the paper's bandwidth microbenchmark:
    every active core streams bounded asynchronous remote reads over the
    64 MB remote region while the remote-end emulator rate-matches incoming
    traffic, so both the RCP (local completions) and RRPP (remote servicing)
    paths carry load.
    """

    name = "uniform_random"
    param_defaults = {
        "transfer_bytes": 512,
        "active_cores": 0,  # 0 = every core of the configured chip
        "ops_per_core": 32,
        "max_outstanding": 8,
        "hops": 1,
    }

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        transfer_bytes: int = 512,
        active_cores: int = 0,
        ops_per_core: int = 32,
        max_outstanding: int = 8,
        hops: int = 1,
    ) -> None:
        super().__init__(config)
        if transfer_bytes <= 0:
            raise WorkloadError("transfer size must be positive")
        if active_cores < 0 or active_cores > self.config.cores.count:
            raise WorkloadError("active core count must be in [0, %d]" % self.config.cores.count)
        if ops_per_core <= 0:
            raise WorkloadError("need at least one operation per core")
        if max_outstanding <= 0:
            raise WorkloadError("max_outstanding must be positive")
        self.transfer_bytes = transfer_bytes
        self.active_cores = active_cores
        self.ops_per_core = ops_per_core
        self.max_outstanding = max_outstanding
        self.hops = hops
        self._cores: List[CoreModel] = []

    # -- lifecycle -------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        machine.register_context(BENCH_CTX_ID, BENCH_REGION_BYTES)
        RemoteEndEmulator(
            machine,
            hops=self.hops,
            rate_match_incoming=True,
            incoming_ctx_id=BENCH_CTX_ID,
            incoming_region_bytes=BENCH_REGION_BYTES,
        )
        self._cores = []
        count = self.active_cores or machine.config.cores.count
        for core_id in range(count):
            qp = machine.create_queue_pair(core_id)
            self._cores.append(CoreModel(core_id, machine, qp))

    def inject(self) -> None:
        for core in self._cores:
            core.start(
                _read_entries(self.ops_per_core, self.transfer_bytes, core.core_id),
                max_outstanding=self.max_outstanding,
            )

    def request_stream(self, core_id: int) -> Iterator[WorkQueueEntry]:
        """Endless uniform-random reads for open-loop driving."""
        return _read_entries(None, self.transfer_bytes, core_id)

    def metrics(self) -> dict:
        stats = self.core_traffic_metrics(self._cores)
        stats.update({
            "transfer_bytes": self.transfer_bytes,
            "active_cores": len(self._cores),
            "noc_wire_bytes": self.machine.fabric.wire_bytes_sent,
            "max_link_utilization": self.machine.fabric.max_link_utilization(),
        })
        return stats


class RemoteReadLatencyBenchmark:
    """Synchronous remote reads from a single core (Figures 6 and 9)."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        hops: int = 1,
        iterations: int = 12,
        warmup: int = 2,
        tile_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        if iterations <= 0:
            raise WorkloadError("need at least one measured iteration")
        if warmup < 0:
            raise WorkloadError("warmup cannot be negative")
        self.hops = hops
        self.iterations = iterations
        self.warmup = warmup
        if tile_ids is None:
            # Default to a central tile so on-chip distances are representative
            # of the average ((3, 3) on the 8x8 mesh of the paper).
            side = self.config.mesh_side
            central = (side // 2 - 1) * side + (side // 2 - 1)
            tile_ids = (max(0, central),)
        self.tile_ids = tuple(tile_ids)

    def run(self, transfer_bytes: int) -> LatencyResult:
        """Measure the zero-load end-to-end latency for one transfer size."""
        samples: List[float] = []
        for tile_id in self.tile_ids:
            samples.extend(self._run_single_tile(tile_id, transfer_bytes))
        return LatencyResult(
            design=self.config.ni.design,
            transfer_bytes=transfer_bytes,
            hops=self.hops,
            samples_cycles=samples,
            frequency_ghz=self.config.cores.frequency_ghz,
        )

    def sweep(self, transfer_sizes: Sequence[int]) -> List[LatencyResult]:
        """Latency for each size in ``transfer_sizes`` (the Figure-6 x-axis)."""
        return [self.run(size) for size in transfer_sizes]

    def _run_single_tile(self, tile_id: int, transfer_bytes: int) -> List[float]:
        soc = ManycoreSoc(self.config)
        soc.register_context(BENCH_CTX_ID, BENCH_REGION_BYTES)
        RemoteEndEmulator(soc, hops=self.hops, rate_match_incoming=False)
        qp = soc.create_queue_pair(tile_id)
        core = CoreModel(tile_id, soc, qp)
        total_ops = self.iterations + self.warmup
        core.start(
            _read_entries(total_ops, transfer_bytes, tile_id),
            max_outstanding=1,
        )
        soc.run()
        if core.completed_ops != total_ops:
            raise WorkloadError(
                "latency run finished %d of %d operations" % (core.completed_ops, total_ops)
            )
        return core.latency.samples[self.warmup:]


class RemoteReadBandwidthBenchmark:
    """Asynchronous remote reads from every core (Figures 7 and 10)."""

    #: Per-core bytes kept in flight; enough to cover the round-trip latency
    #: at full bandwidth while keeping the event count tractable.
    TARGET_OUTSTANDING_BYTES = 16 * 1024

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        hops: int = 1,
        warmup_cycles: float = 10_000,
        measure_cycles: float = 40_000,
        converge: bool = False,
        tolerance: float = 0.01,
        max_windows: int = 8,
    ) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        if warmup_cycles < 0 or measure_cycles <= 0:
            raise WorkloadError("invalid warmup/measurement window")
        if max_windows < 2:
            raise WorkloadError("convergence needs at least two measurement windows")
        self.hops = hops
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        #: When True, ``measure_cycles`` becomes the §5 window size and the
        #: run measures window after window until the application-bandwidth
        #: metric converges (or ``max_windows`` is exhausted, which the
        #: result flags as non-natural convergence).
        self.converge = converge
        self.tolerance = tolerance
        self.max_windows = max_windows

    def max_outstanding_for(self, transfer_bytes: int) -> int:
        """In-flight transfers per core (bounded by the 128-entry WQ)."""
        if transfer_bytes <= 0:
            raise WorkloadError("transfer size must be positive")
        wanted = self.TARGET_OUTSTANDING_BYTES // transfer_bytes
        return max(4, min(self.config.ni.wq_entries, wanted))

    def run(self, transfer_bytes: int) -> BandwidthResult:
        """Measure the aggregate application bandwidth for one transfer size."""
        soc = ManycoreSoc(self.config)
        soc.register_context(BENCH_CTX_ID, BENCH_REGION_BYTES)
        RemoteEndEmulator(
            soc,
            hops=self.hops,
            rate_match_incoming=True,
            incoming_ctx_id=BENCH_CTX_ID,
            incoming_region_bytes=BENCH_REGION_BYTES,
        )
        cores: List[CoreModel] = []
        outstanding = self.max_outstanding_for(transfer_bytes)
        for core_id in range(self.config.cores.count):
            qp = soc.create_queue_pair(core_id)
            core = CoreModel(core_id, soc, qp)
            core.start(
                _read_entries(None, transfer_bytes, core_id),
                max_outstanding=outstanding,
            )
            cores.append(core)
        # Warm up, then measure (§5 monitors fixed-size windows until
        # convergence; the default is a single shortened window so the
        # pure-Python model stays fast, ``converge=True`` enables the full
        # windowed methodology).
        soc.run(until=self.warmup_cycles)
        soc.fabric.reset_stats()
        rcp_base = soc.ni.total_payload_bytes_completed()
        rrpp_base = soc.ni.total_rrpp_payload_bytes()
        transfers_base = soc.ni.transfers.retired + soc.ni.transfers.in_flight
        start = soc.sim.now
        monitor: Optional[WindowedMonitor] = None
        if self.converge:
            monitor = WindowedMonitor(
                window_cycles=self.measure_cycles,
                tolerance=self.tolerance,
                max_windows=self.max_windows,
            )
            # Cumulative counters sampled at each window boundary — bytes
            # (rcp, rrpp, wire) plus per-link and per-LLC-bank busy cycles —
            # so every reported figure can cover exactly the two windows the
            # convergence criterion accepted (matching WindowedMonitor.value)
            # instead of averaging in the transient.
            window_marks: List[Tuple[int, int, int]] = []
            busy_marks: List[Tuple[dict, List[float]]] = []
            while not monitor.converged:
                soc.run(until=start + (monitor.windows_seen + 1) * monitor.window_cycles)
                rcp = soc.ni.total_payload_bytes_completed() - rcp_base
                rrpp = soc.ni.total_rrpp_payload_bytes() - rrpp_base
                window_marks.append((rcp, rrpp, soc.fabric.wire_bytes_sent))
                busy_marks.append((
                    {key: channel.busy_cycles
                     for key, channel in soc.fabric._channels.items()},
                    [bank.busy_cycles for bank in soc.llc_banks],
                ))
                previous = window_marks[-2][0] + window_marks[-2][1] if len(window_marks) > 1 else 0
                monitor.record_window((rcp + rrpp - previous) / monitor.window_cycles)
        else:
            soc.run(until=self.warmup_cycles + self.measure_cycles)
        elapsed = soc.sim.now - start
        for core in cores:
            core.stop()
        if monitor is not None:
            # Report over the final two windows only (min_windows guarantees
            # at least two): the converged value of the §5 methodology.
            window_base = window_marks[-3] if len(window_marks) >= 3 else (0, 0, 0)
            rcp_bytes = window_marks[-1][0] - window_base[0]
            rrpp_bytes = window_marks[-1][1] - window_base[1]
            wire_bytes = window_marks[-1][2] - window_base[2]
            elapsed = 2 * monitor.window_cycles
            # Utilizations over the same two windows (channels created after
            # the base snapshot fall back to zero prior busy cycles).
            link_base, bank_base = (
                busy_marks[-3] if len(busy_marks) >= 3 else ({}, [0.0] * len(soc.llc_banks))
            )
            max_link_utilization = max(
                (
                    (channel.busy_cycles - link_base.get(key, 0.0)) / elapsed
                    for key, channel in soc.fabric._channels.items()
                ),
                default=0.0,
            )
            llc_utilization = max(
                (
                    (bank.busy_cycles - bank_base[i]) / elapsed
                    for i, bank in enumerate(soc.llc_banks)
                ),
                default=0.0,
            )
        else:
            rcp_bytes = soc.ni.total_payload_bytes_completed() - rcp_base
            rrpp_bytes = soc.ni.total_rrpp_payload_bytes() - rrpp_base
            wire_bytes = soc.fabric.wire_bytes_sent
            max_link_utilization = soc.fabric.max_link_utilization()
            llc_utilization = soc.llc_bank_utilization()
        return BandwidthResult(
            design=self.config.ni.design,
            transfer_bytes=transfer_bytes,
            measure_cycles=elapsed,
            rcp_payload_bytes=rcp_bytes,
            rrpp_payload_bytes=rrpp_bytes,
            noc_wire_bytes=wire_bytes,
            frequency_ghz=self.config.cores.frequency_ghz,
            max_link_utilization=min(1.0, max_link_utilization),
            llc_bank_utilization=min(1.0, llc_utilization),
            completed_transfers=(soc.ni.transfers.retired + soc.ni.transfers.in_flight)
            - transfers_base,
            measurement_windows=monitor.windows_seen if monitor is not None else 0,
            converged_naturally=monitor.converged_naturally if monitor is not None else None,
            convergence_warning=monitor.warning() if monitor is not None else None,
        )

    def sweep(self, transfer_sizes: Sequence[int]) -> List[BandwidthResult]:
        """Bandwidth for each size in ``transfer_sizes`` (the Figure-7 x-axis)."""
        return [self.run(size) for size in transfer_sizes]
