"""The paper's remote-read microbenchmarks (§5).

Two drivers are provided:

* :class:`RemoteReadLatencyBenchmark` — a single core issues *synchronous*
  remote reads of a given size in an otherwise unloaded system; the measured
  end-to-end latency (WQ-entry creation through CQ-entry consumption)
  reproduces Figures 6 and 9.
* :class:`RemoteReadBandwidthBenchmark` — all 64 cores issue *asynchronous*
  remote reads while the remote-end emulator mirrors the outgoing request
  rate back as incoming requests; the measured application bandwidth (data
  written to local buffers by RCPs plus data streamed out by RRPPs)
  reproduces Figures 7 and 10.

Both drivers operate on a fresh :class:`~repro.node.soc.ManycoreSoc` per run
so that results for different transfer sizes and designs are independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.errors import WorkloadError
from repro.node.core_model import CoreModel
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry

#: Context id used for the benchmark's exported memory region.
BENCH_CTX_ID = 0
#: Size of the exported region / remote region: large enough that every data
#: access misses the on-chip caches (the paper sizes both regions and the
#: local buffers to exceed aggregate cache capacity, §5).
BENCH_REGION_BYTES = 64 * 1024 * 1024
#: Base address of the local destination buffers.
LOCAL_BUFFER_BASE = 0x8000_0000
#: Per-core stride between local buffer regions.
LOCAL_BUFFER_STRIDE = 16 * 1024 * 1024


@dataclass
class LatencyResult:
    """Outcome of one synchronous-latency run."""

    design: NIDesign
    transfer_bytes: int
    hops: int
    samples_cycles: List[float]
    frequency_ghz: float

    @property
    def mean_cycles(self) -> float:
        if not self.samples_cycles:
            return 0.0
        return sum(self.samples_cycles) / len(self.samples_cycles)

    @property
    def mean_ns(self) -> float:
        return self.mean_cycles / self.frequency_ghz


@dataclass
class BandwidthResult:
    """Outcome of one asynchronous-bandwidth run."""

    design: NIDesign
    transfer_bytes: int
    measure_cycles: float
    rcp_payload_bytes: int
    rrpp_payload_bytes: int
    noc_wire_bytes: int
    frequency_ghz: float
    max_link_utilization: float = 0.0
    llc_bank_utilization: float = 0.0
    completed_transfers: int = 0

    @property
    def application_bytes(self) -> int:
        """Application data moved during the measurement window (§6.2 definition)."""
        return self.rcp_payload_bytes + self.rrpp_payload_bytes

    @property
    def application_gbps(self) -> float:
        if self.measure_cycles <= 0:
            return 0.0
        return self.application_bytes / self.measure_cycles * self.frequency_ghz

    @property
    def noc_wire_gbps(self) -> float:
        if self.measure_cycles <= 0:
            return 0.0
        return self.noc_wire_bytes / self.measure_cycles * self.frequency_ghz

    @property
    def wire_expansion(self) -> float:
        """NOC traffic per application byte (the paper reports ~2.7x at peak)."""
        if self.application_bytes == 0:
            return 0.0
        return self.noc_wire_bytes / self.application_bytes


def _read_entries(count: Optional[int], transfer_bytes: int, core_id: int,
                  region_bytes: int = BENCH_REGION_BYTES) -> Iterator[WorkQueueEntry]:
    """Generate remote-read WQ entries walking the remote region."""
    if transfer_bytes <= 0:
        raise WorkloadError("transfer size must be positive")
    local_base = LOCAL_BUFFER_BASE + core_id * LOCAL_BUFFER_STRIDE
    produced = 0
    offset = (core_id * 8191 * transfer_bytes) % region_bytes
    while count is None or produced < count:
        if offset + transfer_bytes > region_bytes:
            offset = 0
        yield WorkQueueEntry(
            op=RemoteOp.READ,
            ctx_id=BENCH_CTX_ID,
            dst_node=1,
            remote_offset=offset,
            local_buffer=local_base + (produced * transfer_bytes) % LOCAL_BUFFER_STRIDE,
            length=transfer_bytes,
        )
        offset += transfer_bytes
        produced += 1


class RemoteReadLatencyBenchmark:
    """Synchronous remote reads from a single core (Figures 6 and 9)."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        hops: int = 1,
        iterations: int = 12,
        warmup: int = 2,
        tile_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        if iterations <= 0:
            raise WorkloadError("need at least one measured iteration")
        if warmup < 0:
            raise WorkloadError("warmup cannot be negative")
        self.hops = hops
        self.iterations = iterations
        self.warmup = warmup
        if tile_ids is None:
            # Default to a central tile so on-chip distances are representative
            # of the average ((3, 3) on the 8x8 mesh of the paper).
            side = self.config.mesh_side
            central = (side // 2 - 1) * side + (side // 2 - 1)
            tile_ids = (max(0, central),)
        self.tile_ids = tuple(tile_ids)

    def run(self, transfer_bytes: int) -> LatencyResult:
        """Measure the zero-load end-to-end latency for one transfer size."""
        samples: List[float] = []
        for tile_id in self.tile_ids:
            samples.extend(self._run_single_tile(tile_id, transfer_bytes))
        return LatencyResult(
            design=self.config.ni.design,
            transfer_bytes=transfer_bytes,
            hops=self.hops,
            samples_cycles=samples,
            frequency_ghz=self.config.cores.frequency_ghz,
        )

    def sweep(self, transfer_sizes: Sequence[int]) -> List[LatencyResult]:
        """Latency for each size in ``transfer_sizes`` (the Figure-6 x-axis)."""
        return [self.run(size) for size in transfer_sizes]

    def _run_single_tile(self, tile_id: int, transfer_bytes: int) -> List[float]:
        soc = ManycoreSoc(self.config)
        soc.register_context(BENCH_CTX_ID, BENCH_REGION_BYTES)
        RemoteEndEmulator(soc, hops=self.hops, rate_match_incoming=False)
        qp = soc.create_queue_pair(tile_id)
        core = CoreModel(tile_id, soc, qp)
        total_ops = self.iterations + self.warmup
        core.start(
            _read_entries(total_ops, transfer_bytes, tile_id),
            max_outstanding=1,
        )
        soc.run()
        if core.completed_ops != total_ops:
            raise WorkloadError(
                "latency run finished %d of %d operations" % (core.completed_ops, total_ops)
            )
        return core.latency.samples[self.warmup:]


class RemoteReadBandwidthBenchmark:
    """Asynchronous remote reads from every core (Figures 7 and 10)."""

    #: Per-core bytes kept in flight; enough to cover the round-trip latency
    #: at full bandwidth while keeping the event count tractable.
    TARGET_OUTSTANDING_BYTES = 16 * 1024

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        hops: int = 1,
        warmup_cycles: float = 10_000,
        measure_cycles: float = 40_000,
    ) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        if warmup_cycles < 0 or measure_cycles <= 0:
            raise WorkloadError("invalid warmup/measurement window")
        self.hops = hops
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles

    def max_outstanding_for(self, transfer_bytes: int) -> int:
        """In-flight transfers per core (bounded by the 128-entry WQ)."""
        if transfer_bytes <= 0:
            raise WorkloadError("transfer size must be positive")
        wanted = self.TARGET_OUTSTANDING_BYTES // transfer_bytes
        return max(4, min(self.config.ni.wq_entries, wanted))

    def run(self, transfer_bytes: int) -> BandwidthResult:
        """Measure the aggregate application bandwidth for one transfer size."""
        soc = ManycoreSoc(self.config)
        soc.register_context(BENCH_CTX_ID, BENCH_REGION_BYTES)
        RemoteEndEmulator(
            soc,
            hops=self.hops,
            rate_match_incoming=True,
            incoming_ctx_id=BENCH_CTX_ID,
            incoming_region_bytes=BENCH_REGION_BYTES,
        )
        cores: List[CoreModel] = []
        outstanding = self.max_outstanding_for(transfer_bytes)
        for core_id in range(self.config.cores.count):
            qp = soc.create_queue_pair(core_id)
            core = CoreModel(core_id, soc, qp)
            core.start(
                _read_entries(None, transfer_bytes, core_id),
                max_outstanding=outstanding,
            )
            cores.append(core)
        # Warm up, then measure over a fixed window (§5 monitors 500K-cycle
        # windows until convergence; the default window here is shorter so
        # the pure-Python model stays fast, and tests verify convergence
        # behaviour separately).
        soc.run(until=self.warmup_cycles)
        soc.fabric.reset_stats()
        rcp_base = soc.ni.total_payload_bytes_completed()
        rrpp_base = soc.ni.total_rrpp_payload_bytes()
        transfers_base = soc.ni.transfers.retired + soc.ni.transfers.in_flight
        start = soc.sim.now
        soc.run(until=self.warmup_cycles + self.measure_cycles)
        elapsed = soc.sim.now - start
        for core in cores:
            core.stop()
        return BandwidthResult(
            design=self.config.ni.design,
            transfer_bytes=transfer_bytes,
            measure_cycles=elapsed,
            rcp_payload_bytes=soc.ni.total_payload_bytes_completed() - rcp_base,
            rrpp_payload_bytes=soc.ni.total_rrpp_payload_bytes() - rrpp_base,
            noc_wire_bytes=soc.fabric.wire_bytes_sent,
            frequency_ghz=self.config.cores.frequency_ghz,
            max_link_utilization=soc.fabric.max_link_utilization(),
            llc_bank_utilization=soc.llc_bank_utilization(),
            completed_transfers=(soc.ni.transfers.retired + soc.ni.transfers.in_flight)
            - transfers_base,
        )

    def sweep(self, transfer_sizes: Sequence[int]) -> List[BandwidthResult]:
        """Bandwidth for each size in ``transfer_sizes`` (the Figure-7 x-axis)."""
        return [self.run(size) for size in transfer_sizes]
