"""Mixed one-sided read/write QP stress.

The paper's evaluation drives pure remote reads; soNUMA's WQ format also
carries one-sided *writes*, whose wire pattern is inverted (request packets
carry the payload blocks, responses are empty acknowledgements) and whose
unrolling stresses the RGP backend's outbound path instead of the RCP's
inbound path.  This workload issues a deterministic read/write mix with a
configurable write fraction from every active core, exercising both pipeline
directions — and both QP interaction patterns — at once.

Registered as ``rw_mix``.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.node.core_model import CoreModel
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.scenario.registry import register_workload
from repro.scenario.workload import Workload

RWMIX_CTX_ID = 0
REGION_BYTES = 64 * 1024 * 1024
LOCAL_BUFFER_BASE = 0xD000_0000


@register_workload("rw_mix")
class ReadWriteMixWorkload(Workload):
    """Interleaved one-sided reads and writes from the active cores."""

    name = "rw_mix"
    param_defaults = {
        "transfer_bytes": 1024,
        "active_cores": 8,
        "ops_per_core": 32,
        "write_fraction": 0.5,
        "max_outstanding": 8,
        "hops": 1,
        "seed": 17,
    }

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        transfer_bytes: int = 1024,
        active_cores: int = 8,
        ops_per_core: int = 32,
        write_fraction: float = 0.5,
        max_outstanding: int = 8,
        hops: int = 1,
        seed: int = 17,
    ) -> None:
        super().__init__(config)
        if transfer_bytes <= 0:
            raise WorkloadError("transfer size must be positive")
        if active_cores <= 0 or active_cores > self.config.cores.count:
            raise WorkloadError("active core count must be in [1, %d]" % self.config.cores.count)
        if ops_per_core <= 0:
            raise WorkloadError("need at least one operation per core")
        if not 0.0 <= write_fraction <= 1.0:
            raise WorkloadError("write fraction must be in [0, 1]")
        if max_outstanding <= 0:
            raise WorkloadError("max_outstanding must be positive")
        self.transfer_bytes = transfer_bytes
        self.active_cores = active_cores
        self.ops_per_core = ops_per_core
        self.write_fraction = write_fraction
        self.max_outstanding = max_outstanding
        self.hops = hops
        self.seed = seed
        self._cores: List[CoreModel] = []
        self._issued = {"read": 0, "write": 0}

    def _entries_for_core(self, core_id: int,
                          count: Optional[int]) -> Iterator[WorkQueueEntry]:
        """Mixed read/write entries for one core (``count=None`` = endless)."""
        rng = random.Random(self.seed * 7919 + core_id)
        local_base = LOCAL_BUFFER_BASE + core_id * (1 << 21)
        offset = (core_id * 524287 * self.transfer_bytes) % REGION_BYTES
        index = 0
        while count is None or index < count:
            if offset + self.transfer_bytes > REGION_BYTES:
                offset = 0
            op = RemoteOp.WRITE if rng.random() < self.write_fraction else RemoteOp.READ
            self._issued["write" if op is RemoteOp.WRITE else "read"] += 1
            yield WorkQueueEntry(
                op=op,
                ctx_id=RWMIX_CTX_ID,
                dst_node=1,
                remote_offset=offset,
                local_buffer=local_base + (index * self.transfer_bytes) % (1 << 21),
                length=self.transfer_bytes,
            )
            offset += self.transfer_bytes
            index += 1

    # ------------------------------------------------------------------
    # Workload lifecycle
    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        machine.register_context(RWMIX_CTX_ID, REGION_BYTES)
        RemoteEndEmulator(
            machine,
            hops=self.hops,
            rate_match_incoming=True,
            incoming_ctx_id=RWMIX_CTX_ID,
            incoming_region_bytes=REGION_BYTES,
        )
        self._issued = {"read": 0, "write": 0}
        self._cores = []
        for core_id in range(self.active_cores):
            qp = machine.create_queue_pair(core_id)
            self._cores.append(CoreModel(core_id, machine, qp))

    def inject(self) -> None:
        for core in self._cores:
            core.start(self._entries_for_core(core.core_id, self.ops_per_core),
                       max_outstanding=self.max_outstanding)

    def request_stream(self, core_id: int) -> Iterator[WorkQueueEntry]:
        """Endless read/write mix for open-loop driving."""
        return self._entries_for_core(core_id, None)

    def metrics(self) -> dict:
        stats = self.core_traffic_metrics(self._cores)
        stats.update({
            "transfer_bytes": self.transfer_bytes,
            "active_cores": self.active_cores,
            "write_fraction": self.write_fraction,
            "reads_issued": self._issued["read"],
            "writes_issued": self._issued["write"],
            "offchip_request_bytes": self.machine.offchip_request_bytes,
            "offchip_response_bytes": self.machine.offchip_response_bytes,
        })
        return stats
