"""Hotspot traffic: every core hammers one small remote region.

The uniform microbenchmarks spread requests over a 64 MB region, so RRPP
steering and LLC interleaving distribute the load evenly.  Real deployments
are rarely that polite: a popular key, a hot shard or a contended lock
concentrates traffic on a handful of cache blocks.  This workload drives
asynchronous remote reads whose offsets all fall inside a ``hot_blocks``-block
window of the remote region — and rate-matched *incoming* requests target the
same window — so a single RRPP/LLC row absorbs the entire load and the NOC
links feeding it saturate first.  The reported ``max_link_utilization`` and
``llc_bank_utilization`` make that imbalance visible next to the uniform
numbers.

Registered as ``hotspot``; the README's "Composing scenarios" section shows
the equivalent custom-workload recipe.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.node.core_model import CoreModel
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.scenario.registry import register_workload
from repro.scenario.workload import Workload

#: Context exporting the (large) local region; incoming traffic is confined
#: to the hot window at its start.
HOTSPOT_CTX_ID = 0
REGION_BYTES = 64 * 1024 * 1024
LOCAL_BUFFER_BASE = 0xC000_0000


@register_workload("hotspot")
class HotspotReadWorkload(Workload):
    """Asynchronous remote reads concentrated on a few hot cache blocks."""

    name = "hotspot"
    param_defaults = {
        "transfer_bytes": 512,
        "active_cores": 8,
        "ops_per_core": 32,
        "hot_blocks": 16,
        "max_outstanding": 8,
        "hops": 1,
        "seed": 13,
    }

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        transfer_bytes: int = 512,
        active_cores: int = 8,
        ops_per_core: int = 32,
        hot_blocks: int = 16,
        max_outstanding: int = 8,
        hops: int = 1,
        seed: int = 13,
    ) -> None:
        super().__init__(config)
        if transfer_bytes <= 0:
            raise WorkloadError("transfer size must be positive")
        if active_cores <= 0 or active_cores > self.config.cores.count:
            raise WorkloadError("active core count must be in [1, %d]" % self.config.cores.count)
        if ops_per_core <= 0:
            raise WorkloadError("need at least one operation per core")
        if hot_blocks <= 0:
            raise WorkloadError("the hot window needs at least one block")
        if max_outstanding <= 0:
            raise WorkloadError("max_outstanding must be positive")
        self.transfer_bytes = transfer_bytes
        self.active_cores = active_cores
        self.ops_per_core = ops_per_core
        self.hot_blocks = hot_blocks
        self.max_outstanding = max_outstanding
        self.hops = hops
        self.seed = seed
        self._cores: List[CoreModel] = []

    @property
    def hot_window_bytes(self) -> int:
        """Size of the contended window (grown to cover one full transfer)."""
        block = self.config.cache_block_bytes
        return max(self.hot_blocks * block, self.transfer_bytes)

    def _entries_for_core(self, core_id: int,
                          count: Optional[int]) -> Iterator[WorkQueueEntry]:
        """Hot-window read entries for one core (``count=None`` = endless)."""
        rng = random.Random(self.seed * 1000003 + core_id)
        block = self.config.cache_block_bytes
        window = self.hot_window_bytes
        slots = max(1, (window - self.transfer_bytes) // block + 1)
        local_base = LOCAL_BUFFER_BASE + core_id * (1 << 21)
        index = 0
        while count is None or index < count:
            yield WorkQueueEntry(
                op=RemoteOp.READ,
                ctx_id=HOTSPOT_CTX_ID,
                dst_node=1,
                remote_offset=rng.randrange(slots) * block,
                local_buffer=local_base + (index * self.transfer_bytes) % (1 << 21),
                length=self.transfer_bytes,
            )
            index += 1

    # ------------------------------------------------------------------
    # Workload lifecycle
    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        machine.register_context(HOTSPOT_CTX_ID, REGION_BYTES)
        RemoteEndEmulator(
            machine,
            hops=self.hops,
            rate_match_incoming=True,
            incoming_ctx_id=HOTSPOT_CTX_ID,
            # Incoming traffic is confined to the hot window too, so the
            # local RRPP/LLC-row serving it becomes the bottleneck.
            incoming_region_bytes=self.hot_window_bytes,
        )
        self._cores = []
        for core_id in range(self.active_cores):
            qp = machine.create_queue_pair(core_id)
            self._cores.append(CoreModel(core_id, machine, qp))

    def inject(self) -> None:
        for core in self._cores:
            core.start(self._entries_for_core(core.core_id, self.ops_per_core),
                       max_outstanding=self.max_outstanding)

    def request_stream(self, core_id: int) -> Iterator[WorkQueueEntry]:
        """Endless hot-window reads for open-loop driving."""
        return self._entries_for_core(core_id, None)

    def metrics(self) -> dict:
        stats = self.core_traffic_metrics(self._cores)
        stats.update({
            "transfer_bytes": self.transfer_bytes,
            "hot_window_bytes": self.hot_window_bytes,
            "active_cores": self.active_cores,
            "max_link_utilization": self.machine.fabric.max_link_utilization(),
            "llc_bank_utilization": self.machine.llc_bank_utilization(),
        })
        return stats
