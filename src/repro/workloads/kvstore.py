"""A partitioned in-memory key-value store workload (§1, §2.1).

The paper motivates rack-scale remote memory with distributed key-value
stores whose objects are a few hundred bytes (Facebook's Memcached pools
average ~500 B), so every GET whose key lives on another node becomes a
fine-grained one-sided remote read.  This workload models exactly that:

* the key space is hash-partitioned across the rack's nodes;
* keys are drawn from a Zipf-like popularity distribution (hot keys exist,
  but they are spread over partitions by the hash);
* a GET for a remote key issues one remote read of the object's size from
  the owning node's registered context; local keys are served from local
  memory and only contribute to the local-access counter.

The driver runs on the single simulated node (the paper's methodology) and
reports GET throughput and latency percentiles per NI design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.config import NIDesign, SystemConfig, design_name
from repro.errors import WorkloadError
from repro.node.core_model import CoreModel
from repro.node.soc import ManycoreSoc
from repro.node.traffic import RemoteEndEmulator
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.scenario.registry import register_workload
from repro.scenario.workload import Workload

#: Context exporting each node's key-value partition.
KV_CTX_ID = 0
#: Size of the exported partition (large enough to always miss on-chip caches).
PARTITION_BYTES = 64 * 1024 * 1024
LOCAL_BUFFER_BASE = 0xA000_0000


@dataclass
class KVStoreResult:
    """Outcome of one key-value store run."""

    design: NIDesign
    value_bytes: int
    gets_issued: int
    remote_gets: int
    local_gets: int
    elapsed_cycles: float
    mean_latency_cycles: float
    p99_latency_cycles: float
    frequency_ghz: float

    @property
    def remote_fraction(self) -> float:
        if self.gets_issued == 0:
            return 0.0
        return self.remote_gets / self.gets_issued

    @property
    def throughput_mops(self) -> float:
        """Completed remote GETs per microsecond... reported in MOPS."""
        if self.elapsed_cycles <= 0:
            return 0.0
        ops_per_cycle = self.remote_gets / self.elapsed_cycles
        return ops_per_cycle * self.frequency_ghz * 1e3

    @property
    def mean_latency_ns(self) -> float:
        return self.mean_latency_cycles / self.frequency_ghz


class ZipfKeySampler:
    """Deterministic Zipf-like key popularity."""

    def __init__(self, keys: int, skew: float = 0.99, seed: int = 7) -> None:
        if keys <= 0:
            raise WorkloadError("key count must be positive")
        if skew < 0:
            raise WorkloadError("skew cannot be negative")
        self.keys = keys
        self.skew = skew
        self._rng = random.Random(seed)
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(min(keys, 1024))]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)

    def sample(self) -> int:
        """Draw a key id; popular ranks map to the head of the key space."""
        point = self._rng.random()
        for rank, edge in enumerate(self._cdf):
            if point <= edge:
                # Spread each popularity rank over the key space deterministically.
                return (rank * 2654435761) % self.keys
        return self._rng.randrange(self.keys)


@register_workload("kvstore")
class KeyValueStoreWorkload(Workload):
    """Drives GET traffic from the cores of the simulated node."""

    name = "kvstore"
    param_defaults = {
        "value_bytes": 512,
        "keys": 1 << 20,
        "rack_nodes": None,
        "active_cores": 8,
        "gets_per_core": 20,
        "skew": 0.99,
        "seed": 11,
    }

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        value_bytes: int = 512,
        keys: int = 1 << 20,
        rack_nodes: Optional[int] = None,
        active_cores: int = 8,
        gets_per_core: int = 20,
        skew: float = 0.99,
        seed: int = 11,
    ) -> None:
        super().__init__(config)
        if value_bytes <= 0:
            raise WorkloadError("value size must be positive")
        if active_cores <= 0 or active_cores > self.config.cores.count:
            raise WorkloadError("active core count must be in [1, %d]" % self.config.cores.count)
        if gets_per_core <= 0:
            raise WorkloadError("need at least one GET per core")
        self.value_bytes = value_bytes
        self.keys = keys
        self.rack_nodes = rack_nodes if rack_nodes is not None else self.config.rack.nodes
        self.active_cores = active_cores
        self.gets_per_core = gets_per_core
        self.sampler = ZipfKeySampler(keys, skew=skew, seed=seed)
        self._rng = random.Random(seed)
        self._cores: List[CoreModel] = []
        self._stats = {"gets": 0, "remote": 0, "local": 0}

    # ------------------------------------------------------------------
    # Key partitioning
    # ------------------------------------------------------------------
    def owner_node(self, key: int) -> int:
        """Hash-partition the key space across the rack."""
        return (key * 1103515245 + 12345) % self.rack_nodes

    def key_offset(self, key: int) -> int:
        """Offset of the key's value inside its owner's partition context."""
        slots = PARTITION_BYTES // max(self.value_bytes, 64)
        return (key % slots) * max(self.value_bytes, 64)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _entries_for_core(self, core_id: int, stats: dict,
                          count: Optional[int]) -> Iterator[WorkQueueEntry]:
        """Remote-GET entries for one core (``count`` sampled GET attempts;
        ``None`` = endless).  Local keys are counted and skipped — they are
        served from local memory and carry no remote latency."""
        local_node = 0
        index = 0
        while count is None or index < count:
            key = self.sampler.sample()
            stats["gets"] += 1
            owner = self.owner_node(key)
            if owner != local_node:
                stats["remote"] += 1
                buffer_offset = index * self.value_bytes
                if count is None:
                    # Endless streams must stay inside this core's 1 MiB
                    # buffer window; bounded (closed-loop) runs keep the
                    # historical unwrapped addressing byte-for-byte.
                    buffer_offset %= (1 << 20)
                yield WorkQueueEntry(
                    op=RemoteOp.READ,
                    ctx_id=KV_CTX_ID,
                    dst_node=owner,
                    remote_offset=self.key_offset(key),
                    local_buffer=LOCAL_BUFFER_BASE + core_id * (1 << 20) + buffer_offset,
                    length=self.value_bytes,
                )
            else:
                stats["local"] += 1
            index += 1

    def request_stream(self, core_id: int) -> Iterator[WorkQueueEntry]:
        """Endless remote GETs for open-loop driving (same mix as inject)."""
        if self.rack_nodes <= 1:
            # Every key is node-local: the endless generator could never
            # yield and the first arrival would spin forever.
            raise WorkloadError(
                "kvstore open-loop driving needs rack_nodes > 1 (with %d node(s) "
                "no GET is remote)" % self.rack_nodes
            )
        return self._entries_for_core(core_id, self._stats, None)

    # ------------------------------------------------------------------
    # Workload lifecycle
    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        machine.register_context(KV_CTX_ID, PARTITION_BYTES)
        RemoteEndEmulator(
            machine,
            hops=1,
            rate_match_incoming=True,
            incoming_ctx_id=KV_CTX_ID,
            incoming_region_bytes=PARTITION_BYTES,
        )
        self._stats = {"gets": 0, "remote": 0, "local": 0}
        self._cores = []
        for core_id in range(self.active_cores):
            qp = machine.create_queue_pair(core_id)
            self._cores.append(CoreModel(core_id, machine, qp))

    def inject(self) -> None:
        for core in self._cores:
            core.start(self._entries_for_core(core.core_id, self._stats, self.gets_per_core),
                       max_outstanding=8)

    def result(self) -> KVStoreResult:
        """The finished run as the legacy typed result record."""
        latencies: List[float] = []
        for core in self._cores:
            latencies.extend(core.latency.samples)
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        p99 = sorted(latencies)[int(0.99 * (len(latencies) - 1))] if latencies else 0.0
        return KVStoreResult(
            design=self.config.ni.design,
            value_bytes=self.value_bytes,
            gets_issued=self._stats["gets"],
            remote_gets=self._stats["remote"],
            local_gets=self._stats["local"],
            elapsed_cycles=self.machine.sim.now,
            mean_latency_cycles=mean,
            p99_latency_cycles=p99,
            frequency_ghz=self.config.cores.frequency_ghz,
        )

    def metrics(self) -> dict:
        result = self.result()
        return {
            "design": design_name(result.design),
            "value_bytes": result.value_bytes,
            "gets_issued": result.gets_issued,
            "remote_gets": result.remote_gets,
            "local_gets": result.local_gets,
            "remote_fraction": result.remote_fraction,
            "elapsed_cycles": result.elapsed_cycles,
            "throughput_mops": result.throughput_mops,
            "mean_latency_ns": result.mean_latency_ns,
            "p99_latency_cycles": result.p99_latency_cycles,
        }

    def run(self) -> KVStoreResult:
        """Run the GET mix to completion and report throughput/latency."""
        soc = ManycoreSoc(self.config)
        self.setup(soc)
        self.inject()
        self.drain()
        return self.result()
