"""Built-in component registration.

Importing this module imports every module that registers a built-in NI
design, topology or workload; the registries in
:mod:`repro.scenario.registry` import it lazily on first lookup so the
component inventory is complete regardless of what the caller imported
first.  Third-party components do not belong here — they register themselves
when their own module is imported.
"""

from __future__ import annotations

# NI designs (edge / per_tile / split register in their class modules; the
# numa baseline registers in repro.numa.machine).
from repro.core import edge as _edge  # noqa: F401
from repro.core import per_tile as _per_tile  # noqa: F401
from repro.core import split as _split  # noqa: F401
from repro.numa import machine as _numa  # noqa: F401

# Topologies (chip placements register in repro.core.placement; the rack
# torus registers in repro.fabric.torus).
from repro.core import placement as _placement  # noqa: F401
from repro.fabric import torus as _torus  # noqa: F401

# Workloads (the paper's three plus the registry-proven extensions).
from repro.workloads import microbench as _microbench  # noqa: F401
from repro.workloads import kvstore as _kvstore  # noqa: F401
from repro.workloads import graphproc as _graphproc  # noqa: F401
from repro.workloads import hotspot as _hotspot  # noqa: F401
from repro.workloads import rwmix as _rwmix  # noqa: F401
