"""The unified workload lifecycle protocol.

Every workload — the paper's microbenchmarks and applications as well as
registry-added extensions — drives a machine through the same four phases:

* :meth:`Workload.setup` — bind to a built machine: register memory
  contexts, attach the remote-end emulator, allocate queue pairs and cores;
* :meth:`Workload.inject` — start the traffic (hand each core its WQ-entry
  iterator);
* :meth:`Workload.drain` — advance the simulation until the traffic is
  complete (bounded workloads) or the measurement window closes;
* :meth:`Workload.metrics` — report JSON-native measurements.

:class:`~repro.scenario.builder.MachineBuilder` resolves a
:class:`~repro.scenario.spec.ScenarioSpec` into a machine plus a workload
instance and runs exactly this lifecycle, so any registered workload runs on
any registered machine composition.  Workload classes declare their accepted
constructor parameters in :attr:`Workload.param_defaults`; the builder
validates spec overrides against it so a typo fails before the machine is
built.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.config import SystemConfig, design_name
from repro.errors import WorkloadError


class Workload(abc.ABC):
    """Abstract workload: a traffic pattern with a uniform lifecycle."""

    #: Canonical registry name, for results and error messages.
    name: str = ""
    #: Constructor parameters a :class:`ScenarioSpec` may override, with their
    #: defaults.  Used by the builder for validation and by ``repro list``.
    param_defaults: Mapping[str, object] = {}

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        #: The machine this workload was set up on (None before setup()).
        self.machine = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def setup(self, machine) -> None:
        """Bind to ``machine``: contexts, remote port, queue pairs, cores."""

    @abc.abstractmethod
    def inject(self) -> None:
        """Start the traffic (no simulated time passes until drain())."""

    def drain(self) -> None:
        """Advance the simulation until the workload is finished.

        The default runs the machine to event-queue exhaustion, which is
        right for bounded workloads; open-loop workloads override this with
        their warm-up/measurement windows.
        """
        if self.machine is None:
            raise WorkloadError("workload %r was not set up on a machine" % (self.name,))
        self.machine.run()

    @abc.abstractmethod
    def metrics(self) -> Dict[str, object]:
        """JSON-native measurements of the finished run."""

    # ------------------------------------------------------------------
    # Open-loop driving (optional)
    # ------------------------------------------------------------------
    def request_stream(self, core_id: int) -> Iterator:
        """An *endless* per-core stream of WQ entries for open-loop driving.

        The :class:`repro.load.driver.OpenLoopDriver` calls this after
        :meth:`setup` and pulls exactly one entry per arrival of its arrival
        clock, instead of running :meth:`inject`'s closed-loop iterators.
        Workloads whose traffic is inherently self-limiting (e.g. a bounded
        graph traversal) leave this unimplemented.
        """
        raise WorkloadError(
            "workload %r does not support open-loop driving "
            "(no request_stream implementation)" % (self.name or type(self).__name__,)
        )

    @property
    def driven_cores(self) -> List:
        """The :class:`CoreModel` objects this workload drives (post-setup).

        The default returns ``self._cores``, the attribute every built-in
        workload populates in :meth:`setup`; a workload that stores its cores
        elsewhere must override this property for open-loop driving to find
        them.
        """
        return list(getattr(self, "_cores", []))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def core_traffic_metrics(self, cores: Sequence) -> Dict[str, object]:
        """Common statistics over a set of driven :class:`CoreModel` objects.

        The shared slice of every traffic workload's :meth:`metrics`:
        completed operation/payload counts, elapsed time, application
        bandwidth and mean end-to-end latency; callers merge in their
        workload-specific keys.
        """
        machine = self.machine
        if machine is None:
            raise WorkloadError("workload %r was not set up on a machine" % (self.name,))
        elapsed = machine.sim.now
        payload = sum(core.completed_bytes for core in cores)
        samples = [sample for core in cores for sample in core.latency.samples]
        mean_latency = sum(samples) / len(samples) if samples else 0.0
        frequency = machine.config.cores.frequency_ghz
        return {
            "design": design_name(machine.config.ni.design),
            "completed_ops": sum(core.completed_ops for core in cores),
            "payload_bytes": payload,
            "elapsed_cycles": elapsed,
            "application_gbps": payload / elapsed * frequency if elapsed > 0 else 0.0,
            "mean_latency_ns": mean_latency / frequency,
        }

    def run_on(self, machine) -> Dict[str, object]:
        """Full lifecycle on an already-built machine."""
        self.setup(machine)
        self.inject()
        self.drain()
        return self.metrics()

    @classmethod
    def from_params(cls, config: Optional[SystemConfig] = None, **params: object) -> "Workload":
        """Instantiate from validated scenario parameters.

        Unknown parameter names fail loudly, listing what the workload
        accepts (the builder calls :meth:`validate_params` first, but direct
        callers get the same guarantee).
        """
        cls.validate_params(params)
        return cls(config=config, **params)

    @classmethod
    def validate_params(cls, params: Mapping[str, object]) -> None:
        """Raise :class:`WorkloadError` for parameter names not in param_defaults."""
        unknown = sorted(set(params) - set(cls.param_defaults))
        if unknown:
            raise WorkloadError(
                "workload %r does not accept parameter(s) %s (accepted: %s)"
                % (
                    cls.name or cls.__name__,
                    ", ".join(repr(name) for name in unknown),
                    ", ".join(sorted(cls.param_defaults)) or "none",
                )
            )
