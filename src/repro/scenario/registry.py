"""Component registries: the pluggable axes of the machine design space.

Every axis of a scenario — the NI design, the on-chip/rack topology and the
workload — is a named component in a :class:`ComponentRegistry`.  Components
register themselves with a decorator::

    from repro.scenario.registry import register_ni_design

    @register_ni_design("edge", label="NIedge")
    class NIEdgeDesign(BaseNIDesign):
        ...

and are looked up by name everywhere else (the machine factory, the CLI, the
experiment parameter declarations), so adding a new design, topology or
workload never requires editing core modules.

Lookups are resilient to import order: each registry knows the module that
registers the built-in components (:mod:`repro.scenario.components`) and
imports it lazily on first use, so ``WORKLOADS.names()`` is complete whether
or not the caller imported the workload modules first.

:meth:`ComponentRegistry.resolve` is the one string→component normalization
helper shared by the config enums (``NIDesign.coerce``), CLI ``--set``
parsing and experiment parameter validation: it accepts a canonical name, an
enum member (anything with a string ``.value``), a registered component or
an instance of one, and returns the canonical name.
"""

from __future__ import annotations

import difflib
import importlib
import inspect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import RegistryError

#: Module imported lazily to register the built-in components.
_BUILTIN_COMPONENTS_MODULE = "repro.scenario.components"


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its canonical name, object and metadata."""

    name: str
    component: object
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def summary(self) -> str:
        """First line of the component's docstring (for CLI listings)."""
        doc = inspect.getdoc(self.component) or ""
        return doc.splitlines()[0] if doc else ""


class ComponentRegistry:
    """A named collection of pluggable components with decorator registration."""

    def __init__(self, kind: str, populate: Optional[str] = _BUILTIN_COMPONENTS_MODULE) -> None:
        #: Human-readable component kind, used in error messages ("NI design").
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._populate_module = populate
        self._populated = populate is None
        self._populating = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, **metadata: object):
        """Decorator registering ``component`` under ``name``.

        Duplicate names fail loudly: silently shadowing a component is how
        two plugins end up fighting over a scenario axis.
        """
        if not name or not isinstance(name, str):
            raise RegistryError("%s name must be a non-empty string, got %r" % (self.kind, name))

        def decorate(component: object) -> object:
            if name in self._entries:
                raise RegistryError(
                    "%s %r is already registered (by %r); pick a different name "
                    "or unregister the existing component first"
                    % (self.kind, name, self._entries[name].component)
                )
            self._entries[name] = RegistryEntry(name=name, component=component, metadata=dict(metadata))
            return component

        return decorate

    def unregister(self, name: str) -> None:
        """Remove a component (used by tests registering throwaway plugins)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _ensure_populated(self) -> None:
        if self._populated or self._populating:
            return
        self._populating = True
        try:
            importlib.import_module(self._populate_module)
            self._populated = True
        finally:
            self._populating = False

    def names(self, **metadata_filter: object) -> List[str]:
        """Sorted names of every registered component.

        Keyword arguments filter on registration metadata, e.g.
        ``NI_DESIGNS.names(messaging=True)`` lists only the QP-based designs.
        """
        self._ensure_populated()
        return sorted(
            name
            for name, entry in self._entries.items()
            if all(entry.metadata.get(key) == value for key, value in metadata_filter.items())
        )

    def entries(self) -> List[RegistryEntry]:
        """Every registered entry, ordered by name."""
        self._ensure_populated()
        return [self._entries[name] for name in self.names()]

    def entry(self, name: str) -> RegistryEntry:
        """The entry registered under ``name`` (raises with suggestions)."""
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(self._unknown_message(name)) from None

    def get(self, name: str) -> object:
        """The component registered under ``name`` (raises with suggestions)."""
        return self.entry(name).component

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def resolve(self, value: object) -> str:
        """Normalize a name / enum member / component (class or instance) to its canonical name."""
        self._ensure_populated()
        if isinstance(value, str):
            if value in self._entries:
                return value
            raise RegistryError(self._unknown_message(value))
        enum_value = getattr(value, "value", None)
        if isinstance(enum_value, str) and enum_value in self._entries:
            return enum_value
        for name, entry in self._entries.items():
            if value is entry.component:
                return name
            if inspect.isclass(entry.component) and isinstance(value, entry.component):
                return name
        if isinstance(enum_value, str):
            raise RegistryError(self._unknown_message(enum_value))
        raise RegistryError(
            "cannot resolve %r to a registered %s (registered: %s)"
            % (value, self.kind, ", ".join(self.names()) or "none")
        )

    def _unknown_message(self, name: str) -> str:
        registered = self.names()
        message = "unknown %s %r (registered: %s)" % (
            self.kind, name, ", ".join(registered) or "none",
        )
        suggestions = difflib.get_close_matches(name, registered, n=2, cutoff=0.5)
        if suggestions:
            message += "; did you mean %s?" % " or ".join(repr(s) for s in suggestions)
        return message


# ----------------------------------------------------------------------
# The eight component axes
# ----------------------------------------------------------------------
#: NI placements: assembly classes building the chip's RGP/RCP/RRPP pipelines
#: (metadata ``messaging=False`` marks the load/store NUMA baseline).
NI_DESIGNS = ComponentRegistry("NI design")
#: Topology builders.  ``scope="chip"`` entries map a SystemConfig to a
#: ChipPlacement; ``scope="rack"`` entries build inter-node fabrics.
TOPOLOGIES = ComponentRegistry("topology")
#: Workload classes implementing the :class:`repro.scenario.workload.Workload`
#: lifecycle (setup / inject / drain / metrics).
WORKLOADS = ComponentRegistry("workload")
#: Open-loop arrival processes (:class:`repro.load.arrivals.ArrivalProcess`
#: subclasses) used by the load subsystem's :class:`OpenLoopDriver`; the
#: built-ins live in :mod:`repro.load.arrivals`, hence the distinct populate
#: module.
ARRIVALS = ComponentRegistry("arrival process", populate="repro.load.arrivals")
#: Fault models (:class:`repro.faults.models.FaultModel` subclasses) the
#: fault-injection subsystem activates on a seeded window schedule; the
#: built-ins live in :mod:`repro.faults.models`, hence the distinct populate
#: module.
FAULT_MODELS = ComponentRegistry("fault model", populate="repro.faults.models")
#: Static-analysis rules (:class:`repro.lint.rules.LintRule` subclasses) the
#: determinism/kernel-contract linter runs over the source tree; the
#: built-ins live in :mod:`repro.lint.rules`, hence the distinct populate
#: module.
LINT_RULES = ComponentRegistry("lint rule", populate="repro.lint.rules")
#: Design-space search strategies (:class:`repro.explore.strategies
#: .SearchStrategy` subclasses) the exploration engine asks for the next
#: batch of scenario points to evaluate; the built-ins live in
#: :mod:`repro.explore.strategies`, hence the distinct populate module.
EXPLORE_STRATEGIES = ComponentRegistry("search strategy", populate="repro.explore.strategies")
#: Telemetry probes (:class:`repro.obs.probes.TelemetryProbe` subclasses) the
#: observability subsystem samples at a sim-time cadence into the
#: ``repro-obs-stream/1`` channel; the built-ins live in
#: :mod:`repro.obs.probes`, hence the distinct populate module.
PROBES = ComponentRegistry("telemetry probe", populate="repro.obs.probes")


def register_ni_design(name: str, **metadata: object):
    """Register an NI design assembly class, e.g. ``@register_ni_design("edge")``."""
    return NI_DESIGNS.register(name, **metadata)


def register_topology(name: str, **metadata: object):
    """Register a topology builder, e.g. ``@register_topology("mesh", scope="chip")``."""
    return TOPOLOGIES.register(name, **metadata)


def register_workload(name: str, **metadata: object):
    """Register a workload class, e.g. ``@register_workload("uniform_random")``."""
    return WORKLOADS.register(name, **metadata)


def register_arrival_process(name: str, **metadata: object):
    """Register an arrival process, e.g. ``@register_arrival_process("poisson")``."""
    return ARRIVALS.register(name, **metadata)


def register_fault_model(name: str, **metadata: object):
    """Register a fault model, e.g. ``@register_fault_model("link_down")``."""
    return FAULT_MODELS.register(name, **metadata)


def register_lint_rule(name: str, **metadata: object):
    """Register a lint rule, e.g. ``@register_lint_rule("REP001", title="wall-clock ban")``."""
    return LINT_RULES.register(name, **metadata)


def register_strategy(name: str, **metadata: object):
    """Register a search strategy, e.g. ``@register_strategy("evolve")``."""
    return EXPLORE_STRATEGIES.register(name, **metadata)


def register_probe(name: str, **metadata: object):
    """Register a telemetry probe, e.g. ``@register_probe("rolling_tails")``."""
    return PROBES.register(name, **metadata)
