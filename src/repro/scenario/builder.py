"""Resolving a :class:`ScenarioSpec` into a ready-to-run simulation.

:class:`MachineBuilder` is the single construction path for simulated
machines: it resolves the spec's design/topology/override names through the
component registries, derives the :class:`~repro.config.SystemConfig`,
builds the machine (a :class:`~repro.node.soc.ManycoreSoc` for the QP-based
designs, a :class:`~repro.numa.machine.NumaMachine` for the load/store
baseline) and instantiates the workload with its validated parameters.
The returned :class:`Scenario` runs the unified workload lifecycle
(setup / inject / drain / metrics) and reports a fingerprint-stamped
:class:`ScenarioResult`::

    spec = ScenarioSpec(design="split", workload="hotspot")
    result = MachineBuilder(spec).build().run()
    print(result.metrics["application_gbps"])
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

from repro.config import SystemConfig
from repro.errors import ScenarioError
from repro.node.soc import ManycoreSoc
from repro.numa.machine import NumaMachine
from repro.scenario.registry import NI_DESIGNS, WORKLOADS
from repro.scenario.spec import ScenarioSpec, _jsonable
from repro.scenario.workload import Workload


@dataclass
class ScenarioResult:
    """Metrics and identity of one finished scenario run."""

    spec: Dict[str, object]
    scenario_fingerprint: str
    config_fingerprint: str
    metrics: Dict[str, object] = field(default_factory=dict)
    wall_time_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": dict(self.spec),
            "scenario_fingerprint": self.scenario_fingerprint,
            "config_fingerprint": self.config_fingerprint,
            "metrics": dict(self.metrics),
            "wall_time_s": self.wall_time_s,
        }


class Scenario:
    """A built machine plus a workload, ready to run."""

    def __init__(self, spec: ScenarioSpec, config: SystemConfig,
                 machine: ManycoreSoc, workload: Workload) -> None:
        self.spec = spec
        self.config = config
        self.machine = machine
        self.workload = workload

    def run(self) -> ScenarioResult:
        """Run the workload lifecycle to completion and report metrics."""
        started = time.perf_counter()
        metrics = self.workload.run_on(self.machine)
        return ScenarioResult(
            spec=self.spec.to_dict(),
            scenario_fingerprint=self.spec.fingerprint(),
            config_fingerprint=self.config.fingerprint(),
            metrics=_jsonable(metrics),
            wall_time_s=time.perf_counter() - started,
        )


class MachineBuilder:
    """Builds machines and workloads from declarative scenario specs."""

    def __init__(self, spec: Union[ScenarioSpec, Mapping[str, object]],
                 base_config: Optional[SystemConfig] = None) -> None:
        if isinstance(spec, Mapping):
            spec = ScenarioSpec.from_dict(spec)
        if not isinstance(spec, ScenarioSpec):
            raise ScenarioError("MachineBuilder needs a ScenarioSpec or dict, got %r" % (spec,))
        self.spec = spec
        self.base_config = base_config

    # ------------------------------------------------------------------
    # Stages (each usable on its own)
    # ------------------------------------------------------------------
    def resolve_config(self) -> SystemConfig:
        """The fully-resolved :class:`SystemConfig` for this scenario."""
        return self.spec.resolve_config(self.base_config)

    def build_machine(self, config: Optional[SystemConfig] = None):
        """Build the machine for the spec's design (not yet carrying traffic).

        QP-based designs yield a :class:`ManycoreSoc`; the ``numa`` baseline
        yields a :class:`NumaMachine` (analytical + single-block simulation).
        """
        config = config if config is not None else self.resolve_config()
        entry = NI_DESIGNS.entry(self.spec.design)
        if not entry.metadata.get("messaging", True):
            return NumaMachine(config)
        return ManycoreSoc(config)

    def build_workload(self, config: Optional[SystemConfig] = None) -> Workload:
        """Instantiate the spec's workload with validated parameters."""
        config = config if config is not None else self.resolve_config()
        workload_cls = WORKLOADS.get(self.spec.workload)
        workload_cls.validate_params(self.spec.workload_params)
        return workload_cls.from_params(config=config, **self.spec.workload_params)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def build(self) -> Scenario:
        """Resolve the spec into a :class:`Scenario` ready to ``run()``."""
        entry = NI_DESIGNS.entry(self.spec.design)
        if not entry.metadata.get("messaging", True):
            raise ScenarioError(
                "NI design %r has no QP pipelines and cannot carry workloads; "
                "messaging designs: %s"
                % (self.spec.design, ", ".join(NI_DESIGNS.names(messaging=True)))
            )
        config = self.resolve_config()
        machine = self.build_machine(config)
        workload = self.build_workload(config)
        return Scenario(self.spec, config, machine, workload)

    def run(self) -> ScenarioResult:
        """Build and run in one step."""
        return self.build().run()
