"""repro.scenario — pluggable machine/workload composition.

This subsystem makes every axis of the paper's design space a first-class,
registry-backed extension point:

* **Component registries** (:mod:`repro.scenario.registry`) — NI designs,
  topologies, workloads, open-loop arrival processes and fault models
  register themselves by name with decorators
  (``@register_ni_design("edge")``, ``@register_topology("mesh")``,
  ``@register_workload("uniform_random")``,
  ``@register_arrival_process("poisson")``,
  ``@register_fault_model("link_down")``).  The machine factory, the CLI
  (``repro-experiments list --designs/--topologies/--workloads/--arrivals/
  --faults``) and the experiment layer all enumerate and resolve components
  through these registries, so a new design/topology/workload/arrival
  process/fault model never requires editing core modules.
* **Declarative specs** (:mod:`repro.scenario.spec`) — a
  :class:`ScenarioSpec` names a design + topology + workload (+ parameter
  and config overrides), round-trips through JSON and carries a stable
  content fingerprint.
* **MachineBuilder** (:mod:`repro.scenario.builder`) — resolves a spec into
  a ready-to-run :class:`Scenario` and runs the unified workload lifecycle
  (setup / inject / drain / metrics) defined in
  :mod:`repro.scenario.workload`.

Registering and running a custom workload takes ~15 lines; see the
"Composing scenarios" section of the README.
"""

from repro.scenario.registry import (
    ARRIVALS,
    FAULT_MODELS,
    NI_DESIGNS,
    TOPOLOGIES,
    WORKLOADS,
    ComponentRegistry,
    RegistryEntry,
    register_arrival_process,
    register_fault_model,
    register_ni_design,
    register_topology,
    register_workload,
)
from repro.scenario.workload import Workload

#: Names resolved lazily (PEP 562): the builder imports the full node model,
#: which itself registers components through this package — importing it
#: eagerly here would make registration decorators in low-level modules
#: (e.g. core/placement.py) circular.
_LAZY = {
    "ScenarioSpec": "repro.scenario.spec",
    "MachineBuilder": "repro.scenario.builder",
    "Scenario": "repro.scenario.builder",
    "ScenarioResult": "repro.scenario.builder",
}

__all__ = [
    "ComponentRegistry",
    "RegistryEntry",
    "ARRIVALS",
    "FAULT_MODELS",
    "NI_DESIGNS",
    "TOPOLOGIES",
    "WORKLOADS",
    "register_arrival_process",
    "register_fault_model",
    "register_ni_design",
    "register_topology",
    "register_workload",
    "Workload",
    "ScenarioSpec",
    "MachineBuilder",
    "Scenario",
    "ScenarioResult",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), name)
