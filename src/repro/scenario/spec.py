"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one point in the machine/workload design
space: an NI design, an on-chip topology, a workload with its parameter
overrides, and optional dotted-path configuration overrides (e.g.
``{"cores.count": 16}``).  Specs are JSON/dict round-trippable and
content-fingerprinted the same way :class:`~repro.config.SystemConfig` and
campaign run requests are, so scenario results can be cached and compared by
identity::

    spec = ScenarioSpec(design="edge", workload="hotspot",
                        workload_params={"active_cores": 8})
    spec == ScenarioSpec.from_dict(spec.to_dict())   # round trip
    spec.fingerprint()                               # stable content hash

Component names are validated (and canonicalized) against the registries at
construction time, so a typo fails before any machine is built — with the
registered names, and a suggestion, in the error message.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.config import SystemConfig
from repro.errors import ScenarioError
from repro.scenario.registry import (
    ARRIVALS,
    FAULT_MODELS,
    NI_DESIGNS,
    TOPOLOGIES,
    WORKLOADS,
)


def _jsonable(value: object) -> object:
    """Normalize a parameter value to a canonical JSON-native form."""
    if isinstance(value, enum.Enum):
        return _jsonable(value.value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    raise ScenarioError("scenario parameter value %r is not JSON-serializable" % (value,))


@dataclass(frozen=True)
class ScenarioSpec:
    """One composable machine + workload scenario."""

    design: str = "split"
    topology: str = "mesh"
    workload: str = "uniform_random"
    #: Overrides for the workload's declared parameters.
    workload_params: Mapping[str, object] = field(default_factory=dict)
    #: Dotted-path SystemConfig overrides, e.g. ``{"cores.count": 16}``.
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Open-loop arrival process (``ARRIVALS`` registry name); None means the
    #: scenario runs closed-loop.  Only the load subsystem's OpenLoopDriver
    #: acts on these fields — MachineBuilder ignores them.
    arrivals: Optional[str] = None
    #: Overrides for the arrival process's declared parameters.
    arrival_params: Mapping[str, object] = field(default_factory=dict)
    #: Fault model (``FAULT_MODELS`` registry name); None means the scenario
    #: runs fault-free.  Like ``arrivals``, only the load subsystem acts on
    #: these fields — MachineBuilder ignores them.
    faults: Optional[str] = None
    #: Overrides for the fault model (``intensity``, schedule knobs such as
    #: ``mtbf_cycles``/``mttr_cycles``, and model-specific parameters).
    fault_params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Canonicalize names through the registries (raises RegistryError —
        # a ConfigurationError subclass — listing what exists).
        object.__setattr__(self, "design", NI_DESIGNS.resolve(self.design))
        object.__setattr__(self, "topology", TOPOLOGIES.resolve(self.topology))
        object.__setattr__(self, "workload", WORKLOADS.resolve(self.workload))
        object.__setattr__(self, "workload_params", _jsonable(dict(self.workload_params)))
        object.__setattr__(self, "config_overrides", _jsonable(dict(self.config_overrides)))
        if self.arrivals is not None:
            object.__setattr__(self, "arrivals", ARRIVALS.resolve(self.arrivals))
        elif self.arrival_params:
            raise ScenarioError("arrival_params given without an arrivals process name")
        object.__setattr__(self, "arrival_params", _jsonable(dict(self.arrival_params)))
        if self.faults is not None:
            object.__setattr__(self, "faults", FAULT_MODELS.resolve(self.faults))
        elif self.fault_params:
            raise ScenarioError("fault_params given without a fault model name")
        object.__setattr__(self, "fault_params", _jsonable(dict(self.fault_params)))
        if self.faults is not None:
            # Unknown fault parameters fail at spec resolution (with a
            # "did you mean" hint), not mid-simulation.  Lazy import: the
            # registry module must not depend on the faults package.
            from repro.faults.injector import validate_fault_params

            validate_fault_params(self.faults, self.fault_params)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def replace(self, **kwargs: object) -> "ScenarioSpec":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def resolve_config(self, base: Optional[SystemConfig] = None) -> SystemConfig:
        """The :class:`SystemConfig` this scenario runs with.

        Applies, in order: the design, the topology and the dotted-path
        overrides (which therefore win) on top of ``base`` (paper defaults
        when omitted).
        """
        config = base if base is not None else SystemConfig.paper_defaults()
        try:
            config = _apply_section_override(config, "ni", "design", self.design)
        except ScenarioError:
            # Registry-added designs outside the legacy NIDesign enum keep
            # their canonical name as the config value; the factory resolves
            # either form through the registry.
            config = config.replace(
                ni=dataclasses.replace(config.ni, design=self.design)
            )
        topology_entry = TOPOLOGIES.entry(self.topology)
        if topology_entry.metadata.get("scope", "chip") == "chip":
            try:
                config = _apply_section_override(config, "noc", "topology", self.topology)
            except ScenarioError:
                # Registry-added chip topologies outside the legacy
                # TopologyKind enum keep their canonical name as the config
                # value; build_placement resolves either form.
                config = config.replace(
                    noc=dataclasses.replace(config.noc, topology=self.topology)
                )
        for dotted, value in self.config_overrides.items():
            section, _, fieldname = dotted.partition(".")
            if not fieldname:
                config = _apply_top_level_override(config, section, value)
            else:
                config = _apply_section_override(config, section, fieldname, value)
        return config

    # ------------------------------------------------------------------
    # Serialization / identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "design": self.design,
            "topology": self.topology,
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "config_overrides": dict(self.config_overrides),
        }
        # Closed-loop specs serialize exactly as before the load subsystem
        # existed, so their fingerprints (and cached results) stay valid.
        if self.arrivals is not None:
            document["arrivals"] = self.arrivals
            document["arrival_params"] = dict(self.arrival_params)
        # Likewise: fault-free specs serialize exactly as before fault
        # injection existed, keeping their fingerprints unchanged.
        if self.faults is not None:
            document["faults"] = self.faults
            document["fault_params"] = dict(self.fault_params)
        return document

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioSpec":
        arrivals = payload.get("arrivals")
        faults = payload.get("faults")
        try:
            return cls(
                design=str(payload.get("design", "split")),
                topology=str(payload.get("topology", "mesh")),
                workload=str(payload.get("workload", "uniform_random")),
                workload_params=dict(payload.get("workload_params", {})),
                config_overrides=dict(payload.get("config_overrides", {})),
                arrivals=str(arrivals) if arrivals is not None else None,
                arrival_params=dict(payload.get("arrival_params", {})),
                faults=str(faults) if faults is not None else None,
                fault_params=dict(payload.get("fault_params", {})),
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError("malformed scenario document: %s" % exc) from None

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError("invalid scenario JSON: %s" % exc) from None
        return cls.from_dict(payload)

    def fingerprint(self) -> str:
        """Short content hash identifying this exact scenario.

        Two specs share a fingerprint iff every field (after name
        canonicalization) is equal — the same contract as
        :meth:`repro.config.SystemConfig.fingerprint`.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Human-readable one-liner, e.g. ``hotspot@edge/mesh``."""
        return "%s@%s/%s" % (self.workload, self.design, self.topology)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.fingerprint())


# ----------------------------------------------------------------------
# Dotted-path config overrides
# ----------------------------------------------------------------------
def _apply_top_level_override(config: SystemConfig, name: str, value: object) -> SystemConfig:
    if not hasattr(config, name) or name not in {f.name for f in dataclasses.fields(config)}:
        raise ScenarioError(
            "unknown config override %r (top-level fields: %s)"
            % (name, ", ".join(sorted(f.name for f in dataclasses.fields(config))))
        )
    return config.replace(**{name: _coerce_field_value(getattr(config, name), name, value)})


def _apply_section_override(
    config: SystemConfig, section: str, fieldname: str, value: object
) -> SystemConfig:
    current = getattr(config, section, None)
    if current is None or not dataclasses.is_dataclass(current):
        raise ScenarioError(
            "unknown config section %r in override %r (sections: %s)"
            % (
                section,
                "%s.%s" % (section, fieldname),
                ", ".join(sorted(
                    f.name for f in dataclasses.fields(config)
                    if dataclasses.is_dataclass(getattr(config, f.name))
                )),
            )
        )
    if fieldname not in {f.name for f in dataclasses.fields(current)}:
        raise ScenarioError(
            "config section %r has no field %r (fields: %s)"
            % (section, fieldname, ", ".join(sorted(f.name for f in dataclasses.fields(current))))
        )
    coerced = _coerce_field_value(getattr(current, fieldname), fieldname, value)
    return config.replace(**{section: dataclasses.replace(current, **{fieldname: coerced})})


def _coerce_field_value(current: object, fieldname: str, value: object) -> object:
    """Coerce a JSON-native override onto the field's existing type."""
    if isinstance(current, enum.Enum) and not isinstance(value, type(current)):
        try:
            return type(current)(value)
        except ValueError:
            raise ScenarioError(
                "config field %r must be one of %s, got %r"
                % (fieldname, ", ".join(repr(m.value) for m in type(current)), value)
            ) from None
    if isinstance(current, tuple) and isinstance(value, list):
        return tuple(value)
    if isinstance(current, bool) and not isinstance(value, bool):
        raise ScenarioError("config field %r expects a bool, got %r" % (fieldname, value))
    if isinstance(current, int) and not isinstance(current, bool) and isinstance(value, bool):
        raise ScenarioError("config field %r expects an int, got %r" % (fieldname, value))
    if isinstance(current, float) and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    return value
