"""The ``fault_profile`` figure: per-window tail latency around fault windows.

Renders the :meth:`~repro.faults.metrics.WindowedTails.window_percentiles`
rows a faulted run collects into a deterministic ASCII profile: one bar per
tail window scaled to the worst p99, with windows overlapping a fault (or
cascade) window marked, and a recovery-transient summary computed by
:func:`~repro.faults.metrics.recovery_transient_cycles`.  Pure text in, pure
text out — byte-identical across reruns and parallel campaign workers, so
chaos determinism tests can compare the figure directly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.faults.metrics import recovery_transient_cycles

#: Default bar width, in characters, of the p99 column.
DEFAULT_BAR_WIDTH = 32


def _overlaps(start: float, end: float,
              windows: Sequence[Sequence[float]]) -> bool:
    return any(start < off and on < end for on, off in windows)


def render_fault_profile(
    window_p99: Sequence[Sequence[float]],
    fault_windows: Sequence[Sequence[float]],
    window_cycles: float,
    baseline_p99: float = 0.0,
    tolerance: float = 1.5,
    width: int = DEFAULT_BAR_WIDTH,
    cascade_windows: Sequence[Sequence[float]] = (),
) -> List[str]:
    """Text lines of the fault profile figure.

    ``window_p99`` rows are ``(window_start, count, p99)`` as collected in
    ``fault_profile["window_p99"]``; ``fault_windows`` (and optionally
    ``cascade_windows``) are ``(on, off)`` pairs.  Rows overlapping a fault
    window are marked ``*``, rows overlapping a cascade window ``+`` (both
    when both).  ``baseline_p99`` anchors the recovery-transient estimate;
    0 disables it.
    """
    if not window_p99:
        return ["no completions recorded in any tail window"]
    lines = [
        "per-window p99 (window=%g cycles; * fault active, + cascade active)"
        % window_cycles
    ]
    peak = max(row[2] for row in window_p99)
    scale = peak if peak > 0.0 else 1.0
    for row in window_p99:
        start, count, p99 = float(row[0]), int(row[1]), float(row[2])
        end = start + window_cycles
        fault_mark = "*" if _overlaps(start, end, fault_windows) else " "
        cascade_mark = "+" if _overlaps(start, end, cascade_windows) else " "
        bar = "#" * max(1 if p99 > 0.0 else 0, int(round(p99 / scale * width)))
        lines.append(
            "%10.0f %s%s |%-*s| p99 %10.1f  n=%d"
            % (start, fault_mark, cascade_mark, width, bar, p99, count)
        )
    if baseline_p99 > 0.0:
        transient = recovery_transient_cycles(
            [(float(row[0]), int(row[1]), float(row[2])) for row in window_p99],
            [(float(on), float(off)) for on, off in fault_windows],
            window_cycles, baseline_p99, tolerance=tolerance,
        )
        if transient is None:
            lines.append(
                "recovery transient: none (tails within %.3gx of baseline p99 %.1f "
                "at every recovery)" % (tolerance, baseline_p99)
            )
        else:
            lines.append(
                "recovery transient: mean %.0f cycles above %.3gx of baseline "
                "p99 %.1f after recovery" % (transient, tolerance, baseline_p99)
            )
    return lines
