"""End-to-end latency projection across rack hop counts (Figure 5).

Figure 5 extends the Table-3 breakdowns from one network hop to the full
diameter of the 512-node 3D torus (0-12 hops, 70 cycles per hop per
direction) and reports both absolute latency in nanoseconds and the
percentage overhead of the messaging designs over the NUMA projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.breakdown import LatencyBreakdownModel
from repro.config import NIDesign, SystemConfig
from repro.errors import ConfigurationError
from repro.fabric.torus import Torus3D


@dataclass(frozen=True)
class ProjectionPoint:
    """Latency of every design at one hop count."""

    hops: int
    latency_ns: Dict[NIDesign, float]
    overhead_over_numa: Dict[NIDesign, float]


class HopProjection:
    """Builds the Figure-5 latency-vs-hop-count projection."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 designs: Sequence[NIDesign] = (NIDesign.NUMA, NIDesign.SPLIT, NIDesign.EDGE)) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        self.designs = tuple(designs)
        self.model = LatencyBreakdownModel(self.config)
        self.torus = Torus3D(self.config.rack.torus_dims)

    def max_hops(self) -> int:
        """The rack diameter (12 for the default 8x8x8 torus)."""
        return self.torus.max_hop_count()

    def average_hops(self) -> float:
        """The average node-to-node distance (6 for the default torus)."""
        return self.torus.average_hop_count()

    def point(self, hops: int) -> ProjectionPoint:
        """Latencies and overheads at one hop count."""
        if hops < 0:
            raise ConfigurationError("hop count cannot be negative")
        frequency = self.config.cores.frequency_ghz
        latency_ns: Dict[NIDesign, float] = {}
        for design in self.designs:
            latency_ns[design] = self.model.breakdown(design, hops).total_ns(frequency)
        numa = self.model.breakdown(NIDesign.NUMA, hops)
        overhead: Dict[NIDesign, float] = {}
        for design in self.designs:
            if design is NIDesign.NUMA:
                overhead[design] = 0.0
            else:
                overhead[design] = self.model.breakdown(design, hops).overhead_over(numa)
        return ProjectionPoint(hops=hops, latency_ns=latency_ns, overhead_over_numa=overhead)

    def sweep(self, max_hops: Optional[int] = None) -> List[ProjectionPoint]:
        """The full Figure-5 series: every hop count from 0 to the diameter."""
        limit = self.max_hops() if max_hops is None else max_hops
        return [self.point(h) for h in range(limit + 1)]
