"""Analytical bandwidth bounds (cross-checks for Figure 7).

The model captures the first-order limits the paper discusses in §6.2:

* the NOC bisection caps the achievable *application* bandwidth, because
  every application byte drags protocol headers, memory requests and LLC
  write-backs across the chip with it (the paper measures 594 GBps of NOC
  traffic for 214 GBps of application bandwidth, a ~2.7x expansion);
* for small transfers, the edge design is limited by how fast a core can
  create WQ entries when every QP interaction is a chip-crossing coherence
  transaction;
* for large transfers, the per-tile design is limited by the serialization of
  unrolled requests onto its tile's injection link and the doubled response
  traffic caused by the source-NI indirection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import NIDesign, SystemConfig
from repro.errors import ConfigurationError
from repro.sonuma.unroll import block_count
from repro.sonuma.wire import REQUEST_HEADER_BYTES, RESPONSE_HEADER_BYTES


@dataclass(frozen=True)
class BandwidthEstimate:
    """An estimated application-bandwidth bound, in GBps."""

    design: NIDesign
    transfer_bytes: int
    limit_gbps: float
    limiting_factor: str


class BandwidthModel:
    """Closed-form bandwidth bounds per NI design."""

    #: Approximate wire-to-application traffic expansion on the NOC
    #: (headers, memory requests, LLC write-backs); §6.2 measures ~2.7x.
    WIRE_EXPANSION = 2.7

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()

    # ------------------------------------------------------------------
    # Chip-level ceilings
    # ------------------------------------------------------------------
    def bisection_limit_gbps(self) -> float:
        """Application bandwidth supportable by the NOC bisection."""
        return self.config.noc_bisection_bandwidth_gbps / self.WIRE_EXPANSION

    def memory_limit_gbps(self) -> float:
        """Aggregate memory bandwidth (never the bottleneck by construction, §5)."""
        return (
            self.config.memory.controllers
            * self.config.memory.bandwidth_gbps_per_controller
        )

    # ------------------------------------------------------------------
    # Per-design bounds
    # ------------------------------------------------------------------
    def issue_rate_limit_gbps(self, design: NIDesign, transfer_bytes: int) -> float:
        """Bandwidth bound imposed by per-core WQ/CQ interaction latency.

        A core must spend the WQ-write and (amortized) CQ-read costs for
        every transfer; with all cores issuing concurrently the chip cannot
        request data faster than ``cores x transfer / per_transfer_cost``.
        The factor of two accounts for the rate-matched incoming traffic that
        is counted in the application bandwidth as well (§6.2).
        """
        if transfer_bytes <= 0:
            raise ConfigurationError("transfer size must be positive")
        cal = self.config.calibration
        if design is NIDesign.EDGE:
            per_transfer = (
                cal.edge_wq_write_cycles
                + cal.edge_cq_read_cycles
            )
        elif design in (NIDesign.PER_TILE, NIDesign.SPLIT):
            per_transfer = (
                cal.wq_write_instruction_cycles
                + cal.qp_entry_local_transfer_cycles
                + cal.cq_read_instruction_cycles
                + cal.qp_entry_local_transfer_cycles
            )
        else:
            raise ConfigurationError("issue-rate bound is only defined for QP designs")
        cores = self.config.cores.count
        bytes_per_cycle = cores * transfer_bytes / per_transfer
        return 2.0 * bytes_per_cycle * self.config.cores.frequency_ghz

    def per_tile_injection_limit_gbps(self, transfer_bytes: int) -> float:
        """Bound from unrolling at the source tile (per-tile design, §6.1.3/§6.2).

        Each unrolled block costs a two-flit request on the tile's single
        injection link and, on the way back, a response that visits the
        source NI before its payload moves to the home LLC tile — roughly
        doubling the per-block on-chip traffic relative to the edge designs.
        """
        link_bytes = self.config.noc.link_bytes
        block = self.config.cache_block_bytes
        blocks = block_count(transfer_bytes, block)
        request_flits = 1 + (REQUEST_HEADER_BYTES + link_bytes - 1) // link_bytes
        response_flits = 1 + (RESPONSE_HEADER_BYTES + block + link_bytes - 1) // link_bytes
        # Cycles of injection-link occupancy per block at the source tile
        # (request out, response in, payload back out toward the LLC).
        per_block_cycles = request_flits + 2 * response_flits
        bytes_per_cycle_per_tile = block / per_block_cycles * blocks / max(1, blocks)
        cores = self.config.cores.count
        # Only half the chip's tiles can stream concurrently before the
        # edge-column links saturate; use the bisection as the binding cap.
        raw = 2.0 * cores * bytes_per_cycle_per_tile * self.config.cores.frequency_ghz
        return min(raw, 0.5 * self.bisection_limit_gbps())

    def estimate(self, design: NIDesign, transfer_bytes: int) -> BandwidthEstimate:
        """The binding bound for one design and transfer size."""
        ceilings = {
            "bisection": self.bisection_limit_gbps(),
            "memory": self.memory_limit_gbps(),
            "issue_rate": self.issue_rate_limit_gbps(design, transfer_bytes),
        }
        if design is NIDesign.PER_TILE:
            ceilings["tile_injection"] = self.per_tile_injection_limit_gbps(transfer_bytes)
        factor, limit = min(ceilings.items(), key=lambda item: item[1])
        return BandwidthEstimate(
            design=design,
            transfer_bytes=transfer_bytes,
            limit_gbps=limit,
            limiting_factor=factor,
        )
