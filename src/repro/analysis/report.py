"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ExperimentError


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "%.1f") -> str:
    """Render an aligned plain-text table.

    Numbers are formatted with ``float_format``; everything else with ``str``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                "row has %d cells but there are %d headers" % (len(row), len(headers))
            )
        rendered_rows.append([_render(cell, float_format) for cell in row])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _render(cell: object, float_format: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return float_format % cell
    return str(cell)
