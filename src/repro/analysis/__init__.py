"""Analytical models: zero-load latency breakdowns, hop-count projections and
bandwidth bounds, cross-validated against the discrete-event simulator."""

from repro.analysis.breakdown import (
    BreakdownComponent,
    DesignBreakdown,
    LatencyBreakdownModel,
)
from repro.analysis.projection import HopProjection, ProjectionPoint
from repro.analysis.bandwidth_model import BandwidthModel
from repro.analysis.fault_profile import render_fault_profile
from repro.analysis.report import format_table

__all__ = [
    "BreakdownComponent",
    "DesignBreakdown",
    "LatencyBreakdownModel",
    "HopProjection",
    "ProjectionPoint",
    "BandwidthModel",
    "format_table",
    "render_fault_profile",
]
