"""Zero-load latency breakdowns (Tables 1 and 3).

The breakdowns are built from the calibrated component costs of
:class:`~repro.config.LatencyCalibration` (the paper's measured instruction
overheads and pipeline occupancies) plus the network latency for the chosen
hop count.  They reproduce, by construction, the totals of Table 1
(710 vs 395 cycles, 79.7 % overhead) and Table 3 (710 / 445 / 447 / 395
cycles); the simulator is cross-checked against them in the test suite and
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import NIDesign, SystemConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BreakdownComponent:
    """One row of a latency breakdown."""

    label: str
    cycles: float


@dataclass(frozen=True)
class DesignBreakdown:
    """The full breakdown for one design at one hop count."""

    design: NIDesign
    hops: int
    components: List[BreakdownComponent]

    @property
    def total_cycles(self) -> float:
        return sum(component.cycles for component in self.components)

    def total_ns(self, frequency_ghz: float) -> float:
        return self.total_cycles / frequency_ghz

    def overhead_over(self, baseline: "DesignBreakdown") -> float:
        """Fractional latency overhead relative to ``baseline`` (e.g. NUMA)."""
        if baseline.total_cycles <= 0:
            raise ConfigurationError("baseline breakdown has non-positive total")
        return self.total_cycles / baseline.total_cycles - 1.0

    def as_dict(self) -> Dict[str, float]:
        return {component.label: component.cycles for component in self.components}


class LatencyBreakdownModel:
    """Builds the per-design zero-load breakdowns of a single-block remote read."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        self.calibration = self.config.calibration

    # ------------------------------------------------------------------
    # Per-design breakdowns
    # ------------------------------------------------------------------
    def breakdown(self, design: NIDesign, hops: int = 1) -> DesignBreakdown:
        """Breakdown of a single-cache-block remote read for ``design``."""
        if hops < 0:
            raise ConfigurationError("hop count cannot be negative")
        builders = {
            NIDesign.EDGE: self._edge,
            NIDesign.PER_TILE: self._per_tile,
            NIDesign.SPLIT: self._split,
            NIDesign.NUMA: self._numa,
        }
        return DesignBreakdown(design=design, hops=hops, components=builders[design](hops))

    def all_breakdowns(self, hops: int = 1) -> Dict[NIDesign, DesignBreakdown]:
        """Table 3: every design at the same hop count."""
        return {design: self.breakdown(design, hops) for design in NIDesign}

    def overhead_over_numa(self, design: NIDesign, hops: int = 1) -> float:
        """Fractional overhead of ``design`` over the NUMA projection."""
        return self.breakdown(design, hops).overhead_over(self.breakdown(NIDesign.NUMA, hops))

    # ------------------------------------------------------------------
    # Component builders
    # ------------------------------------------------------------------
    def _network(self, hops: int) -> float:
        return hops * self.config.network_hop_cycles

    def _edge(self, hops: int) -> List[BreakdownComponent]:
        cal = self.calibration
        network = self._network(hops)
        return [
            BreakdownComponent("WQ write (core)", cal.edge_wq_write_cycles),
            BreakdownComponent("WQ read and RGP processing (NI)", cal.edge_wq_read_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("RRPP servicing", cal.rrpp_service_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("RCP processing and CQ entry write (NI)", cal.edge_cq_write_cycles),
            BreakdownComponent("CQ read (core)", cal.edge_cq_read_cycles),
        ]

    def _per_tile(self, hops: int) -> List[BreakdownComponent]:
        cal = self.calibration
        network = self._network(hops)
        return [
            BreakdownComponent("WQ write software overhead", cal.wq_write_instruction_cycles),
            BreakdownComponent("WQ entry transfer", cal.qp_entry_local_transfer_cycles),
            BreakdownComponent("RGP processing", cal.rgp_processing_cycles),
            BreakdownComponent("Transfer request to chip edge", cal.tile_to_edge_transfer_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("RRPP servicing", cal.rrpp_service_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("Transfer reply to RCP", cal.tile_to_edge_transfer_cycles),
            BreakdownComponent("RCP processing", cal.rcp_processing_cycles),
            BreakdownComponent("CQ entry transfer", cal.qp_entry_local_transfer_cycles),
            BreakdownComponent("CQ read software overhead", cal.cq_read_instruction_cycles),
        ]

    def _split(self, hops: int) -> List[BreakdownComponent]:
        cal = self.calibration
        network = self._network(hops)
        return [
            BreakdownComponent("WQ write software overhead", cal.wq_write_instruction_cycles),
            BreakdownComponent("WQ entry transfer", cal.qp_entry_local_transfer_cycles),
            BreakdownComponent("RGP frontend processing", cal.rgp_frontend_cycles),
            BreakdownComponent("Transfer request to RGP backend", cal.tile_to_edge_transfer_cycles),
            BreakdownComponent("RGP backend processing", cal.rgp_backend_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("RRPP servicing", cal.rrpp_service_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("RCP backend processing", cal.rcp_backend_cycles),
            BreakdownComponent("Transfer reply to RCP frontend", cal.tile_to_edge_transfer_cycles),
            BreakdownComponent("RCP frontend processing", cal.rcp_frontend_cycles),
            BreakdownComponent("CQ entry transfer", cal.qp_entry_local_transfer_cycles),
            BreakdownComponent("CQ read software overhead", cal.cq_read_instruction_cycles),
        ]

    def _numa(self, hops: int) -> List[BreakdownComponent]:
        cal = self.calibration
        network = self._network(hops)
        return [
            BreakdownComponent("Exec. of load instruction", cal.numa_issue_cycles),
            BreakdownComponent("Transfer request to chip edge", cal.tile_to_edge_transfer_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("Read data from memory", cal.rrpp_service_cycles),
            BreakdownComponent("Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("Transfer reply to core", cal.tile_to_edge_transfer_cycles),
        ]

    # ------------------------------------------------------------------
    # Table 1 view (QP-based model vs NUMA, coarse components)
    # ------------------------------------------------------------------
    def table1(self, hops: int = 1) -> Dict[str, DesignBreakdown]:
        """The two-column comparison of Table 1."""
        cal = self.calibration
        network = self._network(hops)
        qp_components = [
            BreakdownComponent("A1) WQ write (core)", cal.edge_wq_write_cycles),
            BreakdownComponent("A2) WQ read (NI)", cal.edge_wq_read_cycles),
            BreakdownComponent("A3) Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("A4) Read data from memory", cal.rrpp_service_cycles),
            BreakdownComponent("A5) Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("A6) CQ write (NI)", cal.edge_cq_write_cycles),
            BreakdownComponent("A7) CQ read (core)", cal.edge_cq_read_cycles),
        ]
        numa_components = [
            BreakdownComponent("B1) Exec. of load instruction", cal.numa_issue_cycles),
            BreakdownComponent("B2) Transfer req. to chip edge", cal.tile_to_edge_transfer_cycles),
            BreakdownComponent("B3) Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("B4) Read data from memory", cal.rrpp_service_cycles),
            BreakdownComponent("B5) Intra-rack network (%d hop)" % hops, network),
            BreakdownComponent("B6) Transfer reply to core", cal.tile_to_edge_transfer_cycles),
        ]
        return {
            "qp_based": DesignBreakdown(NIDesign.EDGE, hops, qp_components),
            "numa": DesignBreakdown(NIDesign.NUMA, hops, numa_components),
        }
