"""soNUMA protocol layer: wire format, contexts and request unrolling (§4)."""

from repro.sonuma.wire import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    RemoteRequest,
    RemoteResponse,
    TransferStatus,
)
from repro.sonuma.context import RemoteContext, ContextRegistry
from repro.sonuma.unroll import unroll_blocks, block_count

__all__ = [
    "REQUEST_HEADER_BYTES",
    "RESPONSE_HEADER_BYTES",
    "RemoteRequest",
    "RemoteResponse",
    "TransferStatus",
    "RemoteContext",
    "ContextRegistry",
    "unroll_blocks",
    "block_count",
]
