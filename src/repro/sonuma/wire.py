"""soNUMA wire protocol.

Remote accesses spanning multiple cache blocks are unrolled into
cache-block-sized request/response packets at the source node (§4).  Each
request packet carries a small header (context id, offset, request id, block
index); read responses and write requests additionally carry one cache block
of payload.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.config import CACHE_BLOCK_BYTES
from repro.errors import ProtocolError
from repro.qp.entries import RemoteOp

#: soNUMA request header bytes (fits in one extra flit on a 16-byte link,
#: giving the two-flit request packets described in §6.1.3).
REQUEST_HEADER_BYTES = 16
#: soNUMA response header bytes.
RESPONSE_HEADER_BYTES = 16

_request_ids = itertools.count()


class TransferStatus(enum.Enum):
    """Status of an unrolled transfer tracked by the RGP/RCP."""

    IN_FLIGHT = "in_flight"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class RemoteRequest:
    """One cache-block-sized request packet."""

    op: RemoteOp
    src_node: int
    dst_node: int
    ctx_id: int
    offset: int
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Parent transfer (WQ entry) this block request belongs to.
    transfer_id: int = 0
    block_index: int = 0
    total_blocks: int = 1

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ProtocolError("request offset cannot be negative")
        if self.block_index < 0 or self.total_blocks <= 0:
            raise ProtocolError("invalid unroll indices")
        if self.block_index >= self.total_blocks:
            raise ProtocolError("block index %d outside transfer of %d blocks"
                                % (self.block_index, self.total_blocks))

    @property
    def wire_bytes(self) -> int:
        """Bytes this request occupies on the inter-node network."""
        payload = CACHE_BLOCK_BYTES if self.op is RemoteOp.WRITE else 0
        return REQUEST_HEADER_BYTES + payload

    def make_response(self, success: bool = True) -> "RemoteResponse":
        """Build the matching response packet."""
        return RemoteResponse(
            request_id=self.request_id,
            transfer_id=self.transfer_id,
            src_node=self.dst_node,
            dst_node=self.src_node,
            op=self.op,
            block_index=self.block_index,
            total_blocks=self.total_blocks,
            success=success,
        )


@dataclass
class RemoteResponse:
    """One cache-block-sized response packet."""

    request_id: int
    transfer_id: int
    src_node: int
    dst_node: int
    op: RemoteOp
    block_index: int
    total_blocks: int
    success: bool = True

    @property
    def wire_bytes(self) -> int:
        """Bytes this response occupies on the inter-node network."""
        payload = CACHE_BLOCK_BYTES if self.op is RemoteOp.READ else 0
        return RESPONSE_HEADER_BYTES + payload
