"""Request unrolling.

A WQ entry describes a transfer of up to tens of kilobytes; the RGP unrolls
it into cache-block-sized request packets (§4, §4.1).  Where the unroll
happens — at the source tile (per-tile design) or at the chip edge (edge and
split designs) — is the crux of the bandwidth results in §6.2.
"""

from __future__ import annotations

from typing import List

from repro.config import CACHE_BLOCK_BYTES
from repro.errors import ProtocolError
from repro.qp.entries import RemoteOp, WorkQueueEntry
from repro.sonuma.wire import RemoteRequest


def block_count(length: int, block_bytes: int = CACHE_BLOCK_BYTES) -> int:
    """Number of cache-block requests needed for a transfer of ``length`` bytes."""
    if length <= 0:
        raise ProtocolError("transfer length must be positive")
    return (length + block_bytes - 1) // block_bytes


def unroll_blocks(
    entry: WorkQueueEntry,
    src_node: int,
    transfer_id: int,
    block_bytes: int = CACHE_BLOCK_BYTES,
) -> List[RemoteRequest]:
    """Unroll a WQ entry into its per-block :class:`RemoteRequest` packets."""
    if not isinstance(entry.op, RemoteOp):
        raise ProtocolError("WQ entry has an invalid operation %r" % (entry.op,))
    blocks = block_count(entry.length, block_bytes)
    requests: List[RemoteRequest] = []
    for index in range(blocks):
        requests.append(
            RemoteRequest(
                op=entry.op,
                src_node=src_node,
                dst_node=entry.dst_node,
                ctx_id=entry.ctx_id,
                offset=entry.remote_offset + index * block_bytes,
                transfer_id=transfer_id,
                block_index=index,
                total_blocks=blocks,
            )
        )
    return requests
