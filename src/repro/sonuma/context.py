"""soNUMA contexts: registered remote-access memory regions.

A context is a region of a node's memory exported for one-sided remote
access; the set of contexts across nodes forms the partitioned global
address space (§4).  Contexts are identified by a small integer carried in
every request header, and the responding node validates offsets against the
registered size before touching memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.errors import ProtocolError


@dataclass(frozen=True)
class RemoteContext:
    """A registered memory region on one node."""

    ctx_id: int
    node_id: int
    base_addr: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.ctx_id < 0 or self.node_id < 0:
            raise ProtocolError("context and node ids cannot be negative")
        if self.base_addr < 0:
            raise ProtocolError("context base address cannot be negative")
        if self.size_bytes <= 0:
            raise ProtocolError("context size must be positive")

    def contains(self, offset: int, length: int = 1) -> bool:
        """True when [offset, offset+length) falls inside the region."""
        return 0 <= offset and offset + length <= self.size_bytes

    def translate(self, offset: int) -> int:
        """Local physical address of ``offset`` within the context."""
        if not self.contains(offset):
            raise ProtocolError(
                "offset %d outside context %d of size %d" % (offset, self.ctx_id, self.size_bytes)
            )
        return self.base_addr + offset


class ContextRegistry:
    """Per-node table of registered contexts."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._contexts: Dict[int, RemoteContext] = {}

    def register(self, ctx_id: int, base_addr: int, size_bytes: int) -> RemoteContext:
        """Register (or re-register) a context."""
        if ctx_id in self._contexts:
            raise ProtocolError("context %d already registered on node %d" % (ctx_id, self.node_id))
        ctx = RemoteContext(ctx_id=ctx_id, node_id=self.node_id, base_addr=base_addr, size_bytes=size_bytes)
        self._contexts[ctx_id] = ctx
        return ctx

    def lookup(self, ctx_id: int) -> RemoteContext:
        try:
            return self._contexts[ctx_id]
        except KeyError:
            raise ProtocolError("context %d is not registered on node %d" % (ctx_id, self.node_id)) from None

    def validate(self, ctx_id: int, offset: int, length: int) -> RemoteContext:
        """Lookup + bounds-check; raises :class:`ProtocolError` on violation."""
        ctx = self.lookup(ctx_id)
        if not ctx.contains(offset, length):
            raise ProtocolError(
                "access [%d, %d) outside context %d (size %d)"
                % (offset, offset + length, ctx_id, ctx.size_bytes)
            )
        return ctx

    def __iter__(self) -> Iterator[RemoteContext]:
        return iter(self._contexts.values())

    def __len__(self) -> int:
        return len(self._contexts)
