"""Open-loop arrival processes.

Closed-loop drivers (a core issues the next request only after the previous
one completes) cannot expose queueing behaviour: when the system slows down,
the offered load politely slows down with it.  The paper's latency-under-load
methodology — and datacenter-scale evaluation in general — instead injects
requests on an *arrival clock* that does not care how the system is doing,
which is what makes tail latencies blow up as load approaches saturation.

Every arrival process is a registered component in
:data:`repro.scenario.registry.ARRIVALS` and produces an endless stream of
inter-arrival *gaps* (cycles) for a target mean rate, seeded and fully
reproducible: the same ``(name, rate, seed, params)`` tuple always yields the
same injection schedule, on any worker process (see
:meth:`ArrivalProcess.schedule_fingerprint`).

Built-ins:

* ``deterministic`` — constant gaps (the lowest-variance baseline);
* ``poisson`` — exponential gaps (memoryless, the standard open-loop model);
* ``bursty`` — MMPP-style on/off modulation: exponential dwell times switch
  between a silent state and an on state whose instantaneous rate is scaled
  so the long-run mean matches the requested rate;
* ``trace`` — replay of a JSONL schedule (one object per line, ``{"time": t}``
  absolute cycles or ``{"gap": g}``), rescaled to the requested mean rate so
  a recorded burst structure can be swept across load levels.
"""

from __future__ import annotations

import abc
import hashlib
import json
import random
from typing import Dict, Iterator, List, Mapping, Optional

from repro.errors import WorkloadError
from repro.scenario.registry import register_arrival_process

#: The rate unit used throughout the load subsystem: requests per 1000 cycles
#: (at the paper's 2 GHz core clock, 1 req/kcycle = 2 M requests/s).
CYCLES_PER_RATE_UNIT = 1000.0


class ArrivalProcess(abc.ABC):
    """An endless, seeded stream of inter-arrival gaps for one mean rate."""

    #: Canonical registry name, for results and error messages.
    name: str = ""
    #: Constructor parameters a caller may override, with their defaults
    #: (mirrors :attr:`repro.scenario.workload.Workload.param_defaults`).
    param_defaults: Mapping[str, object] = {}

    def __init__(self, rate_per_kcycle: float, seed: int = 0) -> None:
        if rate_per_kcycle <= 0:
            raise WorkloadError("arrival rate must be positive (requests per kcycle)")
        self.rate_per_kcycle = float(rate_per_kcycle)
        self.seed = int(seed)

    @property
    def mean_gap_cycles(self) -> float:
        """The mean inter-arrival gap implied by the target rate."""
        return CYCLES_PER_RATE_UNIT / self.rate_per_kcycle

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def gaps(self) -> Iterator[float]:
        """A fresh endless iterator of inter-arrival gaps in cycles.

        Each call restarts the process from its seed, so two iterations of
        the same instance produce identical schedules.
        """

    def arrival_times(self, limit: int) -> List[float]:
        """The first ``limit`` absolute arrival times (cycles from start).

        Finite processes (a non-looping trace) may return fewer than
        ``limit`` times.
        """
        times: List[float] = []
        now = 0.0
        stream = self.gaps()
        for _ in range(limit):
            gap = next(stream, None)
            if gap is None:
                break
            now += gap
            times.append(now)
        return times

    def schedule_fingerprint(self, count: int = 256) -> str:
        """Content hash of the first ``count`` arrivals (fewer if finite).

        Two processes share a fingerprint iff they would inject identically;
        the determinism tests compare fingerprints across runs and across
        parallel campaign workers.
        """
        payload = ",".join("%.9g" % t for t in self.arrival_times(count))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Construction from validated parameters
    # ------------------------------------------------------------------
    @classmethod
    def from_params(cls, rate_per_kcycle: float, seed: int = 0,
                    **params: object) -> "ArrivalProcess":
        """Instantiate with validated parameters (unknown names fail loudly)."""
        cls.validate_params(params)
        return cls(rate_per_kcycle, seed=seed, **params)

    @classmethod
    def validate_params(cls, params: Mapping[str, object]) -> None:
        """Raise :class:`WorkloadError` for names not in ``param_defaults``."""
        unknown = sorted(set(params) - set(cls.param_defaults))
        if unknown:
            raise WorkloadError(
                "arrival process %r does not accept parameter(s) %s (accepted: %s)"
                % (
                    cls.name or cls.__name__,
                    ", ".join(repr(name) for name in unknown),
                    ", ".join(sorted(cls.param_defaults)) or "none",
                )
            )


@register_arrival_process("deterministic")
class DeterministicArrivals(ArrivalProcess):
    """Constant inter-arrival gaps: the zero-variance open-loop baseline."""

    name = "deterministic"
    param_defaults: Mapping[str, object] = {}

    def gaps(self) -> Iterator[float]:
        gap = self.mean_gap_cycles
        while True:
            yield gap


@register_arrival_process("poisson")
class PoissonArrivals(ArrivalProcess):
    """Memoryless exponential gaps (the standard datacenter arrival model)."""

    name = "poisson"
    param_defaults: Mapping[str, object] = {}

    def gaps(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        mean = self.mean_gap_cycles
        expovariate = rng.expovariate
        rate = 1.0 / mean
        while True:
            yield expovariate(rate)


@register_arrival_process("bursty")
class BurstyArrivals(ArrivalProcess):
    """MMPP-style on/off bursts with exponential dwell times.

    The process alternates between an *on* state emitting Poisson arrivals
    and a silent *off* state.  The on-state rate is scaled by
    ``(on_cycles + off_cycles) / on_cycles`` so the long-run mean equals the
    requested rate — identical mean load, much heavier tail than ``poisson``.
    """

    name = "bursty"
    param_defaults: Mapping[str, object] = {"on_cycles": 2000.0, "off_cycles": 6000.0}

    def __init__(self, rate_per_kcycle: float, seed: int = 0,
                 on_cycles: float = 2000.0, off_cycles: float = 6000.0) -> None:
        super().__init__(rate_per_kcycle, seed=seed)
        if on_cycles <= 0 or off_cycles < 0:
            raise WorkloadError("burst dwell times must be positive (on) and non-negative (off)")
        self.on_cycles = float(on_cycles)
        self.off_cycles = float(off_cycles)

    def gaps(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        duty = self.on_cycles / (self.on_cycles + self.off_cycles)
        on_rate = 1.0 / (self.mean_gap_cycles * duty)  # arrivals per cycle while on
        now = 0.0
        last = 0.0
        while True:
            on_end = now + rng.expovariate(1.0 / self.on_cycles)
            while True:
                step = rng.expovariate(on_rate)
                if now + step > on_end:
                    break
                now += step
                yield now - last
                last = now
            now = on_end
            if self.off_cycles > 0:
                now += rng.expovariate(1.0 / self.off_cycles)


@register_arrival_process("trace")
class TraceReplayArrivals(ArrivalProcess):
    """Replay of a recorded JSONL arrival schedule.

    Each line is one JSON object carrying either ``{"time": t}`` (absolute
    cycles, non-decreasing) or ``{"gap": g}`` (cycles since the previous
    arrival); the two forms may not be mixed.  The recorded schedule is
    rescaled so its mean rate matches ``rate_per_kcycle`` — the burst
    *structure* is the trace's, the load level is the sweep's — and loops
    when exhausted (``loop=False`` instead ends injection with the trace).
    """

    name = "trace"
    param_defaults: Mapping[str, object] = {"path": "", "loop": True}

    def __init__(self, rate_per_kcycle: float, seed: int = 0,
                 path: str = "", loop: bool = True) -> None:
        super().__init__(rate_per_kcycle, seed=seed)
        if not path:
            raise WorkloadError("trace arrivals need a 'path' to a JSONL schedule")
        self.path = path
        self.loop = bool(loop)
        self._gaps = _load_trace_gaps(path)
        natural_mean = sum(self._gaps) / len(self._gaps)
        if natural_mean <= 0:
            raise WorkloadError("trace %s has a zero-length schedule" % path)
        self._scale = self.mean_gap_cycles / natural_mean

    def gaps(self) -> Iterator[float]:
        scale = self._scale
        while True:
            for gap in self._gaps:
                yield gap * scale
            if not self.loop:
                return


def _load_trace_gaps(path: str) -> List[float]:
    """Parse a JSONL arrival trace into a list of inter-arrival gaps."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.strip() for line in handle if line.strip()]
    except OSError as exc:
        raise WorkloadError("cannot read arrival trace %s: %s" % (path, exc)) from None
    if not lines:
        raise WorkloadError("arrival trace %s is empty" % path)
    gaps: List[float] = []
    previous_time: Optional[float] = None
    mode: Optional[str] = None
    for number, line in enumerate(lines, start=1):
        try:
            record: Dict[str, object] = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadError("%s:%d: invalid JSON: %s" % (path, number, exc)) from None
        if not isinstance(record, dict) or ("time" in record) == ("gap" in record):
            raise WorkloadError(
                "%s:%d: each trace line must carry exactly one of 'time' or 'gap'"
                % (path, number)
            )
        key = "time" if "time" in record else "gap"
        if mode is None:
            mode = key
        elif key != mode:
            raise WorkloadError(
                "%s:%d: trace mixes 'time' and 'gap' records" % (path, number)
            )
        try:
            value = float(record[key])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise WorkloadError(
                "%s:%d: %r must be a number, got %r" % (path, number, key, record[key])
            ) from None
        if key == "gap":
            if value < 0:
                raise WorkloadError("%s:%d: gaps cannot be negative" % (path, number))
            gaps.append(value)
        else:
            floor = 0.0 if previous_time is None else previous_time
            if value < floor:
                raise WorkloadError(
                    "%s:%d: absolute times must be non-negative and non-decreasing"
                    % (path, number)
                )
            gaps.append(value - floor)
            previous_time = value
    return gaps
