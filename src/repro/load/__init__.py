"""repro.load — open-loop load generation and tail-latency analysis.

The paper's headline results are latency-*under-load* curves: each NI design
is judged by how remote-read latency degrades as offered load climbs toward
saturation.  This subsystem provides the three pieces that methodology
needs:

* **Arrival processes** (:mod:`repro.load.arrivals`) — seeded, reproducible
  open-loop arrival clocks (``deterministic``, ``poisson``, ``bursty``,
  ``trace``) registered in :data:`repro.scenario.registry.ARRIVALS`, the
  fourth scenario axis;
* **The open-loop driver** (:mod:`repro.load.driver`) — wraps any registered
  workload, injects requests on the arrival clock with bounded per-core
  queues and drop accounting, and measures arrival-to-completion latency
  into exact :class:`~repro.sim.stats.LatencyHistogram` recorders (with
  per-tenant breakdowns for multi-tenant mixes);
* **The saturation sweep** (:mod:`repro.experiments.load_sweep`) — the
  ``load_sweep`` experiment walks offered load across load points, reports
  exact p50/p95/p99/p99.9 per point and finds the saturation throughput:
  the highest load whose p99 still meets the SLO relative to the
  lowest-load latency.
"""

from repro.load.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TraceReplayArrivals,
)
from repro.load.driver import OpenLoopDriver, OpenLoopResult, TenantLoad

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceReplayArrivals",
    "OpenLoopDriver",
    "OpenLoopResult",
    "TenantLoad",
]
