"""Open-loop load generation over any registered scenario.

:class:`OpenLoopDriver` replaces a workload's closed-loop injection
(``inject()``'s pull iterators, where request N+1 waits for request N) with
an *arrival clock*: a seeded :class:`~repro.load.arrivals.ArrivalProcess`
fires at its own pace and each firing feeds one request — pulled from the
workload's :meth:`~repro.scenario.workload.Workload.request_stream` — to one
of the workload's cores.  Requests wait in a bounded per-core queue when the
core is saturated and are *dropped* (and accounted) when the queue is full,
so the driver exposes exactly the latency-under-load behaviour the paper's
headline figures are about: end-to-end latency is measured from the arrival
instant, queueing included, into exact-histogram recorders.

Multi-tenant mixes partition the workload's cores between
:class:`TenantLoad` entries, each with its own arrival process and share of
the offered load; results carry per-tenant breakdowns next to the
machine-wide aggregate.

A ``faults`` name (``FAULT_MODELS`` registry) runs the load under seeded
fault injection: a :class:`~repro.faults.injector.FaultInjector` is installed
for the run's horizon, arrivals shed by an active ``ni_stall`` fault are
accounted as *fault-induced* drops (separate from queue-overflow drops), and
completions additionally feed a :class:`~repro.faults.metrics.WindowedTails`
recorder so results carry per-window p99 rows for recovery analysis.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.errors import WorkloadError
from repro.load.arrivals import ArrivalProcess
from repro.obs import hooks as obs_hooks
from repro.scenario.registry import ARRIVALS, FAULT_MODELS
from repro.sim.stats import LatencyHistogram, StatAccumulator

#: Default bound on requests waiting per core before arrivals are dropped.
DEFAULT_QUEUE_DEPTH = 64

#: Default :class:`~repro.faults.metrics.WindowedTails` bucket width used for
#: per-window tail rows on faulted runs (overridable via the
#: ``tail_window_cycles`` fault parameter).
DEFAULT_TAIL_WINDOW_CYCLES = 500.0


@dataclass(frozen=True)
class TenantLoad:
    """One tenant of a multi-tenant open-loop mix.

    ``weight`` sets both the tenant's share of the total offered load and its
    share of the workload's cores (each tenant gets at least one core).  An
    unset ``arrivals`` inherits the driver's process.
    """

    name: str
    weight: float = 1.0
    arrivals: Optional[str] = None
    arrival_params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("tenant name must be non-empty")
        if self.weight <= 0:
            raise WorkloadError("tenant weight must be positive")


class _TenantState:
    """Mutable bookkeeping for one tenant while the driver runs."""

    def __init__(self, tenant: TenantLoad, process: ArrivalProcess, cores: List) -> None:
        self.tenant = tenant
        self.process = process
        self.cores = cores
        self.gaps: Iterator[float] = process.gaps()
        self.streams: Dict[int, Iterator] = {}
        self.next_core = 0
        #: Set when the measurement window closes: in-flight arrival events
        #: become no-ops and the clock stops rescheduling itself.  (A flag
        #: instead of Simulator.cancel keeps arrivals on the allocation-free
        #: fast-path, which returns no cancellable handle.)
        self.frozen = False
        self.exhausted = False  # a non-looping trace ran out of arrivals
        self.reset_counters()

    def reset_counters(self) -> None:
        #: Arrival-clock firings (fed + dropped).
        self.arrived = 0
        #: Arrivals shed because the per-core queue was full.
        self.dropped = 0
        #: Arrivals shed by an active fault (e.g. ``ni_stall``) — reported
        #: separately so chaos sweeps can tell load shedding from overload.
        self.fault_dropped = 0
        #: Completions of requests *fed during the measurement window* (so
        #: achieved throughput never counts warm-up carryover and can never
        #: exceed the injected rate).
        self.completed = 0
        #: Queue depth sampled at arrival instants: the backlog each arriving
        #: request joins.  Deliberately *not* a time average — bursty arrivals
        #: land when queues are deep, and that is the depth they experience
        #: (PASTA makes the two coincide only for Poisson arrivals).
        self.queue_depth = StatAccumulator("%s-queue-depth" % self.tenant.name)

    def merged_histogram(self) -> LatencyHistogram:
        merged = LatencyHistogram("%s-latency" % self.tenant.name)
        for core in self.cores:
            histogram = core.latency.histogram
            if histogram is not None:
                merged.merge(histogram)
        return merged


@dataclass
class OpenLoopResult:
    """Measurement-window metrics of one open-loop run.

    Counter semantics: ``arrived`` is every arrival-clock firing in the
    window; ``injected`` the subset actually fed to a core (arrived minus
    dropped); ``completed`` the completions of *window-fed* requests, so
    achieved throughput never counts warm-up carryover and can never exceed
    the injected rate.  ``latency_cycles`` covers every completion observed
    in the window — including requests fed just before it, whose (long)
    waits are legitimate steady-state samples — so its ``count`` may exceed
    ``completed``.
    """

    rate_per_kcycle: float
    arrivals: str
    warmup_cycles: float
    measure_cycles: float
    queue_depth: int
    max_outstanding: int
    frequency_ghz: float
    arrived: int = 0
    injected: int = 0
    completed: int = 0
    dropped: int = 0
    final_backlog: int = 0
    #: Fault model driven during the run (None on fault-free runs; the
    #: fault_* fields below are only meaningful — and only serialized —
    #: when set).
    faults: Optional[str] = None
    #: Arrivals shed by an active fault, separate from queue-bound drops.
    fault_dropped: int = 0
    #: Fault windows that activated during the run.
    fault_windows: int = 0
    #: Fault hook invocations that actually perturbed the simulation.
    fault_hits: int = 0
    #: Fault identity and per-window tail rows (model, intensity,
    #: fingerprints, realized windows, windowed p99 latencies).
    fault_profile: Dict[str, object] = field(default_factory=dict)
    #: Mean queue depth *seen by arriving requests* (not a time average;
    #: the two coincide only for Poisson arrivals).
    mean_queue_depth: float = 0.0
    #: Whole-stream latency statistics in cycles: count/mean/min/max plus
    #: exact p50/p95/p99/p99.9 from the merged histograms.
    latency_cycles: Dict[str, float] = field(default_factory=dict)
    #: Per-tenant breakdowns (same shape as the top-level fields).
    tenants: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def injected_per_kcycle(self) -> float:
        if self.measure_cycles <= 0:
            return 0.0
        return self.injected / self.measure_cycles * 1000.0

    @property
    def achieved_per_kcycle(self) -> float:
        if self.measure_cycles <= 0:
            return 0.0
        return self.completed / self.measure_cycles * 1000.0

    @property
    def drop_fraction(self) -> float:
        """Fraction of arrivals shed for any reason (queue-bound or fault)."""
        if not self.arrived:
            return 0.0
        return (self.dropped + self.fault_dropped) / self.arrived

    def latency_ns(self, key: str) -> float:
        """One latency statistic converted from cycles to nanoseconds."""
        return self.latency_cycles.get(key, 0.0) / self.frequency_ghz

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "rate_per_kcycle": self.rate_per_kcycle,
            "arrivals": self.arrivals,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "queue_depth": self.queue_depth,
            "max_outstanding": self.max_outstanding,
            "frequency_ghz": self.frequency_ghz,
            "arrived": self.arrived,
            "injected": self.injected,
            "completed": self.completed,
            "dropped": self.dropped,
            "drop_fraction": self.drop_fraction,
            "injected_per_kcycle": self.injected_per_kcycle,
            "achieved_per_kcycle": self.achieved_per_kcycle,
            "mean_queue_depth": self.mean_queue_depth,
            "final_backlog": self.final_backlog,
            "latency_cycles": dict(self.latency_cycles),
            "tenants": {name: dict(stats) for name, stats in self.tenants.items()},
        }
        # Fault-free results serialize exactly as before fault injection
        # existed (same contract as ScenarioSpec.to_dict).
        if self.faults is not None:
            document["faults"] = self.faults
            document["fault_dropped"] = self.fault_dropped
            document["fault_windows"] = self.fault_windows
            document["fault_hits"] = self.fault_hits
            document["fault_profile"] = dict(self.fault_profile)
        return document


class OpenLoopDriver:
    """Drives a built :class:`~repro.scenario.builder.Scenario` open loop."""

    def __init__(
        self,
        scenario,
        rate_per_kcycle: float,
        arrivals: str = "poisson",
        arrival_params: Optional[Mapping[str, object]] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_outstanding: int = 8,
        warmup_cycles: float = 5_000.0,
        measure_cycles: float = 30_000.0,
        seed: int = 1,
        tenants: Optional[Sequence[TenantLoad]] = None,
        faults: Optional[str] = None,
        fault_params: Optional[Mapping[str, object]] = None,
    ) -> None:
        if rate_per_kcycle <= 0:
            raise WorkloadError("offered load must be positive (requests per kcycle)")
        if queue_depth <= 0:
            raise WorkloadError("queue depth must be positive")
        if max_outstanding <= 0:
            raise WorkloadError("max_outstanding must be positive")
        if warmup_cycles < 0 or measure_cycles <= 0:
            raise WorkloadError("invalid warmup/measurement window")
        self.scenario = scenario
        self.machine = scenario.machine
        self.workload = scenario.workload
        self.rate_per_kcycle = float(rate_per_kcycle)
        self.arrivals = ARRIVALS.resolve(arrivals)
        self.arrival_params = dict(arrival_params or {})
        self.queue_depth = queue_depth
        self.max_outstanding = max_outstanding
        self.warmup_cycles = float(warmup_cycles)
        self.measure_cycles = float(measure_cycles)
        self.seed = int(seed)
        self.tenants = list(tenants) if tenants else [TenantLoad("default")]
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise WorkloadError("tenant names must be unique, got %s" % (names,))
        self.faults = FAULT_MODELS.resolve(faults) if faults is not None else None
        if self.faults is None and fault_params:
            raise WorkloadError("fault_params given without a fault model name")
        self.fault_params = dict(fault_params or {})
        if self.faults is not None:
            # Typos in fault parameters fail here, before any simulation
            # work (spec-built runs validate at spec resolution too).
            from repro.faults.injector import validate_fault_params

            validate_fault_params(self.faults, self.fault_params)
        self._states: List[_TenantState] = []
        self._measure_start = math.inf
        self._injector = None
        self._fault_state = None
        self._window_tails = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec, rate_per_kcycle: float, base_config=None,
                  **kwargs: object) -> "OpenLoopDriver":
        """Build the scenario from a :class:`ScenarioSpec` and wrap it.

        The spec's ``arrivals``/``arrival_params`` (and
        ``faults``/``fault_params``) fields, when set, become the driver
        defaults (explicit keyword arguments still win).
        """
        from repro.scenario.builder import MachineBuilder

        scenario = MachineBuilder(spec, base_config=base_config).build()
        if spec.arrivals is not None and "arrivals" not in kwargs:
            # Only inherit the spec's params together with its process: a
            # caller-overridden process may not accept them at all.
            kwargs["arrivals"] = spec.arrivals
            kwargs.setdefault("arrival_params", spec.arrival_params)
        if spec.faults is not None and "faults" not in kwargs:
            # Same contract as arrivals: params travel with their model.
            kwargs["faults"] = spec.faults
            kwargs.setdefault("fault_params", spec.fault_params)
        return cls(scenario, rate_per_kcycle, **kwargs)

    def _tenant_process(self, tenant: TenantLoad, share: float) -> ArrivalProcess:
        name = ARRIVALS.resolve(tenant.arrivals) if tenant.arrivals else self.arrivals
        if tenant.arrival_params:
            params = dict(tenant.arrival_params)
        elif tenant.arrivals is None:
            # The tenant inherits the driver's process wholesale; a tenant
            # that names its own process gets that process's defaults instead
            # (the driver's params may not even validate against it).
            params = dict(self.arrival_params)
        else:
            params = {}
        process_cls = ARRIVALS.get(name)
        seed = self.seed * 1_000_003 + zlib.crc32(tenant.name.encode("utf-8"))
        return process_cls.from_params(self.rate_per_kcycle * share, seed=seed, **params)

    def _partition_cores(self, cores: List) -> List[List]:
        """Split the workload's cores between tenants by weight (each >= 1)."""
        if len(cores) < len(self.tenants):
            raise WorkloadError(
                "workload drives %d core(s) but the mix declares %d tenant(s)"
                % (len(cores), len(self.tenants))
            )
        total = sum(tenant.weight for tenant in self.tenants)
        counts = [max(1, int(len(cores) * tenant.weight / total)) for tenant in self.tenants]
        # Distribute the rounding remainder (positive or negative) over the
        # heaviest tenants so the counts sum to the core count exactly.
        order = sorted(range(len(counts)), key=lambda i: -self.tenants[i].weight)
        index = 0
        while sum(counts) != len(cores):
            step = 1 if sum(counts) < len(cores) else -1
            candidate = order[index % len(order)]
            if counts[candidate] + step >= 1:
                counts[candidate] += step
            index += 1
        partitions: List[List] = []
        start = 0
        for count in counts:
            partitions.append(cores[start:start + count])
            start += count
        return partitions

    # ------------------------------------------------------------------
    # Arrival clock
    # ------------------------------------------------------------------
    def _schedule_next(self, state: _TenantState) -> None:
        gap = next(state.gaps, None)
        if gap is None:  # a non-looping trace ran out
            state.exhausted = True
            return
        self.machine.sim.schedule_fast(gap, self._arrive, state)

    def _completion_counter(self, state: _TenantState):
        """A per-tenant completion listener attributing ops to the window."""
        def on_complete(core) -> None:
            posted_at = core.last_completion_posted_at
            if posted_at is not None and posted_at >= self._measure_start:
                state.completed += 1
            tails = self._window_tails
            if tails is not None and posted_at is not None:
                now = self.machine.sim.now
                tails.record(now, now - posted_at)
        return on_complete

    def _arrive(self, state: _TenantState) -> None:
        if state.frozen:
            return
        core = state.cores[state.next_core % len(state.cores)]
        state.next_core += 1
        state.arrived += 1
        faults = self._fault_state
        if faults is not None and faults.core_rejects(core.core_id):
            # The NI frontend sheds this arrival outright; the request never
            # joins a queue, so no depth sample either.
            state.fault_dropped += 1
            self._schedule_next(state)
            return
        state.queue_depth.add(core.queued)
        if core.queued >= self.queue_depth:
            state.dropped += 1
        else:
            core.feed(next(state.streams[core.core_id]))
        self._schedule_next(state)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> OpenLoopResult:
        """Warm up, measure, and report tail-latency/throughput metrics."""
        machine = self.machine
        workload = self.workload
        workload.setup(machine)
        cores = workload.driven_cores
        if not cores:
            raise WorkloadError(
                "workload %r drives no cores after setup()" % (workload.name,)
            )
        partitions = self._partition_cores(cores)
        total_weight = sum(tenant.weight for tenant in self.tenants)
        self._states = []
        for tenant, tenant_cores in zip(self.tenants, partitions):
            process = self._tenant_process(tenant, tenant.weight / total_weight)
            state = _TenantState(tenant, process, tenant_cores)
            state.streams = {
                core.core_id: workload.request_stream(core.core_id)
                for core in tenant_cores
            }
            self._states.append(state)
        self._measure_start = math.inf  # nothing counts until warm-up ends
        if self.faults is not None:
            from repro.faults import build_fault_injector
            from repro.faults.metrics import WindowedTails

            params = dict(self.fault_params)
            tail_window = float(
                params.pop("tail_window_cycles", DEFAULT_TAIL_WINDOW_CYCLES)
            )
            if tail_window <= 0:
                raise WorkloadError("tail_window_cycles must be positive")
            self._window_tails = WindowedTails(tail_window)
            self._injector = build_fault_injector(
                machine, self.faults, params, seed=self.seed,
                core_ids=[core.core_id for core in cores],
            )
            self._injector.install(horizon=self.warmup_cycles + self.measure_cycles)
            self._fault_state = self._injector.state
        else:
            self._injector = None
            self._fault_state = None
            self._window_tails = None
        obs = obs_hooks.active()
        if obs is not None:
            # Probes sample at the session's cadence over the known run
            # horizon (warm-up + measurement); lazily imported so runs with
            # observability disabled never touch the obs machinery.
            from repro.obs.sampler import attach_driver_sampler

            attach_driver_sampler(obs, self)
        for state in self._states:
            for core in state.cores:
                core.use_exact_latency()
                core.open_loop(
                    max_outstanding=self.max_outstanding,
                    on_op_complete=self._completion_counter(state),
                )
        for state in self._states:
            self._schedule_next(state)
        # Warm up, then measure from a clean slate (§5 methodology).
        machine.run(until=self.warmup_cycles)
        for core in cores:
            core.reset_measurements()
        for state in self._states:
            state.reset_counters()
        self._measure_start = machine.sim.now
        machine.run(until=self.warmup_cycles + self.measure_cycles)
        # Freeze the arrival clocks and stop the cores issuing.
        for state in self._states:
            state.frozen = True
        for core in cores:
            core.stop()
        return self._collect(cores)

    def _collect(self, cores: List) -> OpenLoopResult:
        result = OpenLoopResult(
            rate_per_kcycle=self.rate_per_kcycle,
            arrivals=self.arrivals,
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            queue_depth=self.queue_depth,
            max_outstanding=self.max_outstanding,
            frequency_ghz=self.machine.config.cores.frequency_ghz,
            faults=self.faults,
        )
        overall = LatencyHistogram("open-loop-latency")
        depth = StatAccumulator("queue-depth")
        for state in self._states:
            tenant_hist = state.merged_histogram()
            overall.merge(tenant_hist)
            depth.merge(state.queue_depth)
            completed = state.completed
            result.arrived += state.arrived
            result.injected += state.arrived - state.dropped - state.fault_dropped
            result.completed += completed
            result.dropped += state.dropped
            result.fault_dropped += state.fault_dropped
            share_backlog = sum(core.queued for core in state.cores)
            result.final_backlog += share_backlog
            tenant_stats = {
                "weight": state.tenant.weight,
                "arrivals": state.process.name,
                "cores": len(state.cores),
                "arrived": state.arrived,
                "injected": state.arrived - state.dropped - state.fault_dropped,
                "completed": completed,
                "dropped": state.dropped,
                "drop_fraction": state.dropped / state.arrived if state.arrived else 0.0,
                "mean_queue_depth": state.queue_depth.mean,
                "final_backlog": share_backlog,
                "exhausted": state.exhausted,
                "latency_cycles": tenant_hist.as_dict(),
            }
            if self.faults is not None:
                # Added only on faulted runs so fault-free per-tenant dicts
                # stay byte-identical to pre-fault results.
                tenant_stats["fault_dropped"] = state.fault_dropped
                tenant_stats["fault_drop_fraction"] = (
                    state.fault_dropped / state.arrived if state.arrived else 0.0
                )
            result.tenants[state.tenant.name] = tenant_stats
        result.mean_queue_depth = depth.mean
        result.latency_cycles = overall.as_dict()
        injector = self._injector
        if injector is not None:
            fstate = self._fault_state
            tails = self._window_tails
            result.fault_windows = fstate.windows
            result.fault_hits = fstate.hits
            result.fault_profile = {
                "model": injector.model.name,
                "intensity": injector.model.intensity,
                "fingerprint": injector.fingerprint(),
                "schedule_fingerprint": injector.schedule.schedule_fingerprint(),
                "windows": [[on, off] for on, off in injector.windows],
                "tail_window_cycles": tails.window_cycles,
                "window_p99": [list(row) for row in tails.window_percentiles(99.0)],
            }
            coherence = getattr(self.machine, "coherence", None)
            if coherence is not None:
                result.fault_profile["directory_retries"] = coherence.directory_retries
                result.fault_profile["retry_backoff_cycles"] = (
                    coherence.retry_backoff_cycles
                )
            if injector.cascade is not None and injector.cascade_model is not None:
                # Cascade sub-document only on cascading runs, so plain
                # faulted results keep their pre-cascade byte layout.
                result.fault_profile["cascade"] = {
                    "model": injector.cascade_model.name,
                    "intensity": injector.cascade_model.intensity,
                    "probability": injector.cascade.probability,
                    "delay_cycles": injector.cascade.delay_cycles,
                    "triggered": injector.triggered,
                    "windows": [[on, off] for on, off in injector.cascade_windows],
                    "fingerprint": injector.cascade.cascade_fingerprint(injector.windows),
                }
        return result
