"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments --list
    repro-experiments table1 table3 fig5
    repro-experiments --fast
    repro-experiments fig7 --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.runner import FAST_EXPERIMENTS, format_results, run_experiments
from repro.experiments.registry import list_experiments
from repro.version import PAPER_TITLE, PAPER_VENUE, __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of '%s' (%s)." % (PAPER_TITLE, PAPER_VENUE),
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiments to run (default: all); see --list")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--fast", action="store_true",
                        help="run only the analytical (sub-second) experiments")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="also write the formatted results to PATH")
    parser.add_argument("--version", action="version", version="repro %s" % __version__)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in list_experiments():
            print(name)
        return 0
    names = args.experiments or None
    if args.fast and not names:
        names = list(FAST_EXPERIMENTS)
    results = run_experiments(names)
    text = format_results(results)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
