"""Command-line entry point: ``repro-experiments``.

Subcommands::

    repro-experiments list                         # available experiments + parameters
    repro-experiments run fig7 --json              # one experiment, report JSON on stdout
    repro-experiments run table1 fig5 --output results.txt
    repro-experiments run --fast                   # the analytical (sub-second) subset
    repro-experiments run fig6 --set sizes=64,4096 --set iterations=2
    repro-experiments sweep fig6 --set design=edge,split,per_tile --parallel 4 --json out.json
    repro-experiments report out.json --csv out.csv

``run`` executes each named experiment once, with ``--set param=value``
overrides applied where the experiment declares the parameter.  ``sweep``
expands ``--set param=v1,v2,...`` axes into the cartesian product of runs
for one experiment (use ``:`` inside one axis value for list-valued
parameters, e.g. ``--set sizes=64:128,4096:8192``).  Both execute through a
:class:`repro.campaign.Campaign` — ``--parallel N`` fans out over processes,
``--cache-dir`` reuses results across invocations — and can emit the
campaign report as JSON (``--json [PATH]``), merged CSV (``--csv [PATH]``)
or plain text (default; ``--output PATH`` to also write it to a file).
``report`` reloads a saved JSON report and re-renders it.

``explore`` searches an experiment's design space with a registered search
strategy (see ``list --strategies``), evaluating points through the same
campaign layer and emitting the Pareto front, a parameter-sensitivity
ranking and (with ``--json``) a byte-reproducible explore report::

    repro-experiments explore --seed 7 --budget 12 --strategy evolve
    repro-experiments explore load_sweep --dim design=edge,split \\
        --dim window=8:32:4 --set loads=2:5 --objectives saturation,cost

``lint`` runs the AST-based determinism & kernel-contract linter
(:mod:`repro.lint`) over the given paths (the installed ``repro`` package by
default)::

    repro-experiments lint src/repro
    repro-experiments lint src/repro --rules REP001,REP005 --json -
    repro-experiments lint src/repro --baseline tools/lint_baseline.json

``watch`` tails a ``repro-obs-stream/1`` telemetry stream written by
``run``/``sweep``/``explore --stream PATH`` (per-run probe samples plus
campaign progress events; see :mod:`repro.obs`) and renders a summary::

    repro-experiments run load_sweep --stream obs.jsonl
    repro-experiments watch obs.jsonl
    repro-experiments watch obs.jsonl --follow      # live tail
    repro-experiments watch obs.jsonl --check       # validate every record

The seed interface (``repro-experiments table1 fig5``, ``--list``,
``--fast``) is still accepted and mapped onto the subcommands.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.campaign import Campaign, CampaignReport, ResultCache, expand_grid, parse_sweep_axes
from repro.campaign.report import load_report
from repro.campaign.request import RunRequest
from repro.errors import ExperimentError, ReproError
from repro.experiments.registry import get_spec, iter_specs, list_experiments
from repro.experiments.runner import fast_experiments
from repro.version import PAPER_TITLE, PAPER_VENUE, __version__

_SUBCOMMANDS = ("run", "list", "sweep", "explore", "report", "lint", "watch")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of '%s' (%s)." % (PAPER_TITLE, PAPER_VENUE),
    )
    parser.add_argument("--version", action="version", version="repro %s" % __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list available experiments, designs, topologies, workloads, "
                     "arrival processes and fault models")
    list_parser.add_argument("--json", nargs="?", const="-", metavar="PATH", default=None,
                             help="emit the experiment + component catalog as JSON "
                                  "(to PATH, or stdout)")
    list_parser.add_argument("--designs", action="store_true",
                             help="list only the registered NI designs")
    list_parser.add_argument("--topologies", action="store_true",
                             help="list only the registered topologies")
    list_parser.add_argument("--workloads", action="store_true",
                             help="list only the registered workloads")
    list_parser.add_argument("--arrivals", action="store_true",
                             help="list only the registered arrival processes")
    list_parser.add_argument("--faults", action="store_true",
                             help="list only the registered fault models")
    list_parser.add_argument("--lint-rules", action="store_true",
                             help="list only the registered lint rules")
    list_parser.add_argument("--strategies", action="store_true",
                             help="list only the registered search strategies")
    list_parser.add_argument("--probes", action="store_true",
                             help="list only the registered telemetry probes")

    run_parser = subparsers.add_parser("run", help="run experiments once each")
    run_parser.add_argument("experiments", nargs="*",
                            help="experiments to run (default: all); see 'list'")
    run_parser.add_argument("--fast", action="store_true",
                            help="run only the analytical (sub-second) experiments")
    _add_campaign_options(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run one experiment over a parameter grid")
    sweep_parser.add_argument("experiment", help="experiment to sweep; see 'list'")
    _add_campaign_options(sweep_parser)

    explore_parser = subparsers.add_parser(
        "explore", help="search an experiment's design space with a registered strategy")
    explore_parser.add_argument("experiment", nargs="?", default="load_sweep",
                                help="experiment to explore (default: load_sweep)")
    explore_parser.add_argument("--strategy", default="evolve", metavar="NAME",
                                help="search strategy; see 'list --strategies' "
                                     "(default: evolve)")
    explore_parser.add_argument("--seed", type=int, default=0, metavar="N",
                                help="exploration seed; a fixed seed reproduces the "
                                     "exact evaluation sequence and report bytes")
    explore_parser.add_argument("--budget", type=int, default=16, metavar="N",
                                help="maximum number of evaluated design points "
                                     "(default: 16)")
    explore_parser.add_argument("--dim", dest="dims", action="append", default=[],
                                metavar="PARAM=SPEC",
                                help="search dimension: PARAM=v1,v2,... or "
                                     "PARAM=lo:hi[:steps]; repeatable (default: the "
                                     "experiment's design/topology/arrivals axes)")
    explore_parser.add_argument("--set", dest="assignments", action="append", default=[],
                                metavar="PARAM=VALUE",
                                help="fixed parameter override applied to every "
                                     "evaluated point; repeatable")
    explore_parser.add_argument("--objectives", default="saturation,p99,cost",
                                metavar="NAMES",
                                help="comma-separated objectives "
                                     "(default: saturation,p99,cost)")
    explore_parser.add_argument("--strategy-param", dest="strategy_params",
                                action="append", default=[], metavar="NAME=VALUE",
                                help="strategy tunable override; repeatable "
                                     "(see 'list --strategies' for the tunables)")
    explore_parser.add_argument("--max-rounds", type=int, default=64, metavar="N",
                                help="safety cap on strategy rounds (default: 64)")
    explore_parser.add_argument("--parallel", type=int, default=1, metavar="N",
                                help="evaluate up to N points in parallel processes")
    explore_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                                help="persist/reuse results keyed by content hash in DIR")
    explore_parser.add_argument("--json", nargs="?", const="-", metavar="PATH",
                                default=None,
                                help="emit the explore report as JSON (to PATH, or stdout)")
    explore_parser.add_argument("--output", metavar="PATH", default=None,
                                help="also write the plain-text report to PATH")
    _add_stream_options(explore_parser)

    lint_parser = subparsers.add_parser(
        "lint", help="statically check the determinism & kernel contracts (REP rules)")
    lint_parser.add_argument("paths", nargs="*", metavar="PATH",
                             help="files/directories to lint (default: the installed "
                                  "repro package)")
    lint_parser.add_argument("--rules", metavar="CODES", default=None,
                             help="comma-separated rule subset, e.g. REP001,REP005 "
                                  "(default: every registered rule)")
    lint_parser.add_argument("--baseline", metavar="PATH", default=None,
                             help="suppressions baseline JSON; matched findings are "
                                  "reported but do not fail the gate")
    lint_parser.add_argument("--write-baseline", metavar="PATH", default=None,
                             help="write the current findings as a suppressions "
                                  "baseline to PATH and exit 0")
    lint_parser.add_argument("--manifest", metavar="PATH", default=None,
                             help="registry manifest for rule REP004 (default: "
                                  "discovered by walking up from the linted root)")
    lint_parser.add_argument("--json", nargs="?", const="-", metavar="PATH", default=None,
                             help="emit the lint report as JSON (to PATH, or stdout)")

    watch_parser = subparsers.add_parser(
        "watch", help="tail a telemetry stream written with --stream and render a summary")
    watch_parser.add_argument("path", metavar="PATH",
                              help="stream file (JSONL, repro-obs-stream/1)")
    watch_parser.add_argument("--follow", action="store_true",
                              help="keep tailing and re-render as records arrive")
    watch_parser.add_argument("--check", action="store_true",
                              help="validate every record against the stream schema; "
                                   "exit 1 on any invalid record")
    watch_parser.add_argument("--interval-s", type=float, default=1.0, metavar="S",
                              help="re-render interval with --follow (default: 1.0)")

    report_parser = subparsers.add_parser(
        "report", help="re-render a previously saved JSON campaign report")
    report_parser.add_argument("paths", nargs="+", metavar="PATH",
                               help="JSON report files written by run/sweep --json")
    report_parser.add_argument("--csv", nargs="?", const="-", metavar="PATH", default=None,
                               help="emit merged CSV instead of plain text")
    report_parser.add_argument("--output", metavar="PATH", default=None,
                               help="also write the rendered text to PATH")
    return parser


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--set", dest="assignments", action="append", default=[],
                        metavar="PARAM=VALUE",
                        help="parameter override; repeatable (sweep: comma-separated axis values)")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="run up to N experiments in parallel processes")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist/reuse results keyed by content hash in DIR")
    parser.add_argument("--json", nargs="?", const="-", metavar="PATH", default=None,
                        help="emit the campaign report as JSON (to PATH, or stdout)")
    parser.add_argument("--csv", nargs="?", const="-", metavar="PATH", default=None,
                        help="emit the campaign results as merged CSV (to PATH, or stdout)")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="also write the plain-text report to PATH")
    _add_stream_options(parser)


def _add_stream_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stream", metavar="PATH", default=None,
                        help="stream live telemetry (repro-obs-stream/1 JSONL) to "
                             "PATH (a file or FIFO); see 'watch'")
    parser.add_argument("--probes", metavar="NAMES", default=None,
                        help="comma-separated probe subset for --stream "
                             "(default: every registered probe; see 'list --probes')")
    parser.add_argument("--sample-cycles", type=float, default=None, metavar="CYCLES",
                        help="sim-time cadence between probe samples "
                             "(default: 500 cycles)")


def _normalize_legacy(argv: List[str]) -> List[str]:
    """Map the seed CLI (positional names, --list, --fast) onto subcommands."""
    if "--list" in argv:
        return ["list"] + [arg for arg in argv if arg != "--list"]
    if not argv:
        return ["run"]
    head = argv[0]
    if head in _SUBCOMMANDS or head in ("-h", "--help", "--version"):
        return argv
    return ["run"] + argv


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    args = parser.parse_args(_normalize_legacy(argv))
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "explore":
            return _cmd_explore(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "watch":
            return _cmd_watch(args)
        return _cmd_report(args)
    except (ReproError, OSError) as exc:
        print("repro-experiments: error: %s" % exc, file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _registry_catalog() -> Dict[str, List[Dict[str, object]]]:
    """The component registries as a JSON-native inventory."""
    from repro.scenario.registry import (
        ARRIVALS,
        EXPLORE_STRATEGIES,
        FAULT_MODELS,
        LINT_RULES,
        NI_DESIGNS,
        PROBES,
        TOPOLOGIES,
        WORKLOADS,
    )

    designs = [
        {
            "name": entry.name,
            "label": entry.metadata.get("label", entry.name),
            "messaging": bool(entry.metadata.get("messaging", True)),
            "summary": entry.summary,
        }
        for entry in NI_DESIGNS.entries()
    ]
    topologies = [
        {
            "name": entry.name,
            "scope": entry.metadata.get("scope", "chip"),
            "summary": entry.summary,
        }
        for entry in TOPOLOGIES.entries()
    ]
    def parameterized(registry) -> List[Dict[str, object]]:
        # Workloads, arrival processes, fault models and search strategies
        # share the param_defaults protocol.
        return [
            {
                "name": entry.name,
                "parameters": {
                    key: list(value) if isinstance(value, tuple) else value
                    for key, value in dict(entry.component.param_defaults).items()
                },
                "summary": entry.summary,
            }
            for entry in registry.entries()
        ]

    lint_rules = [
        {
            "name": entry.name,
            "title": entry.metadata.get("title", entry.name),
            "summary": entry.summary,
        }
        for entry in LINT_RULES.entries()
    ]

    return {"designs": designs, "topologies": topologies,
            "workloads": parameterized(WORKLOADS), "arrivals": parameterized(ARRIVALS),
            "faults": parameterized(FAULT_MODELS), "lint_rules": lint_rules,
            "strategies": parameterized(EXPLORE_STRATEGIES),
            "probes": parameterized(PROBES)}


def _cmd_list(args: argparse.Namespace) -> int:
    registries = _registry_catalog()
    if args.json is not None:
        import json
        catalog = {
            "schema": "repro-catalog/1",
            "experiments": [
                {
                    "name": spec.name,
                    "title": spec.title,
                    "description": spec.description,
                    "fast": spec.fast,
                    "tags": list(spec.tags),
                    "parameters": [
                        {
                            "name": p.name,
                            "type": p.kind.__name__,
                            "repeated": p.repeated,
                            "default": list(p.default) if isinstance(p.default, tuple) else p.default,
                            "choices": list(p.choice_values()) if p.choice_values() is not None else None,
                            "help": p.help,
                        }
                        for p in spec.parameters
                    ],
                }
                for spec in iter_specs()
            ],
            "registries": registries,
        }
        _emit(json.dumps(catalog, indent=2), args.json)
        return 0
    selected = [
        ("NI designs", "designs", args.designs),
        ("Topologies", "topologies", args.topologies),
        ("Workloads", "workloads", args.workloads),
        ("Arrival processes", "arrivals", args.arrivals),
        ("Fault models", "faults", args.faults),
        ("Lint rules", "lint_rules", args.lint_rules),
        ("Search strategies", "strategies", args.strategies),
        ("Telemetry probes", "probes", args.probes),
    ]
    only_registries = any(flag for _, _, flag in selected)
    if not only_registries:
        for spec in iter_specs():
            print(spec.describe())
        print()
    for title, key, flag in selected:
        if only_registries and not flag:
            continue
        print("%s:" % title)
        for item in registries[key]:
            details = []
            if key == "designs":
                details.append(item["label"])
                details.append("messaging" if item["messaging"] else "load/store baseline")
            elif key == "topologies":
                details.append("%s-scope" % item["scope"])
            elif key == "lint_rules":
                details.append(item["title"])
            else:  # workloads, arrivals, faults and strategies declare parameters
                details.append("params: %s" % (", ".join(sorted(item["parameters"])) or "none"))
            summary = (" - %s" % item["summary"]) if item["summary"] else ""
            print("  %s (%s)%s" % (item["name"], "; ".join(details), summary))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(args.experiments)
    if args.fast and not names:
        names = fast_experiments()
    if not names:
        names = list_experiments()
    requests = []
    matched_keys = set()
    for name in names:
        spec = get_spec(name)
        declared = {parameter.name for parameter in spec.parameters}
        overrides: Dict[str, object] = {}
        for assignment in args.assignments:
            key = assignment.partition("=")[0]
            if key in declared:
                overrides.update(spec.parse_overrides([assignment]))
                matched_keys.add(key)
        requests.append(RunRequest(name, overrides))
    unmatched = [assignment for assignment in args.assignments
                 if assignment.partition("=")[0] not in matched_keys]
    if unmatched:
        raise ExperimentError(
            "--set %s matches no parameter of the selected experiment(s) %s"
            % (", ".join(unmatched), ", ".join(names))
        )
    return _execute(requests, args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    axes = parse_sweep_axes(args.experiment, args.assignments)
    requests = expand_grid(args.experiment, axes)
    return _execute(requests, args)


def _cmd_explore(args: argparse.Namespace) -> int:
    import json

    from repro.explore import Explorer, build_space

    spec = get_spec(args.experiment)
    fixed = spec.parse_overrides(args.assignments)
    strategy_params: Dict[str, object] = {}
    for assignment in args.strategy_params:
        name, separator, text = assignment.partition("=")
        if not separator or not name or not text:
            raise ExperimentError(
                "malformed --strategy-param %r (expected NAME=VALUE)" % assignment
            )
        try:
            strategy_params[name] = json.loads(text)
        except json.JSONDecodeError:
            strategy_params[name] = text
    objectives = [name.strip() for name in args.objectives.split(",") if name.strip()]
    space = build_space(args.experiment, args.dims, fixed)
    cache = ResultCache(args.cache_dir) if args.cache_dir is not None else None
    obs = _build_obs(args)
    try:
        explorer = Explorer(
            space,
            strategy=args.strategy,
            objectives=objectives,
            seed=args.seed,
            budget=args.budget,
            strategy_params=strategy_params,
            cache=cache,
            max_workers=args.parallel,
            max_rounds=args.max_rounds,
            obs=obs,
        )
        report = explorer.run()
    finally:
        if obs is not None:
            obs.close()
    if args.json is not None:
        _emit(report.to_json(), args.json)
    else:
        print(report.format())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.format() + "\n")
    return 1 if report.totals.get("failed", 0) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.lint import (
        Baseline,
        iter_python_files,
        lint_paths,
        render_json,
        render_text,
        resolve_rules,
    )

    if args.paths:
        paths = list(args.paths)
    else:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    from repro.scenario.registry import LINT_RULES

    rules = [code.strip() for code in args.rules.split(",") if code.strip()] \
        if args.rules else None
    resolve_rules(rules)  # fail fast (with suggestions) on unknown codes
    rule_names = rules if rules else LINT_RULES.names()
    root, files = iter_python_files(paths)
    findings = lint_paths(paths, rules=rules, manifest_path=args.manifest)
    if args.write_baseline:
        baseline = Baseline.from_findings(findings)
        baseline.save(args.write_baseline)
        print("wrote %d suppression(s) to %s" % (len(baseline), args.write_baseline))
        return 0
    suppressed_count = 0
    if args.baseline:
        kept, suppressed = Baseline.load(args.baseline).apply(findings)
        findings, suppressed_count = kept, len(suppressed)
    if args.json is not None:
        _emit(render_json(findings, len(files), rule_names,
                          suppressed=suppressed_count, root=root), args.json)
    else:
        print(render_text(findings, len(files), rule_names, suppressed=suppressed_count))
    return 1 if findings else 0


def _cmd_report(args: argparse.Namespace) -> int:
    merged = CampaignReport()
    for path in args.paths:
        report = load_report(path)
        merged.entries.extend(report.entries)
        merged.wall_time_s += report.wall_time_s
        merged.max_workers = max(merged.max_workers, report.max_workers)
    text = merged.format()
    if args.csv is not None:
        _emit(merged.to_csv(), args.csv)
    else:
        print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 1 if merged.failed else 0


# ----------------------------------------------------------------------
# Shared execution/output
# ----------------------------------------------------------------------
def _execute(requests: List[RunRequest], args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir) if args.cache_dir is not None else None
    obs = _build_obs(args)
    try:
        campaign = Campaign(requests, cache=cache, max_workers=args.parallel, obs=obs)
        report = campaign.run()
    finally:
        if obs is not None:
            obs.close()
    wrote = False
    if args.json is not None:
        _emit(report.to_json(), args.json)
        wrote = True
    if args.csv is not None:
        _emit(report.to_csv(), args.csv)
        wrote = True
    text = report.format()
    if not wrote:
        print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if report.failed:
        for entry in report.entries:
            if not entry.ok:
                print("repro-experiments: %s failed: %s" % (entry.request.label(), entry.error),
                      file=sys.stderr)
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.watch import watch_command

    return watch_command(
        args.path, follow=args.follow, check=args.check, interval_s=args.interval_s
    )


def _build_obs(args: argparse.Namespace):
    """Build the ObsSession selected by --stream/--probes/--sample-cycles."""
    stream_path = getattr(args, "stream", None)
    if stream_path is None:
        if getattr(args, "probes", None) or getattr(args, "sample_cycles", None):
            raise ExperimentError("--probes/--sample-cycles require --stream PATH")
        return None
    from repro.obs.session import ObsSession
    from repro.obs.stream import ObsStream

    probe_names = None
    if args.probes:
        probe_names = [name.strip() for name in args.probes.split(",") if name.strip()]
    return ObsSession(
        ObsStream.open(stream_path),
        probes=probe_names,
        sample_cycles=args.sample_cycles,
    )


def _emit(text: str, destination: str) -> None:
    """Write text to a file, or stdout when destination is '-'."""
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
