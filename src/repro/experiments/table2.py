"""Table 2: system parameters used for simulation."""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig, topology_name
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import experiment


@experiment(
    name="table2",
    title="Table 2",
    description="System parameters of the modelled rack-scale node.",
    fast=True,
    tags=("analytical",),
)
def run_table2(config: Optional[SystemConfig] = None) -> ExperimentResult:
    """Report the modelled system configuration (Table 2)."""
    config = config if config is not None else SystemConfig.paper_defaults()
    result = ExperimentResult(
        name="Table 2",
        description="System parameters of the modelled rack-scale node.",
        headers=["Parameter", "Value"],
    )
    result.add_row("Cores", "%d ARM-like OoO @ %.1f GHz" % (config.cores.count, config.cores.frequency_ghz))
    result.add_row("L1 caches", "split I/D, %d KiB, %d-way, %d-cycle"
                   % (config.cores.l1_size_kib, config.cores.l1_ways, config.cores.l1_latency_cycles))
    result.add_row("LLC", "shared NUCA, %d MiB, %d-way, %d-cycle"
                   % (config.llc.total_size_mib, config.llc.ways, config.llc.latency_cycles))
    result.add_row("Coherence", "directory-based non-inclusive MESI")
    result.add_row("Memory", "%.0f ns latency, %d MCs" % (config.memory.latency_ns, config.memory.controllers))
    result.add_row("Interconnect", "%s, %d-byte links, %d cycles/hop, routing %s"
                   % (topology_name(config.noc.topology), config.noc.link_bytes,
                      config.noc.mesh_hop_cycles, config.noc.routing.value))
    result.add_row("NI", "RGP/RCP/RRPP, %d RRPPs, %d-entry WQ/CQ, design=%s"
                   % (config.ni.rrpp_count, config.ni.wq_entries, config.ni.design.value))
    result.add_row("Network", "fixed %.0f ns per hop, %d-node 3D torus %r"
                   % (config.rack.network_hop_ns, config.rack.nodes, config.rack.torus_dims))
    return result
