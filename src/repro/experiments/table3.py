"""Table 3: zero-load latency breakdown of a single-block remote read, per design.

The paper reports 710 / 445 / 447 / 395 cycles for NIedge / NIper-tile /
NIsplit / the NUMA projection.  The analytical breakdown reproduces these by
construction; optionally the experiment also cross-checks against the
discrete-event simulator's measured end-to-end latency.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.breakdown import LatencyBreakdownModel
from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment
from repro.numa.machine import NumaMachine
from repro.workloads.microbench import RemoteReadLatencyBenchmark

_PAPER_TOTALS = {
    NIDesign.EDGE: 710,
    NIDesign.PER_TILE: 445,
    NIDesign.SPLIT: 447,
    NIDesign.NUMA: 395,
}


@experiment(
    name="table3",
    title="Table 3",
    description="Zero-load remote-read latency breakdown per NI design.",
    parameters=(
        Parameter("hops", int, default=1, help="inter-node network hops per direction"),
        Parameter("simulate", bool, default=False,
                  help="add a simulated cross-check column from the discrete-event simulator"),
        Parameter("iterations", int, default=4,
                  help="measured reads per design when simulate is on"),
    ),
    fast=True,
    tags=("analytical", "latency"),
)
def run_table3(
    config: Optional[SystemConfig] = None,
    hops: int = 1,
    simulate: bool = False,
    iterations: int = 4,
) -> ExperimentResult:
    """Regenerate Table 3 (optionally adding a simulated cross-check column)."""
    config = config if config is not None else SystemConfig.paper_defaults()
    model = LatencyBreakdownModel(config)
    headers = ["Design", "Analytical cycles", "Paper cycles", "Overhead over NUMA (%)"]
    if simulate:
        headers.append("Simulated cycles")
    result = ExperimentResult(
        name="Table 3",
        description="Zero-load latency breakdown of a single-block remote read "
                    "(%d network hop)." % hops,
        headers=headers,
    )
    numa = model.breakdown(NIDesign.NUMA, hops)
    for design in (NIDesign.EDGE, NIDesign.PER_TILE, NIDesign.SPLIT, NIDesign.NUMA):
        breakdown = model.breakdown(design, hops)
        overhead = 0.0 if design is NIDesign.NUMA else 100 * breakdown.overhead_over(numa)
        row = [design.value, breakdown.total_cycles, _PAPER_TOTALS[design], overhead]
        if simulate:
            row.append(_simulated_latency(config, design, hops, iterations))
        result.add_row(*row)
    result.add_note("components per design are available via "
                    "repro.analysis.LatencyBreakdownModel.breakdown()")
    return result


def _simulated_latency(config: SystemConfig, design: NIDesign, hops: int, iterations: int) -> float:
    if design is NIDesign.NUMA:
        return NumaMachine(config).simulate_remote_read_cycles(hops=hops)
    bench = RemoteReadLatencyBenchmark(
        config.with_design(design), hops=hops, iterations=iterations, warmup=1
    )
    return bench.run(config.cache_block_bytes).mean_cycles
