"""The ``chaos_sweep`` experiment: fault intensity x offered load grid.

Extends the ``load_sweep`` methodology to resilience: every offered load is
first run fault-free (the baseline twin — same spec, same seed, same arrival
schedule), then once per fault intensity with a seeded
:class:`~repro.faults.injector.FaultInjector` driving the chosen fault model
on an MTBF/MTTR window schedule.  Per grid cell the experiment reports the
achieved throughput, queue-bound vs fault-induced drops, the exact p99 and
its *tail amplification* over the baseline, and the mean *recovery
transient* (cycles from each fault window's recovery until the rolling p99
is back within tolerance of the baseline).  Per intensity it digests the
*SLO-preserving degraded throughput*: the highest achieved throughput whose
tail still meets the fault-free SLO.  Sweepable like any experiment::

    repro-experiments run chaos_sweep --set faults=link_down
    repro-experiments sweep chaos_sweep --set design=edge,split \\
        --set faults=router_degrade,ni_stall --parallel 4
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.fault_profile import render_fault_profile
from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.load_sweep import DROP_LIMIT
from repro.experiments.scenario_run import parse_workload_params
from repro.experiments.spec import Parameter, experiment
from repro.faults.metrics import recovery_transient_cycles, tail_amplification
from repro.load.driver import OpenLoopDriver
from repro.scenario.registry import (
    ARRIVALS,
    FAULT_MODELS,
    NI_DESIGNS,
    TOPOLOGIES,
    WORKLOADS,
)
from repro.scenario.spec import ScenarioSpec

#: Fault intensities walked per offered load (0.0 — the baseline — is
#: always run and reported as its own row).
DEFAULT_INTENSITIES = (0.25, 0.5)
#: Offered loads bracketing the default scenario's healthy operating range.
DEFAULT_LOADS = (5.0, 20.0)


@experiment(
    name="chaos_sweep",
    title="Fault-injection resilience sweep",
    description="Tail amplification, degraded throughput and recovery "
                "transients over a fault intensity x offered load grid.",
    parameters=(
        Parameter("design", str, default="split",
                  choices=lambda: NI_DESIGNS.names(messaging=True),
                  help="NI design (from the design registry)"),
        Parameter("topology", str, default="mesh",
                  choices=lambda: TOPOLOGIES.names(scope="chip"),
                  help="on-chip topology (from the topology registry)"),
        Parameter("workload", str, default="kvstore",
                  choices=lambda: WORKLOADS.names(),
                  help="workload (from the workload registry)"),
        Parameter("arrivals", str, default="poisson",
                  choices=lambda: ARRIVALS.names(),
                  help="open-loop arrival process (from the ARRIVALS registry)"),
        Parameter("faults", str, default="router_degrade",
                  choices=lambda: FAULT_MODELS.names(),
                  help="fault model to inject (from the FAULT_MODELS registry)"),
        Parameter("intensities", float, default=DEFAULT_INTENSITIES, repeated=True,
                  help="fault intensities to walk (each in [0, 1]; the "
                       "fault-free baseline always runs)"),
        Parameter("loads", float, default=DEFAULT_LOADS, repeated=True,
                  help="offered loads to walk, in requests per kcycle"),
        Parameter("slo_factor", float, default=5.0,
                  help="SLO: p99 must stay within this multiple of the "
                       "fault-free lowest-load mean latency"),
        Parameter("warmup_cycles", float, default=4_000.0,
                  help="cycles simulated before measurement starts"),
        Parameter("measure_cycles", float, default=20_000.0,
                  help="measurement window length in cycles"),
        Parameter("queue_depth", int, default=64,
                  help="bounded per-core arrival queue (overflow = drop)"),
        Parameter("max_outstanding", int, default=8,
                  help="in-flight operations per core"),
        Parameter("seed", int, default=1,
                  help="seed pinning arrivals, fault schedule and fault "
                       "targets (runs are reproducible)"),
        Parameter("mtbf_cycles", float, default=6_000.0,
                  help="mean cycles between fault-window activations"),
        Parameter("mttr_cycles", float, default=1_500.0,
                  help="mean fault-window length in cycles"),
        Parameter("recovery_tolerance", float, default=1.5,
                  help="recovery: rolling p99 back within this multiple of "
                       "the baseline p99"),
        Parameter("params", str, default=(), repeated=True,
                  help="workload parameter overrides as key=value pairs"),
        Parameter("arrival_params", str, default=(), repeated=True,
                  help="arrival-process parameter overrides as key=value pairs"),
        Parameter("fault_params", str, default=(), repeated=True,
                  help="fault-model/schedule parameter overrides as "
                       "key=value pairs (e.g. multiplier=8)"),
    ),
    tags=("simulated", "load", "faults"),
)
def run_chaos_sweep(
    config: Optional[SystemConfig] = None,
    design: str = "split",
    topology: str = "mesh",
    workload: str = "kvstore",
    arrivals: str = "poisson",
    faults: str = "router_degrade",
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    loads: Sequence[float] = DEFAULT_LOADS,
    slo_factor: float = 5.0,
    warmup_cycles: float = 4_000.0,
    measure_cycles: float = 20_000.0,
    queue_depth: int = 64,
    max_outstanding: int = 8,
    seed: int = 1,
    mtbf_cycles: float = 6_000.0,
    mttr_cycles: float = 1_500.0,
    recovery_tolerance: float = 1.5,
    params: Sequence[str] = (),
    arrival_params: Sequence[str] = (),
    fault_params: Sequence[str] = (),
) -> ExperimentResult:
    """Walk the intensity x load grid against per-load fault-free baselines."""
    fault_name = FAULT_MODELS.resolve(faults)
    load_points = sorted(set(float(load) for load in loads))
    if not load_points:
        raise ExperimentError("chaos_sweep needs at least one load point")
    intensity_points = sorted(set(float(value) for value in intensities))
    if not intensity_points:
        raise ExperimentError("chaos_sweep needs at least one fault intensity")
    fault_overrides = parse_workload_params(fault_params)
    result = ExperimentResult(
        name="Chaos sweep %s@%s/%s [%s faults]"
             % (workload, design, topology, fault_name),
        description=(
            "Fault intensity x offered load grid vs per-load fault-free "
            "baselines: tail amplification, queue vs fault drops, recovery "
            "transients; degraded saturation is the highest achieved "
            "throughput meeting the fault-free SLO (p99 <= %.1fx lowest-load "
            "mean, drops <= %.0f%%)." % (slo_factor, DROP_LIMIT * 100.0)
        ),
        headers=[
            "Offered (req/kcycle)", "Intensity", "Achieved (req/kcycle)",
            "Queue drops", "Fault drops", "p99 (ns)", "Tail amplification",
            "Recovery (cycles)", "SLO ok",
        ],
    )
    base_spec = ScenarioSpec(
        design=design,
        topology=topology,
        workload=workload,
        workload_params=parse_workload_params(params),
        arrivals=arrivals,
        arrival_params=parse_workload_params(arrival_params),
    )
    fingerprint = ""
    baseline_mean_cycles: Optional[float] = None
    # Per-intensity digests across the load ladder.
    saturation: Dict[float, Tuple[float, float]] = {}
    worst_amplification: Dict[float, float] = {}
    transients: Dict[float, List[float]] = {intensity: [] for intensity in intensity_points}
    total_injected = 0
    total_completed = 0
    total_fault_windows = 0
    total_fault_drops = 0
    fault_fingerprint = ""
    # The fault_profile figure renders the grid's most stressed cell
    # (highest load x highest intensity) against its baseline's p99.
    profile_cell: Optional[Tuple[Dict[str, object], float]] = None

    def run_point(offered: float, intensity: Optional[float]):
        # A fresh machine per grid cell (from_spec runs MachineBuilder): load
        # levels and fault intensities must not contaminate each other
        # through residual queue, cache or fault-target state.  The same seed
        # everywhere keeps arrival schedules identical across the grid, so a
        # faulted cell differs from its baseline only by the injected fault.
        kwargs = {}
        if intensity is not None:
            merged = {"mtbf_cycles": mtbf_cycles, "mttr_cycles": mttr_cycles}
            merged.update(fault_overrides)
            merged["intensity"] = intensity
            kwargs["faults"] = fault_name
            kwargs["fault_params"] = merged
        driver = OpenLoopDriver.from_spec(
            base_spec,
            offered,
            base_config=config,
            queue_depth=queue_depth,
            max_outstanding=max_outstanding,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            seed=seed,
            **kwargs,
        )
        return driver, driver.run()

    for offered in load_points:
        driver, baseline = run_point(offered, None)
        if not fingerprint:
            fingerprint = driver.scenario.config.fingerprint()
        total_injected += baseline.injected
        total_completed += baseline.completed
        baseline_latency = baseline.latency_cycles
        baseline_p99 = baseline_latency.get("p99", 0.0)
        if baseline_mean_cycles is None and baseline_latency.get("count", 0) > 0:
            # The fault-free lowest measured load that completed requests
            # defines the SLO reference for the whole grid (load_sweep's
            # contract, so the two experiments' SLO lines agree).
            baseline_mean_cycles = baseline_latency["mean"]

        def meets_slo(point) -> bool:
            latency = point.latency_cycles
            return (
                baseline_mean_cycles is not None
                and latency.get("count", 0) > 0
                and latency.get("p99", 0.0) <= slo_factor * baseline_mean_cycles
                and point.drop_fraction <= DROP_LIMIT
            )

        baseline_ok = meets_slo(baseline)
        if baseline_ok:
            # Loads walk in ascending order, so the last SLO-meeting point
            # is the highest load the row's intensity sustains.
            saturation[0.0] = (baseline.achieved_per_kcycle, offered)
        result.add_row(
            offered,
            0.0,
            round(baseline.achieved_per_kcycle, 3),
            baseline.dropped,
            0,
            round(baseline.latency_ns("p99"), 1),
            1.0,
            0.0,
            baseline_ok,
        )
        for intensity in intensity_points:
            driver, point = run_point(offered, intensity)
            total_injected += point.injected
            total_completed += point.completed
            total_fault_windows += point.fault_windows
            total_fault_drops += point.fault_dropped
            if not fault_fingerprint:
                fault_fingerprint = point.fault_profile.get("fingerprint", "")
            p99 = point.latency_cycles.get("p99", 0.0)
            amplification = tail_amplification(p99, baseline_p99)
            worst_amplification[intensity] = max(
                worst_amplification.get(intensity, 0.0), amplification
            )
            profile = point.fault_profile
            transient = recovery_transient_cycles(
                profile.get("window_p99", ()),
                profile.get("windows", ()),
                float(profile.get("tail_window_cycles", 0.0) or 1.0),
                baseline_p99,
                tolerance=recovery_tolerance,
            )
            if transient is not None:
                transients[intensity].append(transient)
            if offered == load_points[-1] and intensity == intensity_points[-1]:
                profile_cell = (profile, baseline_p99)
            point_ok = meets_slo(point)
            if point_ok:
                saturation[intensity] = (point.achieved_per_kcycle, offered)
            result.add_row(
                offered,
                intensity,
                round(point.achieved_per_kcycle, 3),
                point.dropped,
                point.fault_dropped,
                round(point.latency_ns("p99"), 1),
                round(amplification, 3),
                round(transient, 1) if transient is not None else 0.0,
                point_ok,
            )

    for intensity in intensity_points:
        degraded = saturation.get(intensity)
        if degraded is not None:
            degraded_text = (
                "degraded saturation %.2f req/kcycle (offered %.2f)"
                % (degraded[0], degraded[1])
            )
        else:
            degraded_text = "SLO not met at any measured load"
        amp = worst_amplification.get(intensity, 0.0)
        amp_text = ("max tail amplification %.2fx" % amp) if amp else \
            "tail amplification unmeasurable (empty baseline tail)"
        recovered = transients[intensity]
        if recovered:
            recovery_text = (
                "mean recovery transient %.0f cycles"
                % (sum(recovered) / len(recovered))
            )
        else:
            recovery_text = "no measured recovery within the window"
        result.add_note(
            "resilience: %s intensity %.2f: %s; %s; %s"
            % (fault_name, intensity, degraded_text, amp_text, recovery_text)
        )
    healthy = saturation.get(0.0)
    if healthy is not None:
        result.add_note(
            "resilience baseline: fault-free saturation %.2f req/kcycle "
            "(offered %.2f)" % (healthy[0], healthy[1])
        )
    if baseline_mean_cycles is None:
        result.metadata.warnings.append(
            "no fault-free load point completed any request; lengthen "
            "measure_cycles or raise the sweep's loads"
        )
    if total_fault_windows == 0:
        result.metadata.warnings.append(
            "no fault window activated within the measured horizon; lower "
            "mtbf_cycles or lengthen measure_cycles"
        )
    result.add_note(
        "each faulted cell runs against a fault-free twin (same seed, same "
        "arrival schedule); fault schedule fingerprint %s"
        % (fault_fingerprint or "n/a")
    )
    if profile_cell is not None:
        profile, cell_baseline_p99 = profile_cell
        cascade_doc = profile.get("cascade")
        result.add_note(
            "fault_profile: %s intensity %.2f at the highest measured load%s"
            % (
                fault_name, intensity_points[-1],
                " (cascade: %s p=%.2f, %d triggered)" % (
                    cascade_doc["model"], cascade_doc["probability"],
                    cascade_doc["triggered"],
                ) if cascade_doc else "",
            )
        )
        for line in render_fault_profile(
            profile.get("window_p99", ()),
            profile.get("windows", ()),
            float(profile.get("tail_window_cycles", 0.0) or 1.0),
            baseline_p99=cell_baseline_p99,
            tolerance=recovery_tolerance,
            cascade_windows=(cascade_doc or {}).get("windows", ()),
        ):
            result.add_note("fault_profile: %s" % line)
    result.metadata.config_fingerprint = fingerprint
    result.metadata.events["load_points"] = len(load_points)
    result.metadata.events["fault_intensities"] = len(intensity_points)
    result.metadata.events["requests_injected"] = total_injected
    result.metadata.events["requests_completed"] = total_completed
    result.metadata.events["fault_windows"] = total_fault_windows
    result.metadata.events["fault_drops"] = total_fault_drops
    return result
