"""Figure 9: latency of synchronous remote reads on the NOC-Out topology (§6.3).

Same microbenchmark as Figure 6, but the chip uses NOC-Out: an LLC row
interconnected by a flattened butterfly with per-column core trees.  The
paper finds up to 30 % lower latency than the mesh for small transfers, with
NIedge still ~30 % slower than NIsplit/NIper-tile because the QP
interactions remain chip-crossing coherence transactions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.fig6 import FIG6_SIZES
from repro.workloads.microbench import RemoteReadLatencyBenchmark

_DESIGNS = (NIDesign.EDGE, NIDesign.SPLIT, NIDesign.PER_TILE)


def run_fig9(
    config: Optional[SystemConfig] = None,
    sizes: Sequence[int] = FIG6_SIZES,
    hops: int = 1,
    iterations: int = 5,
    warmup: int = 2,
) -> ExperimentResult:
    """Regenerate the Figure-9 latency sweep on NOC-Out."""
    base = config if config is not None else SystemConfig.noc_out_defaults()
    if config is not None:
        base = SystemConfig.noc_out_defaults().replace(
            calibration=config.calibration, ni=config.ni, rack=config.rack
        )
    result = ExperimentResult(
        name="Figure 9",
        description="End-to-end latency (ns) of synchronous remote reads on NOC-Out, "
                    "one network hop per direction.",
        headers=["Transfer (B)", "NIedge (ns)", "NIsplit (ns)", "NIper-tile (ns)"],
    )
    latencies = {}
    for design in _DESIGNS:
        bench = RemoteReadLatencyBenchmark(
            base.with_design(design), hops=hops, iterations=iterations, warmup=warmup
        )
        latencies[design] = {size: bench.run(size).mean_ns for size in sizes}
    for size in sizes:
        result.add_row(
            size,
            latencies[NIDesign.EDGE][size],
            latencies[NIDesign.SPLIT][size],
            latencies[NIDesign.PER_TILE][size],
        )
    result.add_note("paper: NOC-Out lowers small-transfer latency by up to 30% vs the mesh; "
                    "NIedge remains up to 30% slower than NIsplit")
    return result
