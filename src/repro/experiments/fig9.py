"""Figure 9: latency of synchronous remote reads on the NOC-Out topology (§6.3).

Same microbenchmark as Figure 6, but the chip uses NOC-Out: an LLC row
interconnected by a flattened butterfly with per-column core trees.  The
paper finds up to 30 % lower latency than the mesh for small transfers, with
NIedge still ~30 % slower than NIsplit/NIper-tile because the QP
interactions remain chip-crossing coherence transactions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.fig6 import FIG6_SIZES, select_designs
from repro.experiments.spec import Parameter, experiment
from repro.scenario.registry import NI_DESIGNS
from repro.workloads.microbench import RemoteReadLatencyBenchmark


@experiment(
    name="fig9",
    title="Figure 9",
    description="Synchronous remote-read latency vs. transfer size on NOC-Out.",
    parameters=(
        Parameter("design", str, default=None,
                  choices=tuple(NI_DESIGNS.names(messaging=True)),
                  help="restrict the sweep to one messaging design (default: all three)"),
        Parameter("sizes", int, default=FIG6_SIZES, repeated=True,
                  help="transfer sizes in bytes (x-axis)"),
        Parameter("hops", int, default=1, help="inter-node network hops per direction"),
        Parameter("iterations", int, default=5, help="measured reads per size"),
        Parameter("warmup", int, default=2, help="discarded warm-up reads per size"),
    ),
    default_config=SystemConfig.noc_out_defaults,
    tags=("simulated", "latency", "noc-out"),
)
def run_fig9(
    config: Optional[SystemConfig] = None,
    design: Optional[str] = None,
    sizes: Sequence[int] = FIG6_SIZES,
    hops: int = 1,
    iterations: int = 5,
    warmup: int = 2,
) -> ExperimentResult:
    """Regenerate the Figure-9 latency sweep on NOC-Out."""
    base = config if config is not None else SystemConfig.noc_out_defaults()
    if config is not None:
        base = SystemConfig.noc_out_defaults().replace(
            calibration=config.calibration, ni=config.ni, rack=config.rack
        )
    designs = select_designs(design)
    result = ExperimentResult(
        name="Figure 9",
        description="End-to-end latency (ns) of synchronous remote reads on NOC-Out, "
                    "one network hop per direction.",
        headers=["Transfer (B)"] + ["%s (ns)" % d.label for d in designs],
    )
    latencies = {}
    for d in designs:
        bench = RemoteReadLatencyBenchmark(
            base.with_design(d), hops=hops, iterations=iterations, warmup=warmup
        )
        latencies[d] = {size: bench.run(size).mean_ns for size in sizes}
    for size in sizes:
        result.add_row(size, *[latencies[d][size] for d in designs])
    # The effective config differs from the caller's (NOC-Out merge above);
    # stamp its fingerprint so metadata matches what was actually simulated.
    result.metadata.config_fingerprint = base.fingerprint()
    result.metadata.events["latency_samples"] = (warmup + iterations) * len(sizes) * len(designs)
    result.add_note("paper: NOC-Out lowers small-transfer latency by up to 30% vs the mesh; "
                    "NIedge remains up to 30% slower than NIsplit")
    return result
