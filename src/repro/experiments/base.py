"""Structured result container for experiments.

An :class:`ExperimentResult` is a typed, serializable record of one
regenerated table/figure: named columns with units, JSON-native rows, free
text notes and a :class:`ResultMetadata` block (which experiment produced
it, with which parameters, against which config fingerprint, and how long
it took).  Results round-trip losslessly through :meth:`ExperimentResult.to_json`
/ :meth:`ExperimentResult.from_json` and export to CSV; ``format()`` keeps
the original plain-text rendering.
"""

from __future__ import annotations

import csv
import io
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.report import format_table
from repro.errors import ExperimentError

#: Matches a trailing parenthesized unit in a column header, e.g. "Latency (ns)".
_UNIT_PATTERN = re.compile(r"\(([^()]+)\)\s*$")


@dataclass
class ResultMetadata:
    """Reproducibility metadata attached to every experiment result."""

    #: Registry name of the producing experiment ("" for ad-hoc results).
    experiment: str = ""
    #: Resolved parameter values the run used (JSON-native).
    params: Dict[str, object] = field(default_factory=dict)
    #: :meth:`repro.config.SystemConfig.fingerprint` of the config used.
    config_fingerprint: str = ""
    #: Wall-clock seconds the run took.
    wall_time_s: float = 0.0
    #: Number of data rows produced.
    row_count: int = 0
    #: Optional named event counters (simulated runs, measured samples, ...).
    events: Dict[str, int] = field(default_factory=dict)
    #: Simulation-performance counters (events/sec, packets/sec, peak heap
    #: size) sampled over the run; empty for analytical experiments.
    perf: Dict[str, float] = field(default_factory=dict)
    #: Measurement-quality warnings (e.g. a windowed metric that hit its
    #: window budget without converging).
    warnings: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "config_fingerprint": self.config_fingerprint,
            "wall_time_s": self.wall_time_s,
            "row_count": self.row_count,
            "events": dict(self.events),
            "perf": dict(self.perf),
            "warnings": list(self.warnings),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ResultMetadata":
        return cls(
            experiment=str(payload.get("experiment", "")),
            params=dict(payload.get("params", {})),
            config_fingerprint=str(payload.get("config_fingerprint", "")),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            row_count=int(payload.get("row_count", 0)),
            events={str(k): int(v) for k, v in dict(payload.get("events", {})).items()},
            perf={str(k): float(v) for k, v in dict(payload.get("perf", {})).items()},
            warnings=[str(w) for w in payload.get("warnings", [])],
        )


@dataclass
class ExperimentResult:
    """Tabular output of one experiment (one table or figure of the paper)."""

    name: str
    description: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Per-column units keyed by header; auto-derived from trailing "(unit)"
    #: suffixes for headers not explicitly listed.
    units: Dict[str, str] = field(default_factory=dict)
    metadata: ResultMetadata = field(default_factory=ResultMetadata)

    def __post_init__(self) -> None:
        for header in self.headers:
            if header not in self.units:
                match = _UNIT_PATTERN.search(header)
                if match:
                    self.units[header] = match.group(1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ExperimentError(
                "row has %d cells but %r declares %d headers"
                % (len(cells), self.name, len(self.headers))
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column(self, header: str) -> List[object]:
        """All values of one column (raises ExperimentError if unknown)."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise ExperimentError(
                "result %r has no column %r (available: %s)"
                % (self.name, header, ", ".join(repr(h) for h in self.headers))
            ) from None
        return [row[index] for row in self.rows]

    def unit(self, header: str) -> Optional[str]:
        """The unit of one column, or None when the column is unitless."""
        if header not in self.headers:
            self.column(header)  # raises the descriptive ExperimentError
        return self.units.get(header)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render the experiment as plain text."""
        parts = ["== %s ==" % self.name, self.description, "", format_table(self.headers, self.rows)]
        if self.notes:
            parts.append("")
            parts.extend("note: %s" % note for note in self.notes)
        return "\n".join(parts)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "units": dict(self.units),
            "metadata": self.metadata.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentResult":
        try:
            headers = list(payload["headers"])
            result = cls(
                name=str(payload["name"]),
                description=str(payload.get("description", "")),
                headers=headers,
                notes=[str(note) for note in payload.get("notes", [])],
                units={str(k): str(v) for k, v in dict(payload.get("units", {})).items()},
                metadata=ResultMetadata.from_dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError("malformed experiment-result document: %s" % exc) from None
        for row in payload.get("rows", []):
            result.add_row(*row)
        return result

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError("invalid experiment-result JSON: %s" % exc) from None
        return cls.from_dict(payload)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def to_csv(self) -> str:
        """The table as CSV (header row first; notes/metadata are not exported)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_csv())


def load_result(path: str) -> ExperimentResult:
    """Load one :class:`ExperimentResult` from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return ExperimentResult.from_json(handle.read())
    except OSError as exc:
        raise ExperimentError("cannot read experiment result %s: %s" % (path, exc)) from None
