"""Common result container for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.analysis.report import format_table


@dataclass
class ExperimentResult:
    """Tabular output of one experiment (one table or figure of the paper)."""

    name: str
    description: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def format(self) -> str:
        """Render the experiment as plain text."""
        parts = ["== %s ==" % self.name, self.description, "", format_table(self.headers, self.rows)]
        if self.notes:
            parts.append("")
            parts.extend("note: %s" % note for note in self.notes)
        return "\n".join(parts)

    def column(self, header: str) -> List[object]:
        """All values of one column (raises if the header is unknown)."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]
