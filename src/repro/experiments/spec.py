"""Declarative experiment specifications.

Each table/figure of the paper is described by an :class:`ExperimentSpec`:
a name, a title, a human-readable description and a tuple of typed
:class:`Parameter` declarations.  The spec owns parameter validation and
string parsing (the CLI's ``--set param=value`` overrides), executes the
underlying runner with merged defaults, and stamps the returned
:class:`~repro.experiments.base.ExperimentResult` with reproducibility
metadata (resolved parameters, config fingerprint, wall time).

Experiment modules register themselves with the :func:`experiment`
decorator::

    @experiment(
        name="fig6",
        title="Figure 6",
        description="Synchronous remote-read latency vs. transfer size.",
        parameters=(
            Parameter("design", str, default=None, choices=("edge", "split", "per_tile")),
            Parameter("sizes", int, default=FIG6_SIZES, repeated=True),
        ),
    )
    def run_fig6(config=None, *, design=None, sizes=FIG6_SIZES):
        ...

The decorator returns the original function unchanged (so direct calls keep
working) and attaches the spec as ``run_fig6.spec``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.obs import hooks as obs_hooks
from repro.sim import perf as sim_perf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports nothing from here)
    from repro.experiments.base import ExperimentResult

#: Scalar types a parameter may declare.
_SCALAR_TYPES = (int, float, bool, str)

_TRUE_WORDS = frozenset(("1", "true", "yes", "on"))
_FALSE_WORDS = frozenset(("0", "false", "no", "off"))


@dataclass(frozen=True)
class Parameter:
    """One typed, defaultable, optionally-enumerated experiment parameter."""

    name: str
    kind: type = str
    default: object = None
    help: str = ""
    #: Legal values (after parsing); ``None`` means unconstrained.  A
    #: zero-argument callable is evaluated at validation time, which lets
    #: registry-backed parameters accept components registered after this
    #: module was imported (e.g. third-party workloads).
    choices: object = None
    #: Repeated parameters hold a sequence of scalars (e.g. transfer sizes).
    repeated: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _SCALAR_TYPES:
            raise ExperimentError(
                "parameter %r has unsupported type %r (expected one of int, float, bool, str)"
                % (self.name, self.kind)
            )

    # ------------------------------------------------------------------
    # String parsing (CLI --set overrides)
    # ------------------------------------------------------------------
    def parse(self, text: str, list_separator: str = ",") -> object:
        """Parse a command-line value string into this parameter's type.

        Repeated parameters split ``text`` on ``list_separator`` first; the
        sweep CLI passes ``":"`` so commas stay free for enumerating the
        sweep axis.
        """
        if self.repeated:
            items = [item for item in text.split(list_separator) if item != ""]
            if not items:
                raise ExperimentError("parameter %r requires at least one value" % self.name)
            return self.validate(tuple(self._parse_scalar(item) for item in items))
        return self.validate(self._parse_scalar(text))

    def _parse_scalar(self, text: str) -> object:
        text = text.strip()
        try:
            if self.kind is bool:
                lowered = text.lower()
                if lowered in _TRUE_WORDS:
                    return True
                if lowered in _FALSE_WORDS:
                    return False
                raise ValueError(text)
            return self.kind(text)
        except ValueError:
            raise ExperimentError(
                "parameter %r expects a %s value, got %r"
                % (self.name, self.kind.__name__, text)
            ) from None

    # ------------------------------------------------------------------
    # Validation (programmatic overrides)
    # ------------------------------------------------------------------
    def validate(self, value: object) -> object:
        """Check (and lightly coerce) an override value; return the value."""
        if value is None:
            return None
        if self.repeated:
            if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
                raise ExperimentError(
                    "parameter %r expects a sequence of %s values, got %r"
                    % (self.name, self.kind.__name__, value)
                )
            return tuple(self._validate_scalar(item) for item in value)
        return self._validate_scalar(value)

    def _validate_scalar(self, value: object) -> object:
        if self.kind is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, self.kind) or (self.kind is not bool and isinstance(value, bool)):
            raise ExperimentError(
                "parameter %r expects a %s value, got %r (%s)"
                % (self.name, self.kind.__name__, value, type(value).__name__)
            )
        choices = self.choice_values()
        if choices is not None and value not in choices:
            raise ExperimentError(
                "parameter %r must be one of %s, got %r"
                % (self.name, ", ".join(repr(c) for c in choices), value)
            )
        return value

    def choice_values(self) -> Optional[Tuple[object, ...]]:
        """The legal values right now (late-bound choices are re-evaluated)."""
        if self.choices is None:
            return None
        if callable(self.choices):
            return tuple(self.choices())
        return tuple(self.choices)

    def describe(self) -> str:
        """One-line human-readable summary (used by ``repro-experiments list``)."""
        parts = ["%s: %s%s" % (self.name, self.kind.__name__, "[]" if self.repeated else "")]
        parts.append("default=%r" % (self.default,))
        choices = self.choice_values()
        if choices is not None:
            parts.append("choices=%s" % ",".join(str(c) for c in choices))
        if self.help:
            parts.append("- %s" % self.help)
        return " ".join(parts)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one regenerable table/figure."""

    name: str
    title: str
    description: str
    runner: Callable[..., "ExperimentResult"]
    parameters: Tuple[Parameter, ...] = ()
    #: Analytical-only experiments that finish in well under a second.
    fast: bool = False
    #: Factory for the config used when the caller does not supply one.
    default_config: Callable[[], SystemConfig] = SystemConfig.paper_defaults
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for parameter in self.parameters:
            if parameter.name in seen:
                raise ExperimentError(
                    "experiment %r declares parameter %r twice" % (self.name, parameter.name)
                )
            seen.add(parameter.name)

    # ------------------------------------------------------------------
    # Parameter handling
    # ------------------------------------------------------------------
    def parameter(self, name: str) -> Parameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise ExperimentError(
            "experiment %r has no parameter %r (declared: %s)"
            % (self.name, name, ", ".join(p.name for p in self.parameters) or "none")
        )

    def defaults(self) -> Dict[str, object]:
        return {parameter.name: parameter.default for parameter in self.parameters}

    def resolve(self, overrides: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Merge overrides into the declared defaults, validating each value."""
        params = self.defaults()
        for name, value in (overrides or {}).items():
            parameter = self.parameter(name)
            params[name] = parameter.validate(value)
        return params

    def parse_overrides(self, assignments: Sequence[str],
                        list_separator: str = ",") -> Dict[str, object]:
        """Parse ``param=value`` strings (the CLI's ``--set``) into overrides."""
        overrides: Dict[str, object] = {}
        for assignment in assignments:
            name, separator, text = assignment.partition("=")
            if not separator or not name:
                raise ExperimentError(
                    "malformed --set %r (expected param=value)" % assignment
                )
            overrides[name] = self.parameter(name).parse(text, list_separator=list_separator)
        return overrides

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, config: Optional[SystemConfig] = None, **overrides: object) -> "ExperimentResult":
        """Run the experiment with validated parameters and stamp metadata."""
        params = self.resolve(overrides)
        obs = obs_hooks.active()
        if obs is not None and not obs.run_label:
            # Campaigns stamp the run label with the entry's config
            # fingerprint before executing; standalone spec runs under an
            # active session fall back to the spec name.
            obs.set_run(self.name)
        started = time.perf_counter()
        with sim_perf.session() as perf_session:
            result = self.runner(config=config, **params)
        elapsed = time.perf_counter() - started
        result.metadata.experiment = self.name
        if perf_session.events:
            # Analytical experiments execute no simulation events; leave their
            # perf block empty instead of reporting a meaningless 0-rate.
            result.metadata.perf = perf_session.summary()
        result.metadata.params = _jsonable_params(params)
        if not result.metadata.config_fingerprint:
            # Runners that derive a different effective config (e.g. fig9's
            # NOC-Out merge) stamp the fingerprint themselves.
            effective = config if config is not None else self.default_config()
            result.metadata.config_fingerprint = effective.fingerprint()
        result.metadata.wall_time_s = elapsed
        result.metadata.row_count = len(result.rows)
        return result

    def describe(self) -> str:
        """Multi-line summary: title, description and declared parameters."""
        lines = ["%s (%s)" % (self.name, self.title), "  %s" % self.description]
        for parameter in self.parameters:
            lines.append("  --set %s" % parameter.describe())
        return "\n".join(lines)


def _jsonable_params(params: Mapping[str, object]) -> Dict[str, object]:
    return {
        name: list(value) if isinstance(value, tuple) else value
        for name, value in params.items()
    }


# ----------------------------------------------------------------------
# Global registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the global registry (rejecting duplicate names)."""
    if spec.name in _REGISTRY:
        raise ExperimentError("experiment %r is already registered" % spec.name)
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (used by tests that register throwaway experiments)."""
    _REGISTRY.pop(name, None)


def get_spec(name: str) -> ExperimentSpec:
    """Look up a spec by name, with a helpful error listing what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            "unknown experiment %r (available: %s)" % (name, ", ".join(list_specs()))
        ) from None


def list_specs() -> List[str]:
    """Sorted names of every registered experiment."""
    return sorted(_REGISTRY)


def iter_specs() -> List[ExperimentSpec]:
    """Every registered spec, ordered by name."""
    return [_REGISTRY[name] for name in list_specs()]


def experiment(
    name: str,
    title: str,
    description: str,
    parameters: Sequence[Parameter] = (),
    fast: bool = False,
    default_config: Callable[[], SystemConfig] = SystemConfig.paper_defaults,
    tags: Sequence[str] = (),
) -> Callable[[Callable[..., "ExperimentResult"]], Callable[..., "ExperimentResult"]]:
    """Class decorator-style registration for experiment runner functions."""
    def decorate(runner: Callable[..., "ExperimentResult"]) -> Callable[..., "ExperimentResult"]:
        spec = ExperimentSpec(
            name=name,
            title=title,
            description=description,
            runner=runner,
            parameters=tuple(parameters),
            fast=fast,
            default_config=default_config,
            tags=tuple(tags),
        )
        register(spec)
        runner.spec = spec  # type: ignore[attr-defined]
        return runner
    return decorate
