"""Figure 6: latency of synchronous remote reads vs. transfer size (mesh NOC).

A single core issues synchronous remote reads of 64 B to 16 KB in an
unloaded system (one network hop per direction).  The paper shows the three
messaging designs converging as the transfer grows — except NIper-tile,
whose source-tile unrolling makes it the *slowest* design for the largest
transfers — with the NUMA projection as the lower bound.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.numa.machine import NumaMachine
from repro.workloads.microbench import RemoteReadLatencyBenchmark

#: The transfer sizes on the Figure-6 x-axis.
FIG6_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
_DESIGNS = (NIDesign.EDGE, NIDesign.SPLIT, NIDesign.PER_TILE)


def run_fig6(
    config: Optional[SystemConfig] = None,
    sizes: Sequence[int] = FIG6_SIZES,
    hops: int = 1,
    iterations: int = 5,
    warmup: int = 2,
) -> ExperimentResult:
    """Regenerate the Figure-6 latency sweep using the discrete-event simulator."""
    config = config if config is not None else SystemConfig.paper_defaults()
    result = ExperimentResult(
        name="Figure 6",
        description="End-to-end latency (ns) of synchronous remote reads on the mesh NOC, "
                    "one network hop per direction.",
        headers=["Transfer (B)", "NIedge (ns)", "NIsplit (ns)", "NIper-tile (ns)", "NUMA projection (ns)"],
    )
    numa = NumaMachine(config)
    latencies = {}
    for design in _DESIGNS:
        bench = RemoteReadLatencyBenchmark(
            config.with_design(design), hops=hops, iterations=iterations, warmup=warmup
        )
        latencies[design] = {size: bench.run(size).mean_ns for size in sizes}
    for size in sizes:
        result.add_row(
            size,
            latencies[NIDesign.EDGE][size],
            latencies[NIDesign.SPLIT][size],
            latencies[NIDesign.PER_TILE][size],
            config.cycles_to_ns(numa.transfer_latency_cycles(size, hops)),
        )
    result.add_note("paper: NIsplit tracks NIper-tile for small sizes, NIedge carries a ~130 ns "
                    "constant penalty, and NIper-tile becomes the slowest design at 8-16 KB")
    return result
