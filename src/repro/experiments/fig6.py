"""Figure 6: latency of synchronous remote reads vs. transfer size (mesh NOC).

A single core issues synchronous remote reads of 64 B to 16 KB in an
unloaded system (one network hop per direction).  The paper shows the three
messaging designs converging as the transfer grows — except NIper-tile,
whose source-tile unrolling makes it the *slowest* design for the largest
transfers — with the NUMA projection as the lower bound.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment
from repro.numa.machine import NumaMachine
from repro.scenario.registry import NI_DESIGNS
from repro.workloads.microbench import RemoteReadLatencyBenchmark

#: The transfer sizes on the Figure-6 x-axis.
FIG6_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)


#: Column order of the paper's figures (edge, split, per-tile).
FIGURE_DESIGN_ORDER = (NIDesign.EDGE, NIDesign.SPLIT, NIDesign.PER_TILE)


def select_designs(design: Optional[object]) -> Tuple[NIDesign, ...]:
    """The messaging designs an experiment sweeps: all three, or just one."""
    if design is None:
        return FIGURE_DESIGN_ORDER
    return (NIDesign.coerce(design),)


@experiment(
    name="fig6",
    title="Figure 6",
    description="Synchronous remote-read latency vs. transfer size on the mesh NOC.",
    parameters=(
        Parameter("design", str, default=None,
                  choices=tuple(NI_DESIGNS.names(messaging=True)),
                  help="restrict the sweep to one messaging design (default: all three)"),
        Parameter("sizes", int, default=FIG6_SIZES, repeated=True,
                  help="transfer sizes in bytes (x-axis)"),
        Parameter("hops", int, default=1, help="inter-node network hops per direction"),
        Parameter("iterations", int, default=5, help="measured reads per size"),
        Parameter("warmup", int, default=2, help="discarded warm-up reads per size"),
    ),
    tags=("simulated", "latency", "mesh"),
)
def run_fig6(
    config: Optional[SystemConfig] = None,
    design: Optional[str] = None,
    sizes: Sequence[int] = FIG6_SIZES,
    hops: int = 1,
    iterations: int = 5,
    warmup: int = 2,
) -> ExperimentResult:
    """Regenerate the Figure-6 latency sweep using the discrete-event simulator."""
    config = config if config is not None else SystemConfig.paper_defaults()
    designs = select_designs(design)
    result = ExperimentResult(
        name="Figure 6",
        description="End-to-end latency (ns) of synchronous remote reads on the mesh NOC, "
                    "one network hop per direction.",
        headers=["Transfer (B)"]
                + ["%s (ns)" % d.label for d in designs]
                + ["NUMA projection (ns)"],
    )
    numa = NumaMachine(config)
    latencies = {}
    for d in designs:
        bench = RemoteReadLatencyBenchmark(
            config.with_design(d), hops=hops, iterations=iterations, warmup=warmup
        )
        latencies[d] = {size: bench.run(size).mean_ns for size in sizes}
    for size in sizes:
        result.add_row(
            size,
            *[latencies[d][size] for d in designs],
            config.cycles_to_ns(numa.transfer_latency_cycles(size, hops)),
        )
    result.metadata.events["latency_samples"] = (warmup + iterations) * len(sizes) * len(designs)
    result.add_note("paper: NIsplit tracks NIper-tile for small sizes, NIedge carries a ~130 ns "
                    "constant penalty, and NIper-tile becomes the slowest design at 8-16 KB")
    return result
