"""Figure 10: application bandwidth of asynchronous remote reads on NOC-Out (§6.3.1).

Same microbenchmark as Figure 7 on the NOC-Out topology.  The paper finds
the same qualitative trends as on the mesh but a significantly lower peak
bandwidth, because the NOC-Out organization has far fewer LLC tiles/banks
and they become highly contended.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.fig6 import select_designs
from repro.experiments.fig7 import FIG7_SIZES
from repro.experiments.spec import Parameter, experiment
from repro.scenario.registry import NI_DESIGNS
from repro.workloads.microbench import RemoteReadBandwidthBenchmark


@experiment(
    name="fig10",
    title="Figure 10",
    description="Asynchronous remote-read application bandwidth vs. transfer size "
                "on NOC-Out.",
    parameters=(
        Parameter("design", str, default=None,
                  choices=tuple(NI_DESIGNS.names(messaging=True)),
                  help="restrict the sweep to one messaging design (default: all three)"),
        Parameter("sizes", int, default=FIG7_SIZES, repeated=True,
                  help="transfer sizes in bytes (x-axis)"),
        Parameter("warmup_cycles", float, default=5_000.0,
                  help="cycles simulated before measurement starts"),
        Parameter("measure_cycles", float, default=15_000.0,
                  help="cycles in the measurement window"),
    ),
    default_config=SystemConfig.noc_out_defaults,
    tags=("simulated", "bandwidth", "noc-out"),
)
def run_fig10(
    config: Optional[SystemConfig] = None,
    design: Optional[str] = None,
    sizes: Sequence[int] = FIG7_SIZES,
    warmup_cycles: float = 5_000,
    measure_cycles: float = 15_000,
) -> ExperimentResult:
    """Regenerate the Figure-10 bandwidth sweep on NOC-Out."""
    base = config if config is not None else SystemConfig.noc_out_defaults()
    designs = select_designs(design)
    util_design = NIDesign.SPLIT if NIDesign.SPLIT in designs else designs[0]
    result = ExperimentResult(
        name="Figure 10",
        description="Aggregate application bandwidth (GBps) for asynchronous remote reads "
                    "on NOC-Out with rate-matched incoming traffic.",
        headers=["Transfer (B)"]
                + ["%s (GBps)" % d.label for d in designs]
                + ["LLC bank utilization, %s" % util_design.label],
    )
    bandwidth = {}
    llc_util = {}
    for d in designs:
        bench = RemoteReadBandwidthBenchmark(
            base.with_design(d),
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        for size in sizes:
            run = bench.run(size)
            bandwidth[(d, size)] = run.application_gbps
            if d is util_design:
                llc_util[size] = run.llc_bank_utilization
    for size in sizes:
        result.add_row(
            size,
            *[bandwidth[(d, size)] for d in designs],
            llc_util[size],
        )
    result.metadata.events["bandwidth_runs"] = len(sizes) * len(designs)
    result.add_note("paper: trends match the mesh but the peak is significantly lower because "
                    "the 8-bank LLC row is highly contended")
    return result
