"""Figure 10: application bandwidth of asynchronous remote reads on NOC-Out (§6.3.1).

Same microbenchmark as Figure 7 on the NOC-Out topology.  The paper finds
the same qualitative trends as on the mesh but a significantly lower peak
bandwidth, because the NOC-Out organization has far fewer LLC tiles/banks
and they become highly contended.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.fig7 import FIG7_SIZES
from repro.workloads.microbench import RemoteReadBandwidthBenchmark

_DESIGNS = (NIDesign.EDGE, NIDesign.SPLIT, NIDesign.PER_TILE)


def run_fig10(
    config: Optional[SystemConfig] = None,
    sizes: Sequence[int] = FIG7_SIZES,
    warmup_cycles: float = 5_000,
    measure_cycles: float = 15_000,
) -> ExperimentResult:
    """Regenerate the Figure-10 bandwidth sweep on NOC-Out."""
    base = config if config is not None else SystemConfig.noc_out_defaults()
    result = ExperimentResult(
        name="Figure 10",
        description="Aggregate application bandwidth (GBps) for asynchronous remote reads "
                    "on NOC-Out with rate-matched incoming traffic.",
        headers=["Transfer (B)", "NIedge (GBps)", "NIsplit (GBps)", "NIper-tile (GBps)",
                 "LLC bank utilization, NIsplit"],
    )
    bandwidth = {}
    llc_util = {}
    for design in _DESIGNS:
        bench = RemoteReadBandwidthBenchmark(
            base.with_design(design),
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        for size in sizes:
            run = bench.run(size)
            bandwidth[(design, size)] = run.application_gbps
            if design is NIDesign.SPLIT:
                llc_util[size] = run.llc_bank_utilization
    for size in sizes:
        result.add_row(
            size,
            bandwidth[(NIDesign.EDGE, size)],
            bandwidth[(NIDesign.SPLIT, size)],
            bandwidth[(NIDesign.PER_TILE, size)],
            llc_util[size],
        )
    result.add_note("paper: trends match the mesh but the peak is significantly lower because "
                    "the 8-bank LLC row is highly contended")
    return result
