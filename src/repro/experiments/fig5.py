"""Figure 5: end-to-end latency projection across intra-rack hop counts.

The figure plots, for hop counts 0-12 (the diameter of the 512-node 3D
torus), the zero-load end-to-end latency of a single-block remote read for
the NUMA projection, NIsplit and NIedge, plus the percentage overhead of the
two messaging designs over NUMA (28.6 % vs 4.7 % at the 6-hop average,
16.2 % vs 2.6 % at the 12-hop diameter).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.projection import HopProjection
from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment


@experiment(
    name="fig5",
    title="Figure 5",
    description="Projected remote-read latency vs. intra-rack hop count.",
    parameters=(
        Parameter("max_hops", int, default=None,
                  help="largest hop count to project (default: the torus diameter)"),
    ),
    fast=True,
    tags=("analytical", "latency"),
)
def run_fig5(config: Optional[SystemConfig] = None, max_hops: Optional[int] = None) -> ExperimentResult:
    """Regenerate the Figure-5 series."""
    config = config if config is not None else SystemConfig.paper_defaults()
    projection = HopProjection(config)
    result = ExperimentResult(
        name="Figure 5",
        description="Projected end-to-end latency of a cache-block remote read vs. "
                    "intra-rack hop count (ns, and % overhead over NUMA).",
        headers=[
            "Hops",
            "NUMA (ns)",
            "NIsplit (ns)",
            "NIedge (ns)",
            "NIsplit overhead (%)",
            "NIedge overhead (%)",
        ],
    )
    for point in projection.sweep(max_hops):
        result.add_row(
            point.hops,
            point.latency_ns[NIDesign.NUMA],
            point.latency_ns[NIDesign.SPLIT],
            point.latency_ns[NIDesign.EDGE],
            100 * point.overhead_over_numa[NIDesign.SPLIT],
            100 * point.overhead_over_numa[NIDesign.EDGE],
        )
    result.add_note("average hop count in the 512-node torus: %.1f; diameter: %d"
                    % (projection.average_hops(), projection.max_hops()))
    result.add_note("paper reports 28.6% (NIedge) vs 4.7% (NIsplit) overhead at 6 hops")
    return result
