"""Registry of experiment specs (and the legacy name -> callable view).

Importing this module imports every experiment module, which registers its
:class:`~repro.experiments.spec.ExperimentSpec` via the ``@experiment``
decorator.  New code should use :func:`get_spec` / :func:`iter_specs`; the
seed API (``EXPERIMENTS``, :func:`get_experiment`, :func:`list_experiments`)
is kept as a thin view over the spec registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.base import ExperimentResult
from repro.experiments.spec import ExperimentSpec, get_spec, iter_specs, list_specs

# Importing the experiment modules populates the spec registry.
from repro.experiments import chaos_sweep as _chaos_sweep  # noqa: F401
from repro.experiments import fig5 as _fig5  # noqa: F401
from repro.experiments import fig6 as _fig6  # noqa: F401
from repro.experiments import fig7 as _fig7  # noqa: F401
from repro.experiments import fig9 as _fig9  # noqa: F401
from repro.experiments import fig10 as _fig10  # noqa: F401
from repro.experiments import load_sweep as _load_sweep  # noqa: F401
from repro.experiments import owned_state_ablation as _owned  # noqa: F401
from repro.experiments import routing_ablation as _routing  # noqa: F401
from repro.experiments import scenario_run as _scenario  # noqa: F401
from repro.experiments import table1 as _table1  # noqa: F401
from repro.experiments import table2 as _table2  # noqa: F401
from repro.experiments import table3 as _table3  # noqa: F401

ExperimentRunner = Callable[..., ExperimentResult]


#: All regenerable tables/figures, keyed by the name used on the CLI.
#: Legacy view: maps each name to the raw runner callable.
EXPERIMENTS: Dict[str, ExperimentRunner] = {spec.name: spec.runner for spec in iter_specs()}


def list_experiments() -> List[str]:
    """Names of every registered experiment."""
    return list_specs()


def get_experiment(name: str) -> ExperimentRunner:
    """Look up an experiment runner by name (legacy API; prefer get_spec)."""
    return get_spec(name).runner


__all__ = [
    "EXPERIMENTS",
    "ExperimentRunner",
    "ExperimentSpec",
    "get_experiment",
    "get_spec",
    "iter_specs",
    "list_experiments",
    "list_specs",
]
