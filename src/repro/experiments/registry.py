"""Registry mapping experiment names to their runner functions."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.owned_state_ablation import run_owned_state_ablation
from repro.experiments.routing_ablation import run_routing_ablation
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

ExperimentRunner = Callable[..., ExperimentResult]

#: All regenerable tables/figures, keyed by the name used on the CLI.
EXPERIMENTS: Dict[str, ExperimentRunner] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "routing": run_routing_ablation,
    "owned-state": run_owned_state_ablation,
}


def list_experiments() -> List[str]:
    """Names of every registered experiment."""
    return sorted(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentRunner:
    """Look up an experiment runner by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            "unknown experiment %r (available: %s)" % (name, ", ".join(list_experiments()))
        ) from None
