"""NI-cache owned-state ablation (§3.4).

The per-tile and split designs attach the NI cache behind the core's L1.
The common case of the core polling a CQ block that the NI cache holds
modified would, under plain MESI, force a write-back to the LLC before the
block can be forwarded; the owned state lets the NI cache forward a clean
copy immediately.  This experiment measures the single-block remote-read
latency with the optimization enabled and disabled.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment
from repro.workloads.microbench import RemoteReadLatencyBenchmark


@experiment(
    name="owned-state",
    title="Owned-state ablation",
    description="Remote-read latency with the NI-cache owned state on vs. off (§3.4).",
    parameters=(
        Parameter("transfer_bytes", int, default=64, help="remote-read transfer size"),
        Parameter("iterations", int, default=6, help="measured reads per variant"),
    ),
    tags=("simulated", "latency", "ablation"),
)
def run_owned_state_ablation(
    config: Optional[SystemConfig] = None,
    transfer_bytes: int = 64,
    iterations: int = 6,
) -> ExperimentResult:
    """Latency with and without the NI-cache owned-state optimization."""
    config = config if config is not None else SystemConfig.paper_defaults()
    result = ExperimentResult(
        name="Owned-state ablation",
        description="Zero-load latency (cycles) of a %d-byte remote read with the NI-cache "
                    "owned state enabled vs disabled." % transfer_bytes,
        headers=["Design", "Owned state", "Latency (cycles)"],
    )
    for design in (NIDesign.PER_TILE, NIDesign.SPLIT):
        for enabled in (True, False):
            variant = config.with_design(design)
            variant = variant.replace(ni=dataclasses.replace(variant.ni, ni_cache_owned_state=enabled))
            bench = RemoteReadLatencyBenchmark(variant, iterations=iterations, warmup=2)
            run = bench.run(transfer_bytes)
            result.add_row(design.value, "on" if enabled else "off", run.mean_cycles)
    result.add_note("disabling the owned state adds an LLC round trip to every CQ poll of a "
                    "dirty block (§3.4)")
    return result
