"""Routing ablation (§4.3, §6.2 text).

The paper reports that without CDR the bandwidth curves keep their shape but
the peak any design reaches is less than half of the CDR peak (~100 GBps vs
214 GBps), because dimension-order routing turns the MC (or NI) edge column
into a hotspot.  This experiment sweeps the routing policy for one design
and one transfer size and reports the achieved application bandwidth.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, RoutingAlgorithm, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment
from repro.scenario.registry import NI_DESIGNS
from repro.workloads.microbench import RemoteReadBandwidthBenchmark

_DEFAULT_POLICIES = (
    RoutingAlgorithm.XY,
    RoutingAlgorithm.YX,
    RoutingAlgorithm.O1TURN,
    RoutingAlgorithm.CDR,
    RoutingAlgorithm.CDR_EXTENDED,
)


@experiment(
    name="routing",
    title="Routing ablation",
    description="Application bandwidth under each on-chip routing policy (§4.3).",
    parameters=(
        Parameter("design", str, default=NIDesign.SPLIT.value,
                  choices=tuple(NI_DESIGNS.names(messaging=True)),
                  help="messaging design to drive the NOC with"),
        Parameter("transfer_bytes", int, default=2048, help="remote-read transfer size"),
        Parameter("policies", str, default=tuple(p.value for p in _DEFAULT_POLICIES),
                  repeated=True, help="routing policies to sweep"),
        Parameter("warmup_cycles", float, default=5_000.0,
                  help="cycles simulated before measurement starts"),
        Parameter("measure_cycles", float, default=15_000.0,
                  help="cycles in the measurement window"),
    ),
    tags=("simulated", "bandwidth", "ablation"),
)
def run_routing_ablation(
    config: Optional[SystemConfig] = None,
    design: object = NIDesign.SPLIT,
    transfer_bytes: int = 2048,
    policies: Sequence[object] = _DEFAULT_POLICIES,
    warmup_cycles: float = 5_000,
    measure_cycles: float = 15_000,
) -> ExperimentResult:
    """Application bandwidth under each on-chip routing policy."""
    config = config if config is not None else SystemConfig.paper_defaults()
    design = NIDesign.coerce(design)
    policies = tuple(RoutingAlgorithm.coerce(policy) for policy in policies)
    result = ExperimentResult(
        name="Routing ablation",
        description="Application bandwidth (GBps) of %s with %d-byte transfers under "
                    "different on-chip routing policies." % (design.value, transfer_bytes),
        headers=["Routing", "Application (GBps)", "NOC wire (GBps)", "Max link utilization"],
    )
    for policy in policies:
        bench = RemoteReadBandwidthBenchmark(
            config.with_design(design).with_routing(policy),
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        run = bench.run(transfer_bytes)
        result.add_row(policy.value, run.application_gbps, run.noc_wire_gbps, run.max_link_utilization)
    result.metadata.events["bandwidth_runs"] = len(policies)
    result.add_note("paper: without CDR the peak bandwidth is less than half of the CDR peak")
    return result
