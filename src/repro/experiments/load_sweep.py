"""The ``load_sweep`` experiment: offered-load sweep to SLO saturation.

The paper's headline methodology is latency *under load*: each NI design is
judged by how far offered load can climb before the latency distribution
degrades.  This experiment drives any registered scenario open loop
(:class:`~repro.load.driver.OpenLoopDriver`) at a ladder of offered loads,
reports exact p50/p95/p99/p99.9 per load point (full-stream histograms, not
sampled reservoirs), and derives the *saturation throughput*: the highest
achieved throughput whose tail still meets the SLO

    p99 <= slo_factor x (mean latency at the lowest measured load)

with a drop fraction of at most ``drop_limit``.  Sweepable across designs,
topologies, workloads and arrival processes like any other experiment::

    repro-experiments run load_sweep --set workload=kvstore --set design=split
    repro-experiments sweep load_sweep --set design=edge,split,per_tile \\
        --set arrivals=deterministic,poisson,bursty --parallel 4
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment
from repro.experiments.scenario_run import parse_workload_params
from repro.load.driver import OpenLoopDriver
from repro.scenario.registry import ARRIVALS, NI_DESIGNS, TOPOLOGIES, WORKLOADS
from repro.scenario.spec import ScenarioSpec

#: Offered-load ladder in requests per kcycle; brackets the saturation knee
#: of the default scenario (kvstore on the split design).
DEFAULT_LOADS = (2.0, 5.0, 10.0, 20.0, 40.0)
#: Largest acceptable fraction of dropped (queue-overflow) arrivals.
DROP_LIMIT = 0.01


@experiment(
    name="load_sweep",
    title="Open-loop saturation sweep",
    description="Tail latency vs. offered load; saturation throughput under an SLO.",
    parameters=(
        Parameter("design", str, default="split",
                  choices=lambda: NI_DESIGNS.names(messaging=True),
                  help="NI design (from the design registry)"),
        Parameter("topology", str, default="mesh",
                  choices=lambda: TOPOLOGIES.names(scope="chip"),
                  help="on-chip topology (from the topology registry)"),
        Parameter("workload", str, default="kvstore",
                  choices=lambda: WORKLOADS.names(),
                  help="workload (from the workload registry)"),
        Parameter("arrivals", str, default="poisson",
                  choices=lambda: ARRIVALS.names(),
                  help="open-loop arrival process (from the ARRIVALS registry)"),
        Parameter("loads", float, default=DEFAULT_LOADS, repeated=True,
                  help="offered loads to walk, in requests per kcycle"),
        Parameter("slo_factor", float, default=5.0,
                  help="SLO: p99 must stay within this multiple of the "
                       "lowest-load mean latency"),
        Parameter("warmup_cycles", float, default=4_000.0,
                  help="cycles simulated before measurement starts"),
        Parameter("measure_cycles", float, default=20_000.0,
                  help="measurement window length in cycles"),
        Parameter("queue_depth", int, default=64,
                  help="bounded per-core arrival queue (overflow = drop)"),
        Parameter("max_outstanding", int, default=8,
                  help="in-flight operations per core"),
        Parameter("seed", int, default=1,
                  help="arrival-process seed (schedules are reproducible)"),
        Parameter("params", str, default=(), repeated=True,
                  help="workload parameter overrides as key=value pairs"),
        Parameter("arrival_params", str, default=(), repeated=True,
                  help="arrival-process parameter overrides as key=value pairs"),
    ),
    tags=("simulated", "load"),
)
def run_load_sweep(
    config: Optional[SystemConfig] = None,
    design: str = "split",
    topology: str = "mesh",
    workload: str = "kvstore",
    arrivals: str = "poisson",
    loads: Sequence[float] = DEFAULT_LOADS,
    slo_factor: float = 5.0,
    warmup_cycles: float = 4_000.0,
    measure_cycles: float = 20_000.0,
    queue_depth: int = 64,
    max_outstanding: int = 8,
    seed: int = 1,
    params: Sequence[str] = (),
    arrival_params: Sequence[str] = (),
) -> ExperimentResult:
    """Walk the load ladder, tabulate exact tails, find the saturation point."""
    load_points = sorted(set(float(load) for load in loads))
    if not load_points:
        raise ExperimentError("load_sweep needs at least one load point")
    result = ExperimentResult(
        name="Load sweep %s@%s/%s [%s arrivals]" % (workload, design, topology, arrivals),
        description=(
            "Open-loop offered-load sweep: exact tail percentiles per load point; "
            "saturation is the highest achieved throughput meeting the SLO "
            "(p99 <= %.1fx lowest-load mean, drops <= %.0f%%)."
            % (slo_factor, DROP_LIMIT * 100.0)
        ),
        headers=[
            "Offered (req/kcycle)", "Injected (req/kcycle)", "Achieved (req/kcycle)",
            "Drop fraction", "Mean (ns)", "p50 (ns)", "p95 (ns)", "p99 (ns)",
            "p99.9 (ns)", "Queue at arrival", "SLO ok",
        ],
    )
    spec = ScenarioSpec(
        design=design,
        topology=topology,
        workload=workload,
        workload_params=parse_workload_params(params),
        arrivals=arrivals,
        arrival_params=parse_workload_params(arrival_params),
    )
    fingerprint = ""
    frequency = 0.0  # captured with the fingerprint on the first load point
    baseline_mean_cycles: Optional[float] = None
    saturation = None  # (achieved, offered) of the last SLO-meeting point
    first_violation = None
    empty_points = []  # load points that completed nothing in the window
    total_injected = 0
    total_completed = 0
    for offered in load_points:
        # A fresh machine per load point (from_spec runs MachineBuilder):
        # load levels must not contaminate each other through residual queue
        # or cache state.  from_spec picks the arrival process and its params
        # off the spec's fields.
        driver = OpenLoopDriver.from_spec(
            spec,
            offered,
            base_config=config,
            queue_depth=queue_depth,
            max_outstanding=max_outstanding,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            seed=seed,
        )
        if not fingerprint:
            fingerprint = driver.scenario.config.fingerprint()
            frequency = driver.scenario.config.cores.frequency_ghz
        point = driver.run()
        total_injected += point.injected
        total_completed += point.completed
        latency = point.latency_cycles
        if baseline_mean_cycles is None and latency.get("count", 0) > 0:
            # The lowest measured load *that completed requests* defines the
            # "zero-load" reference; a point too sparse to finish anything in
            # the window must not poison the SLO with a zero baseline.
            baseline_mean_cycles = latency["mean"]
        meets_slo = (
            baseline_mean_cycles is not None
            and latency.get("count", 0) > 0
            and latency.get("p99", 0.0) <= slo_factor * baseline_mean_cycles
            and point.drop_fraction <= DROP_LIMIT
        )
        if latency.get("count", 0) == 0:
            # Too sparse to measure: not an SLO verdict either way.
            empty_points.append(offered)
        elif meets_slo:
            if first_violation is None:
                saturation = (point.achieved_per_kcycle, offered)
            else:
                # A higher load passing after a lower one violated does not
                # extend the saturation claim — flag the non-monotone tail.
                result.metadata.warnings.append(
                    "load %g meets the SLO although %g already violated it; "
                    "tail behaviour is non-monotone — lengthen measure_cycles"
                    % (offered, first_violation)
                )
        elif first_violation is None:
            first_violation = offered
        result.add_row(
            offered,
            round(point.injected_per_kcycle, 3),
            round(point.achieved_per_kcycle, 3),
            round(point.drop_fraction, 4),
            round(point.latency_ns("mean"), 1),
            round(point.latency_ns("p50"), 1),
            round(point.latency_ns("p95"), 1),
            round(point.latency_ns("p99"), 1),
            round(point.latency_ns("p99.9"), 1),
            round(point.mean_queue_depth, 2),
            meets_slo,
        )
    # `frequency` was captured from the built scenario's config — the same
    # clock every per-row ns conversion used.
    slo_limit_ns = slo_factor * (baseline_mean_cycles or 0.0) / frequency
    if saturation is not None:
        result.add_note(
            "saturation throughput: %.2f req/kcycle (achieved at offered "
            "%.2f req/kcycle; SLO p99 <= %.1f ns, drops <= %.0f%%)"
            % (saturation[0], saturation[1], slo_limit_ns, DROP_LIMIT * 100.0)
        )
    else:
        result.add_note("saturation throughput: not met at any measured load")
        if baseline_mean_cycles is None:
            result.metadata.warnings.append(
                "no load point completed any request; lengthen measure_cycles "
                "or raise the sweep's loads"
            )
        else:
            result.metadata.warnings.append(
                "every load point violates the SLO; lower the sweep's starting load"
            )
    if empty_points:
        result.metadata.warnings.append(
            "load point(s) %s completed no requests within the window; "
            "lengthen measure_cycles"
            % ", ".join("%g" % point for point in empty_points)
        )
    if first_violation is None and saturation is not None:
        result.metadata.warnings.append(
            "no load point violates the SLO; saturation lies beyond "
            "%.2f req/kcycle — extend the sweep" % load_points[-1]
        )
    result.add_note(
        "percentiles are exact (full-stream HDR histograms); latency is "
        "measured from the open-loop arrival instant, queueing included"
    )
    result.metadata.config_fingerprint = fingerprint
    result.metadata.events["load_points"] = len(load_points)
    result.metadata.events["requests_injected"] = total_injected
    result.metadata.events["requests_completed"] = total_completed
    return result
