"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment is declared as an
:class:`~repro.experiments.spec.ExperimentSpec` (typed parameters, defaults,
choices) via the :func:`~repro.experiments.spec.experiment` decorator and
returns an :class:`~repro.experiments.base.ExperimentResult` — a structured,
JSON/CSV-serializable record whose rows mirror the series the paper
reports.  ``repro-experiments`` (the CLI), :mod:`repro.campaign` (parallel
parameter sweeps) and the pytest-benchmark suite drive them.
"""

from repro.experiments.base import ExperimentResult, ResultMetadata, load_result
from repro.experiments.spec import ExperimentSpec, Parameter, experiment
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    get_spec,
    iter_specs,
    list_experiments,
    list_specs,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.routing_ablation import run_routing_ablation
from repro.experiments.owned_state_ablation import run_owned_state_ablation

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "Parameter",
    "ResultMetadata",
    "EXPERIMENTS",
    "experiment",
    "get_experiment",
    "get_spec",
    "iter_specs",
    "list_experiments",
    "list_specs",
    "load_result",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig9",
    "run_fig10",
    "run_routing_ablation",
    "run_owned_state_ablation",
]
