"""Table 1: latency comparison of the QP-based model and a pure load/store interface.

The paper's Table 1 breaks a single-block remote read (one network hop) into
its components for the NIedge-based QP model (710 cycles) and the idealized
NUMA machine (395 cycles), showing a 79.7 % overhead dominated by the
coherence-based QP interactions.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.breakdown import LatencyBreakdownModel
from repro.config import SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment


@experiment(
    name="table1",
    title="Table 1",
    description="Latency breakdown: QP-based remote read vs. load/store NUMA.",
    parameters=(
        Parameter("hops", int, default=1, help="inter-node network hops per direction"),
    ),
    fast=True,
    tags=("analytical", "latency"),
)
def run_table1(config: Optional[SystemConfig] = None, hops: int = 1) -> ExperimentResult:
    """Regenerate Table 1."""
    config = config if config is not None else SystemConfig.paper_defaults()
    model = LatencyBreakdownModel(config)
    table = model.table1(hops=hops)
    qp, numa = table["qp_based"], table["numa"]
    result = ExperimentResult(
        name="Table 1",
        description="Zero-load latency of a QP-based single-block remote read vs. a "
                    "load/store NUMA machine (%d network hop, 2 GHz cycles)." % hops,
        headers=["QP-based component", "cycles", "NUMA component", "cycles"],
    )
    rows = max(len(qp.components), len(numa.components))
    for index in range(rows):
        qp_label, qp_cycles = ("", "")
        numa_label, numa_cycles = ("", "")
        if index < len(qp.components):
            qp_label = qp.components[index].label
            qp_cycles = qp.components[index].cycles
        if index < len(numa.components):
            numa_label = numa.components[index].label
            numa_cycles = numa.components[index].cycles
        result.add_row(qp_label, qp_cycles, numa_label, numa_cycles)
    result.add_row("Total (2GHz cycles)", qp.total_cycles, "Total (2GHz cycles)", numa.total_cycles)
    overhead = qp.overhead_over(numa)
    result.add_row("Overhead over NUMA", "%.1f%%" % (100 * overhead), "", "")
    result.add_note("paper reports 710 vs 395 cycles (79.7%% overhead); this model: "
                    "%d vs %d (%.1f%%)" % (qp.total_cycles, numa.total_cycles, 100 * overhead))
    return result
