"""Batch experiment runner (legacy shim over the spec registry).

New code should build a :class:`repro.campaign.Campaign`; this module keeps
the seed's ``run_experiments(names)`` / ``format_results(results)`` surface
for callers that just want every table/figure regenerated sequentially.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_spec, iter_specs, list_experiments


def fast_experiments() -> List[str]:
    """Names of the analytical experiments that complete in well under a second."""
    return [spec.name for spec in iter_specs() if spec.fast]


#: Experiments that complete in well under a second (analytical only).
FAST_EXPERIMENTS = tuple(fast_experiments())


def run_experiments(
    names: Optional[Iterable[str]] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> List[ExperimentResult]:
    """Run the named experiments (all of them when ``names`` is None).

    ``overrides`` are parameter overrides applied to every selected
    experiment that declares the parameter; unknown parameters for a given
    experiment are skipped (they were meant for another one).
    """
    selected = list(names) if names is not None else list_experiments()
    results = []
    for name in selected:
        spec = get_spec(name)
        declared = {parameter.name for parameter in spec.parameters}
        applicable = {
            key: value for key, value in (overrides or {}).items() if key in declared
        }
        results.append(spec.run(**applicable))
    return results


def format_results(results: Iterable[ExperimentResult]) -> str:
    """Concatenate formatted experiment outputs."""
    return "\n\n".join(result.format() for result in results)
