"""Batch experiment runner used by the CLI."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_experiment, list_experiments

#: Experiments that complete in well under a second (analytical only).
FAST_EXPERIMENTS = ("table1", "table2", "table3", "fig5")


def run_experiments(names: Optional[Iterable[str]] = None) -> List[ExperimentResult]:
    """Run the named experiments (all of them when ``names`` is None)."""
    selected = list(names) if names is not None else list_experiments()
    results = []
    for name in selected:
        runner = get_experiment(name)
        results.append(runner())
    return results


def format_results(results: Iterable[ExperimentResult]) -> str:
    """Concatenate formatted experiment outputs."""
    return "\n\n".join(result.format() for result in results)
