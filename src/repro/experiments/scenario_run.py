"""The ``scenario`` experiment: run any registered scenario composition.

Where the figure/table experiments regenerate fixed paper results, this
experiment exposes the whole registry-backed design space to the campaign
machinery: any registered workload on any messaging NI design and chip
topology, with workload parameters passed as repeated ``key=value`` strings.
Because the parameter choices are enumerated from the registries, sweeps can
range over every registered component::

    repro-experiments run scenario --set workload=hotspot
    repro-experiments sweep scenario --set design=edge,split,per_tile \\
        --set workload=uniform_random,hotspot,rw_mix --parallel 4

A registered third-party workload shows up here automatically once its
module is imported.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.spec import Parameter, experiment
from repro.scenario.builder import MachineBuilder
from repro.scenario.registry import NI_DESIGNS, TOPOLOGIES, WORKLOADS
from repro.scenario.spec import ScenarioSpec

_TRUE_WORDS = frozenset(("true", "yes", "on"))
_FALSE_WORDS = frozenset(("false", "no", "off"))


def parse_workload_params(assignments: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``key=value`` strings into typed workload parameters.

    Values are coerced in order int → float → bool-word → string, which
    covers every JSON-native scalar a workload declares in its defaults.
    """
    params: Dict[str, object] = {}
    for assignment in assignments:
        name, separator, text = assignment.partition("=")
        if not separator or not name:
            raise ExperimentError(
                "malformed workload parameter %r (expected key=value)" % assignment
            )
        params[name] = _parse_value(text.strip())
    return params


def _parse_value(text: str) -> object:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    if lowered == "none":
        return None
    return text


@experiment(
    name="scenario",
    title="Scenario",
    description="Any registered workload on any registered machine composition.",
    parameters=(
        # Late-bound (callable) choices: components registered after this
        # module was imported — e.g. a user plugin — stay runnable.
        Parameter("design", str, default="split",
                  choices=lambda: NI_DESIGNS.names(messaging=True),
                  help="NI design (from the design registry)"),
        Parameter("topology", str, default="mesh",
                  choices=lambda: TOPOLOGIES.names(scope="chip"),
                  help="on-chip topology (from the topology registry)"),
        Parameter("workload", str, default="uniform_random",
                  choices=lambda: WORKLOADS.names(),
                  help="workload (from the workload registry)"),
        Parameter("params", str, default=(), repeated=True,
                  help="workload parameter overrides as key=value pairs"),
    ),
    tags=("simulated", "scenario"),
)
def run_scenario(
    config: Optional[SystemConfig] = None,
    design: str = "split",
    topology: str = "mesh",
    workload: str = "uniform_random",
    params: Sequence[str] = (),
) -> ExperimentResult:
    """Build the scenario with :class:`MachineBuilder`, run it, tabulate metrics."""
    spec = ScenarioSpec(
        design=design,
        topology=topology,
        workload=workload,
        workload_params=parse_workload_params(params),
    )
    scenario_result = MachineBuilder(spec, base_config=config).run()
    result = ExperimentResult(
        name="Scenario %s" % spec.label(),
        description="Workload %r on design %r over the %r topology." % (
            spec.workload, spec.design, spec.topology),
        headers=["Metric", "Value"],
    )
    for metric in sorted(scenario_result.metrics):
        result.add_row(metric, scenario_result.metrics[metric])
    result.add_note("scenario fingerprint: %s" % scenario_result.scenario_fingerprint)
    result.metadata.config_fingerprint = scenario_result.config_fingerprint
    result.metadata.events["scenario_runs"] = 1
    return result
