"""Figure 7: application bandwidth of asynchronous remote reads (mesh NOC).

All 64 cores issue asynchronous remote reads while the remote-end emulator
mirrors the outgoing request rate back as incoming requests.  The paper
reports NIedge and NIsplit saturating at ~214 GBps aggregate application
bandwidth (the NOC bisection being the limiter at ~594 GBps of total NOC
traffic), NIedge penalized at small transfers by QP-block ping-ponging, and
NIper-tile collapsing for bulk transfers because of source-tile unrolling.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.fig6 import select_designs
from repro.experiments.spec import Parameter, experiment
from repro.scenario.registry import NI_DESIGNS
from repro.workloads.microbench import RemoteReadBandwidthBenchmark

#: The transfer sizes on the Figure-7 x-axis.
FIG7_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192)


@experiment(
    name="fig7",
    title="Figure 7",
    description="Asynchronous remote-read application bandwidth vs. transfer size "
                "on the mesh NOC.",
    parameters=(
        Parameter("design", str, default=None,
                  choices=tuple(NI_DESIGNS.names(messaging=True)),
                  help="restrict the sweep to one messaging design (default: all three)"),
        Parameter("sizes", int, default=FIG7_SIZES, repeated=True,
                  help="transfer sizes in bytes (x-axis)"),
        Parameter("warmup_cycles", float, default=5_000.0,
                  help="cycles simulated before measurement starts"),
        Parameter("measure_cycles", float, default=15_000.0,
                  help="cycles in the measurement window"),
        Parameter("converge", bool, default=False,
                  help="measure window after window until the bandwidth converges "
                       "(the paper's §5 methodology) instead of one fixed window"),
        Parameter("max_windows", int, default=8,
                  help="window budget when converging; running out is flagged as a "
                       "measurement warning"),
        Parameter("tolerance", float, default=0.01,
                  help="relative window-to-window change below which the metric "
                       "counts as converged"),
    ),
    tags=("simulated", "bandwidth", "mesh"),
)
def run_fig7(
    config: Optional[SystemConfig] = None,
    design: Optional[str] = None,
    sizes: Sequence[int] = FIG7_SIZES,
    warmup_cycles: float = 5_000,
    measure_cycles: float = 15_000,
    converge: bool = False,
    max_windows: int = 8,
    tolerance: float = 0.01,
) -> ExperimentResult:
    """Regenerate the Figure-7 bandwidth sweep using the discrete-event simulator."""
    config = config if config is not None else SystemConfig.paper_defaults()
    designs = select_designs(design)
    # The NOC wire-traffic column follows NIsplit in the paper; when the sweep
    # is restricted to another design it reports that design's wire traffic.
    wire_design = NIDesign.SPLIT if NIDesign.SPLIT in designs else designs[0]
    result = ExperimentResult(
        name="Figure 7",
        description="Aggregate application bandwidth (GBps) for asynchronous remote reads "
                    "on the mesh NOC with rate-matched incoming traffic.",
        headers=["Transfer (B)"]
                + ["%s (GBps)" % d.label for d in designs]
                + ["NOC wire traffic, %s (GBps)" % wire_design.label],
    )
    bandwidth = {}
    wire = {}
    for d in designs:
        bench = RemoteReadBandwidthBenchmark(
            config.with_design(d),
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            converge=converge,
            max_windows=max_windows,
            tolerance=tolerance,
        )
        for size in sizes:
            run = bench.run(size)
            bandwidth[(d, size)] = run.application_gbps
            if d is wire_design:
                wire[size] = run.noc_wire_gbps
            if run.convergence_warning:
                result.metadata.warnings.append(
                    "%s, %d B: %s" % (d.label, size, run.convergence_warning)
                )
    for size in sizes:
        result.add_row(
            size,
            *[bandwidth[(d, size)] for d in designs],
            wire[size],
        )
    result.metadata.events["bandwidth_runs"] = len(sizes) * len(designs)
    result.add_note("paper: NIedge/NIsplit peak at 214 GBps; NIper-tile reaches only ~25% of "
                    "NIedge for 8 KB transfers; NOC traffic is ~2.7x the application bandwidth")
    return result
