"""Figure 7: application bandwidth of asynchronous remote reads (mesh NOC).

All 64 cores issue asynchronous remote reads while the remote-end emulator
mirrors the outgoing request rate back as incoming requests.  The paper
reports NIedge and NIsplit saturating at ~214 GBps aggregate application
bandwidth (the NOC bisection being the limiter at ~594 GBps of total NOC
traffic), NIedge penalized at small transfers by QP-block ping-ponging, and
NIper-tile collapsing for bulk transfers because of source-tile unrolling.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NIDesign, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import RemoteReadBandwidthBenchmark

#: The transfer sizes on the Figure-7 x-axis.
FIG7_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192)
_DESIGNS = (NIDesign.EDGE, NIDesign.SPLIT, NIDesign.PER_TILE)


def run_fig7(
    config: Optional[SystemConfig] = None,
    sizes: Sequence[int] = FIG7_SIZES,
    warmup_cycles: float = 5_000,
    measure_cycles: float = 15_000,
) -> ExperimentResult:
    """Regenerate the Figure-7 bandwidth sweep using the discrete-event simulator."""
    config = config if config is not None else SystemConfig.paper_defaults()
    result = ExperimentResult(
        name="Figure 7",
        description="Aggregate application bandwidth (GBps) for asynchronous remote reads "
                    "on the mesh NOC with rate-matched incoming traffic.",
        headers=["Transfer (B)", "NIedge (GBps)", "NIsplit (GBps)", "NIper-tile (GBps)",
                 "NOC wire traffic, NIsplit (GBps)"],
    )
    bandwidth = {}
    wire = {}
    for design in _DESIGNS:
        bench = RemoteReadBandwidthBenchmark(
            config.with_design(design),
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        for size in sizes:
            run = bench.run(size)
            bandwidth[(design, size)] = run.application_gbps
            if design is NIDesign.SPLIT:
                wire[size] = run.noc_wire_gbps
    for size in sizes:
        result.add_row(
            size,
            bandwidth[(NIDesign.EDGE, size)],
            bandwidth[(NIDesign.SPLIT, size)],
            bandwidth[(NIDesign.PER_TILE, size)],
            wire[size],
        )
    result.add_note("paper: NIedge/NIsplit peak at 214 GBps; NIper-tile reaches only ~25% of "
                    "NIedge for 8 KB transfers; NOC traffic is ~2.7x the application bandwidth")
    return result
