"""Seed derivation shared by every seeded fault-engine component.

Model target selection, schedule draws and cascade triggers each consume an
independent random stream; deriving every stream's seed from the one driver
seed through :func:`derive_seed` keeps them decorrelated while letting a
single ``seed`` parameter pin the whole faulted run.  Lint rule REP009
enforces that fault-model code never feeds ``random.Random`` anything else.
"""

from __future__ import annotations

import zlib


def derive_seed(seed: int, kind: str, name: str) -> int:
    """A decorrelated per-purpose seed (same recipe as per-tenant seeds)."""
    return seed * 1_000_003 + zlib.crc32(("%s:%s" % (kind, name)).encode("utf-8"))
