"""Resilience metrics: tails under failure, degraded throughput, recovery.

The chaos-sweep methodology compares a faulted run against its fault-free
twin (same spec, same seed, same arrival schedule):

* **tail amplification** — the faulted run's p99 over the fault-free p99 at
  the same offered load; the headline "how much worse is the tail when
  things break" number.
* **SLO-preserving degraded throughput** — the highest achieved throughput a
  faulted run sustains while still meeting the fault-free SLO; computed by
  the ``chaos_sweep`` experiment from per-point results.
* **recovery transient** — after each fault window recovers, how long until
  the rolling p99 is back within a tolerance of the fault-free baseline.

Recovery needs latency *as a function of time*, which is what
:class:`WindowedTails` records: completions are bucketed into fixed windows
of the simulation clock, one mergeable
:class:`~repro.sim.stats.LatencyHistogram` per window, so any sub-range of
the run (a fault window, the healthy complement, the post-recovery ramp) can
be merged into an exact tail on demand.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.stats import LatencyHistogram

#: Matches the per-intensity resilience digest ``chaos_sweep`` notes, e.g.
#: ``resilience: link_down intensity 0.50: degraded saturation 4.93
#: req/kcycle (offered 5.00); ...`` — or its ``SLO not met at any measured
#: load`` form.
_RESILIENCE_NOTE = re.compile(
    r"^resilience: \S+ intensity (?P<intensity>[0-9.]+): "
    r"(?:degraded saturation (?P<throughput>[0-9.]+) req/kcycle|SLO not met)"
)


class WindowedTails:
    """Per-time-window latency histograms over one run.

    ``record(now, latency)`` buckets a completion by the simulation time it
    completed at; buckets are sparse (only windows that saw completions
    exist) and hold full histograms, so both per-window percentiles and
    merged range percentiles are exact.
    """

    def __init__(self, window_cycles: float, name: str = "windowed-latency") -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = float(window_cycles)
        self.name = name
        self._buckets: Dict[int, LatencyHistogram] = {}

    def record(self, now: float, latency: float) -> None:
        index = int(now // self.window_cycles)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = LatencyHistogram(
                "%s[%d]" % (self.name, index)
            )
        bucket.record(latency)

    def __len__(self) -> int:
        return len(self._buckets)

    def merged_range(self, start: float, end: float) -> LatencyHistogram:
        """One histogram merging every window overlapping ``[start, end)``."""
        merged = LatencyHistogram("%s[%g:%g]" % (self.name, start, end))
        if end <= start:
            return merged
        first = int(start // self.window_cycles)
        last = int(end // self.window_cycles)
        if end == last * self.window_cycles:
            last -= 1  # end on a boundary: the window starting there is out
        for index in range(first, last + 1):
            bucket = self._buckets.get(index)
            if bucket is not None:
                merged.merge(bucket)
        return merged

    def window_percentiles(self, p: float = 99.0) -> List[Tuple[float, int, float]]:
        """Sorted ``(window_start, count, percentile)`` rows for every window."""
        return [
            (index * self.window_cycles, bucket.count, bucket.percentile(p))
            for index, bucket in sorted(self._buckets.items())
        ]


def degraded_saturation_points(notes: Sequence[str]) -> Dict[float, float]:
    """Per-intensity degraded saturation parsed from ``chaos_sweep`` notes.

    Maps each fault intensity to the SLO-preserving degraded throughput its
    resilience digest reports (0.0 when the note says the SLO was not met at
    any measured load).  Intensity 0.0 — the fault-free baseline digest —
    is not a resilience note and is therefore never included.
    """
    points: Dict[float, float] = {}
    for note in notes:
        match = _RESILIENCE_NOTE.match(note)
        if match is None:
            continue
        throughput = match.group("throughput")
        points[float(match.group("intensity"))] = \
            float(throughput) if throughput is not None else 0.0
    return points


def worst_degraded_saturation(notes: Sequence[str]) -> Optional[float]:
    """The lowest degraded saturation across every reported fault intensity.

    This is the conservative resilience number a design-space search should
    maximize: the throughput the design still sustains under its *worst*
    injected intensity while meeting the fault-free SLO.  Returns None when
    the notes carry no resilience digests at all.
    """
    points = degraded_saturation_points(notes)
    if not points:
        return None
    return min(points[intensity] for intensity in sorted(points))


def tail_amplification(faulted_p99: float, baseline_p99: float) -> float:
    """Faulted p99 over fault-free p99 (0.0 when the baseline is empty)."""
    if baseline_p99 <= 0.0:
        return 0.0
    return faulted_p99 / baseline_p99


def recovery_transient_cycles(
    window_p99: Sequence[Tuple[float, int, float]],
    fault_windows: Sequence[Tuple[float, float]],
    window_cycles: float,
    baseline_p99: float,
    tolerance: float = 1.5,
) -> Optional[float]:
    """Mean cycles from fault recovery until the rolling p99 is healthy again.

    For each fault window's recovery time, scans the per-window p99 rows
    (from :meth:`WindowedTails.window_percentiles`) for the first
    completion-bearing window at/after recovery whose p99 is within
    ``tolerance`` times the fault-free baseline; the transient is measured
    to that window's *end* (the earliest time the rolling tail is provably
    back).  Windows that never recover within the recorded range are
    excluded; returns None when nothing recovered (or nothing was recorded).
    """
    if baseline_p99 <= 0.0 or not window_p99 or not fault_windows:
        return None
    limit = tolerance * baseline_p99
    transients: List[float] = []
    for _on, off in fault_windows:
        for start, count, p99 in window_p99:
            if start + window_cycles <= off or count == 0:
                continue
            if p99 <= limit:
                transients.append(max(0.0, start + window_cycles - off))
                break
    if not transients:
        return None
    return sum(transients) / len(transients)
