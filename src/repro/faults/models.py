"""Built-in fault models (the ``FAULT_MODELS`` registry's populate module).

A fault model describes *what* degrades while a fault window is active; the
:class:`~repro.faults.schedule.FaultSchedule` decides *when* and the
:class:`~repro.faults.injector.FaultInjector` toggles the shared
:class:`~repro.faults.injector.FaultState` the hot paths consult.  Every
model is seeded: target selection (which routers, which cores) and per-packet
decisions are deterministic functions of ``(seed, intensity)``, so faulted
runs reproduce exactly across reruns and parallel campaign workers.

``intensity`` is the model's single universal knob in ``[0, 1]``: the
fraction of routers/cores affected, or the per-packet loss probability.  An
intensity of 0 selects no targets at all — useful as the in-band "fault-free"
point of a chaos sweep.

Fault semantics deliberately *defer* packets rather than destroy them: a
dropped in-flight packet would strand coherence and NI protocol callbacks
mid-transaction.  ``link_down`` blocks affected links until the window
recovers, ``packet_loss`` charges a retransmit penalty at delivery, and real
load shedding (``ni_stall``) happens at the open-loop arrival boundary,
where the driver accounts it as a fault-induced drop.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, FrozenSet, Hashable, List, Mapping, Sequence

from repro.errors import FaultError
from repro.faults.seeds import derive_seed
from repro.scenario.registry import register_fault_model

#: Knuth's multiplicative hash constant, used for deterministic per-packet
#: loss decisions (cheap, seed-mixed, uniform enough over packet ids).
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF

#: Shared blast-radius parameters of the targeted fault families.  With
#: ``blast_decay=0`` target selection is the legacy uniform sample (and the
#: draw sequence is bit-identical to it); a decay in ``(0, 1]`` weights each
#: candidate by ``decay ** hop_distance(epicenter, candidate)`` so faults
#: concentrate around a seeded (or pinned) epicenter — spatially-correlated
#: failures instead of independent ones.
_BLAST_PARAM_DEFAULTS: Mapping[str, object] = {
    "blast_decay": 0.0,
    "blast_epicenter": -1,
}


class FaultModel(abc.ABC):
    """One kind of degradation, bound to concrete targets per run.

    Subclasses override the hot-path hooks they perturb; every hook receives
    the live :class:`~repro.faults.injector.FaultState` (already checked to
    be *active*), so models can consult the current window's recovery time.
    """

    #: Canonical registry name, for results and error messages.
    name: str = ""
    #: Model-specific constructor parameters a caller may override, with
    #: their defaults (mirrors the workload/arrival-process protocol; the
    #: universal ``intensity`` and schedule knobs are split off upstream).
    param_defaults: Mapping[str, object] = {}

    def __init__(self, intensity: float, seed: int = 0) -> None:
        if not 0.0 <= intensity <= 1.0:
            raise FaultError("fault intensity must be in [0, 1], got %r" % (intensity,))
        self.intensity = float(intensity)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # Construction from validated parameters
    # ------------------------------------------------------------------
    @classmethod
    def from_params(cls, intensity: float, seed: int = 0, **params: object) -> "FaultModel":
        """Instantiate with validated parameters (unknown names fail loudly)."""
        cls.validate_params(params)
        return cls(intensity, seed=seed, **params)

    @classmethod
    def validate_params(cls, params: Mapping[str, object]) -> None:
        """Raise :class:`FaultError` for names not in ``param_defaults``."""
        unknown = sorted(set(params) - set(cls.param_defaults))
        if unknown:
            raise FaultError(
                "fault model %r does not accept parameter(s) %s (accepted: %s)"
                % (
                    cls.name or cls.__name__,
                    ", ".join(repr(name) for name in unknown),
                    ", ".join(sorted(cls.param_defaults)) or "none",
                )
            )

    # ------------------------------------------------------------------
    # Target binding
    # ------------------------------------------------------------------
    def bind(self, machine, core_ids: Sequence[int]) -> None:
        """Pick this run's concrete targets (deterministic in the seed)."""

    def _sample(self, population: Sequence, rng: random.Random) -> FrozenSet:
        """An intensity-sized seeded sample (at least one target when > 0)."""
        if self.intensity <= 0.0 or not population:
            return frozenset()
        count = max(1, round(self.intensity * len(population)))
        return frozenset(rng.sample(list(population), min(count, len(population))))

    def _sorted_routers(self, machine) -> List[Hashable]:
        """The topology's routers in a stable, representation-based order."""
        return sorted(machine.fabric.topology.nodes(), key=repr)

    def _blast_sample(
        self,
        population: Sequence,
        rng: random.Random,
        decay: float,
        epicenter: int,
        hop_distance: Callable[[object, object], int],
    ) -> FrozenSet:
        """A topology-distance-weighted sample around an epicenter.

        ``decay=0`` falls back to :meth:`_sample` (plain uniform targeting,
        no distance weighting — the independent-fault default).  Otherwise
        the epicenter is ``population[epicenter]`` when pinned, or a seeded
        uniform choice when ``epicenter`` is out of range, and targets are
        drawn without replacement with weight ``decay ** hops``.
        """
        if decay <= 0.0:
            return self._sample(population, rng)
        if self.intensity <= 0.0 or not population:
            return frozenset()
        candidates = list(population)
        count = min(max(1, round(self.intensity * len(candidates))), len(candidates))
        if 0 <= epicenter < len(candidates):
            origin = candidates[epicenter]
        else:
            origin = candidates[rng.randrange(len(candidates))]
        weights = [decay ** hop_distance(origin, node) for node in candidates]
        chosen: List = []
        while len(chosen) < count:
            total = sum(weights)
            if total <= 0.0:
                break
            point = rng.random() * total
            cumulative = 0.0
            index = len(candidates) - 1
            for position, weight in enumerate(weights):
                cumulative += weight
                if point < cumulative:
                    index = position
                    break
            chosen.append(candidates.pop(index))
            weights.pop(index)
        return frozenset(chosen)

    # ------------------------------------------------------------------
    # Hot-path hooks (state.active is already True when these run)
    # ------------------------------------------------------------------
    def hop_delay(self, state, link_key, arrival: float, hop_cycles: int) -> float:
        """Extra cycles before the packet may acquire this link."""
        return 0.0

    def loss_delay(self, state, packet_id: int) -> float:
        """Extra delivery cycles charged to a "lost" (retransmitted) packet."""
        return 0.0

    def issue_penalty(self, state, core_id: int) -> float:
        """Extra cycles a core spends issuing one operation."""
        return 0.0

    def core_rejects(self, state, core_id: int) -> bool:
        """Whether an open-loop arrival at this core is shed outright."""
        return False

    def directory_retry(self, state, addr: int, attempt: int) -> float:
        """Extra cycles before the directory retries acting on this block.

        A positive return makes the directory re-dispatch the transaction
        after that many cycles (bumping its ``attempt`` count); 0 lets it
        proceed.  Models must bound the retries they force — the directory
        re-asks on every attempt, so an unbounded model would livelock the
        transaction for the rest of the window.
        """
        return 0.0


def _validated_blast(decay: object, epicenter: object) -> "tuple[float, int]":
    decay = float(decay)  # type: ignore[arg-type]
    if not 0.0 <= decay <= 1.0:
        raise FaultError("blast_decay must be in [0, 1], got %r" % (decay,))
    return decay, int(epicenter)  # type: ignore[arg-type]


class _RouterTargetedFault(FaultModel):
    """Shared target selection: the outbound links of sampled routers."""

    def __init__(self, intensity: float, seed: int = 0,
                 blast_decay: float = 0.0, blast_epicenter: int = -1) -> None:
        super().__init__(intensity, seed=seed)
        self.blast_decay, self.blast_epicenter = _validated_blast(
            blast_decay, blast_epicenter
        )
        self.routers: FrozenSet[Hashable] = frozenset()

    def bind(self, machine, core_ids: Sequence[int]) -> None:
        rng = random.Random(derive_seed(self.seed, "bind", self.name))
        self.routers = self._blast_sample(
            self._sorted_routers(machine), rng,
            self.blast_decay, self.blast_epicenter,
            machine.fabric.topology.hop_count,
        )


class _CoreTargetedFault(FaultModel):
    """Shared target selection: a sampled subset of the driven cores."""

    def __init__(self, intensity: float, seed: int = 0,
                 blast_decay: float = 0.0, blast_epicenter: int = -1) -> None:
        super().__init__(intensity, seed=seed)
        self.blast_decay, self.blast_epicenter = _validated_blast(
            blast_decay, blast_epicenter
        )
        self.cores: FrozenSet[int] = frozenset()

    def bind(self, machine, core_ids: Sequence[int]) -> None:
        rng = random.Random(derive_seed(self.seed, "bind", self.name))
        cores = sorted(core_ids)
        self.cores = self._blast_sample(
            cores, rng,
            self.blast_decay, self.blast_epicenter,
            self._core_hop_distance(machine),
        )

    @staticmethod
    def _core_hop_distance(machine) -> Callable[[int, int], int]:
        """Core-to-core hop metric via the cores' home tiles (1:1 mapping)."""
        tile_nodes = machine.placement.tile_nodes
        hop_count = machine.fabric.topology.hop_count
        span = len(tile_nodes)

        def distance(a: int, b: int) -> int:
            return hop_count(tile_nodes[a % span], tile_nodes[b % span])

        return distance


@register_fault_model("link_down")
class LinkDownFault(_RouterTargetedFault):
    """Outbound links of affected routers are unusable until recovery.

    A packet reaching an affected link during a window is held and acquires
    the link only at the window's recovery time — the hard-outage model: the
    route still exists, but nothing moves over it while the fault is active.
    """

    name = "link_down"
    param_defaults: Mapping[str, object] = dict(_BLAST_PARAM_DEFAULTS)

    def hop_delay(self, state, link_key, arrival: float, hop_cycles: int) -> float:
        if link_key[0] not in self.routers:
            return 0.0
        remaining = state.window_until - arrival
        return remaining if remaining > 0.0 else 0.0


@register_fault_model("router_degrade")
class RouterDegradeFault(_RouterTargetedFault):
    """Affected routers forward at a per-hop latency multiplier.

    The soft-failure counterpart of ``link_down``: traffic still flows, but
    every hop out of an affected router costs ``multiplier`` times its
    healthy latency (the surplus is charged before link acquisition).
    """

    name = "router_degrade"
    param_defaults: Mapping[str, object] = {"multiplier": 4.0, **_BLAST_PARAM_DEFAULTS}

    def __init__(self, intensity: float, seed: int = 0, multiplier: float = 4.0,
                 **targeting: object) -> None:
        super().__init__(intensity, seed=seed, **targeting)  # type: ignore[arg-type]
        if multiplier < 1.0:
            raise FaultError("router_degrade multiplier must be >= 1")
        self.multiplier = float(multiplier)

    def hop_delay(self, state, link_key, arrival: float, hop_cycles: int) -> float:
        if link_key[0] not in self.routers:
            return 0.0
        return hop_cycles * (self.multiplier - 1.0)


@register_fault_model("ni_stall")
class NiStallFault(_CoreTargetedFault):
    """Affected cores' NIs shed open-loop arrivals while the fault is active.

    Models an NI frontend stalled in recovery: new work is rejected at the
    arrival boundary (the driver accounts these as *fault-induced* drops,
    separate from queue-overflow drops); in-flight operations complete.
    """

    name = "ni_stall"
    param_defaults: Mapping[str, object] = dict(_BLAST_PARAM_DEFAULTS)

    def core_rejects(self, state, core_id: int) -> bool:
        return core_id in self.cores


@register_fault_model("packet_loss")
class PacketLossFault(FaultModel):
    """A seeded fraction of in-window packets pay a retransmit penalty.

    Each packet delivered while a window is active is "lost" with probability
    ``intensity``, decided by a deterministic hash of the packet id, and
    redelivered ``retransmit_cycles`` later — corruption-and-retry semantics
    without stranding protocol callbacks the way a true drop would.
    """

    name = "packet_loss"
    param_defaults: Mapping[str, object] = {"retransmit_cycles": 200.0}

    def __init__(self, intensity: float, seed: int = 0,
                 retransmit_cycles: float = 200.0) -> None:
        super().__init__(intensity, seed=seed)
        if retransmit_cycles < 0:
            raise FaultError("packet_loss retransmit_cycles cannot be negative")
        self.retransmit_cycles = float(retransmit_cycles)
        self._threshold = int(self.intensity * (_HASH_MASK + 1))

    def loss_delay(self, state, packet_id: int) -> float:
        mixed = ((packet_id + self.seed) * _HASH_MULTIPLIER) & _HASH_MASK
        if mixed < self._threshold:
            return self.retransmit_cycles
        return 0.0


@register_fault_model("slow_node")
class SlowNodeFault(_CoreTargetedFault):
    """Affected cores issue operations with extra per-operation latency.

    The straggler model: a thermally-throttled or interference-laden node
    keeps serving, just slower — each issue on an affected core costs an
    extra ``penalty_cycles`` on top of the WQ-write instruction cost.
    """

    name = "slow_node"
    param_defaults: Mapping[str, object] = {"penalty_cycles": 50.0, **_BLAST_PARAM_DEFAULTS}

    def __init__(self, intensity: float, seed: int = 0,
                 penalty_cycles: float = 50.0, **targeting: object) -> None:
        super().__init__(intensity, seed=seed, **targeting)  # type: ignore[arg-type]
        if penalty_cycles < 0:
            raise FaultError("slow_node penalty_cycles cannot be negative")
        self.penalty_cycles = float(penalty_cycles)

    def issue_penalty(self, state, core_id: int) -> float:
        if core_id in self.cores:
            return self.penalty_cycles
        return 0.0


class _BlockHashFault(FaultModel):
    """Shared seeded per-block decision: the ``packet_loss`` hash over
    block addresses, so "which directory entries are bad" is a deterministic
    function of ``(seed, intensity)`` with no per-run state."""

    def __init__(self, intensity: float, seed: int = 0) -> None:
        super().__init__(intensity, seed=seed)
        self._threshold = int(self.intensity * (_HASH_MASK + 1))

    def _block_affected(self, addr: int) -> bool:
        mixed = ((addr + self.seed) * _HASH_MULTIPLIER) & _HASH_MASK
        return mixed < self._threshold


@register_fault_model("directory_corrupt")
class DirectoryCorruptFault(_BlockHashFault):
    """Seeded stale directory entries force retry round-trips at the home.

    A corrupted entry's owner pointer is stale: the directory's first
    ``max_retries`` dispatches for an affected block each bounce with a
    fixed ``retry_cycles`` re-lookup penalty before the transaction
    proceeds — the LLC-probe-miss-and-retry path of a soft directory error,
    without ever losing the transaction.
    """

    name = "directory_corrupt"
    param_defaults: Mapping[str, object] = {"retry_cycles": 40.0, "max_retries": 2}

    def __init__(self, intensity: float, seed: int = 0,
                 retry_cycles: float = 40.0, max_retries: int = 2) -> None:
        super().__init__(intensity, seed=seed)
        if retry_cycles < 0:
            raise FaultError("directory_corrupt retry_cycles cannot be negative")
        if int(max_retries) < 1:
            raise FaultError("directory_corrupt max_retries must be >= 1")
        self.retry_cycles = float(retry_cycles)
        self.max_retries = int(max_retries)

    def directory_retry(self, state, addr: int, attempt: int) -> float:
        if attempt >= self.max_retries or not self._block_affected(addr):
            return 0.0
        return self.retry_cycles


@register_fault_model("stale_owner_retry")
class StaleOwnerRetryFault(_BlockHashFault):
    """Bounded retry storms with exponential backoff at the directory.

    The livelock-adjacent cousin of ``directory_corrupt``: an affected
    block's requester keeps racing a stale owner and backs off
    ``backoff_cycles * 2**attempt`` per retry, up to ``max_retries``
    attempts — so the per-transaction damage grows geometrically but stays
    bounded, and the accounted backoff shows up in ``fault_profile``.
    """

    name = "stale_owner_retry"
    param_defaults: Mapping[str, object] = {"backoff_cycles": 20.0, "max_retries": 3}

    def __init__(self, intensity: float, seed: int = 0,
                 backoff_cycles: float = 20.0, max_retries: int = 3) -> None:
        super().__init__(intensity, seed=seed)
        if backoff_cycles < 0:
            raise FaultError("stale_owner_retry backoff_cycles cannot be negative")
        if int(max_retries) < 1:
            raise FaultError("stale_owner_retry max_retries must be >= 1")
        self.backoff_cycles = float(backoff_cycles)
        self.max_retries = int(max_retries)

    def directory_retry(self, state, addr: int, attempt: int) -> float:
        if attempt >= self.max_retries or not self._block_affected(addr):
            return 0.0
        return self.backoff_cycles * (2.0 ** attempt)
