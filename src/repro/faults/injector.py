"""Fault-state toggling on the simulation clock.

The :class:`FaultInjector` owns the glue between a
:class:`~repro.faults.models.FaultModel`, its
:class:`~repro.faults.schedule.FaultSchedule` and a built machine: it binds
the model's targets, attaches a shared :class:`FaultState` to the hot paths
(``machine.fabric.faults`` for the NOC, ``machine.fault_state`` for the core
issue path) and schedules one *cancellable* activation/deactivation event
per window through :meth:`~repro.sim.engine.Simulator.schedule_at`.

Keeping the toggles as ordinary queue-resident events is what makes fault
injection safe under the NOC's lookahead hop fusion with no extra mechanism:
``next_event_time()`` can never exceed the next pending toggle, so a fused
walk's strict ``arrival < head`` bound stops it at the fault boundary and
the walk falls back to per-hop events exactly like the queue-head tie case.
Toggle events are scheduled at install time (before any deferred hop can be
scheduled at the same timestamp), so at a shared boundary cycle the toggle's
lower sequence number makes it fire first — a hop held until recovery always
observes the recovered state.
"""

from __future__ import annotations

import difflib
import hashlib
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import FaultError
from repro.faults.cascade import (
    CASCADE_DEFAULTS,
    CASCADE_PARAM_KEYS,
    CascadeFaultState,
    FaultCascade,
)
from repro.faults.models import FaultModel
from repro.faults.schedule import FaultSchedule
from repro.faults.seeds import derive_seed
from repro.scenario.registry import FAULT_MODELS
from repro.sim import perf
from repro.sim.engine import Event

__all__ = [
    "DEFAULT_INTENSITY",
    "FaultInjector",
    "FaultState",
    "SCHEDULE_PARAM_KEYS",
    "build_fault_injector",
    "derive_seed",
    "validate_fault_params",
]

#: Default fraction of targets affected when ``fault_params`` omits it.
DEFAULT_INTENSITY = 0.25

#: ``fault_params`` keys consumed by the schedule rather than the model.
SCHEDULE_PARAM_KEYS = frozenset(FaultSchedule.param_defaults)


class FaultState:
    """The shared mutable record every fault-aware hot path consults.

    ``active`` flips on the injector's toggle events; the per-hook methods
    gate on it first so an installed-but-idle fault (or an empty schedule)
    costs one attribute check and leaves behaviour bit-identical to a run
    with no fault model at all.  ``hits`` counts hook invocations that
    actually perturbed something — the fault analogue of ``fused_hops``.
    """

    __slots__ = ("model", "active", "window_until", "windows", "hits", "_perf")

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self.active = False
        #: Recovery time of the window currently active (meaningless while
        #: inactive); lets models like ``link_down`` defer work to recovery.
        self.window_until = 0.0
        self.windows = 0
        self.hits = 0
        self._perf = perf.register_faults(self)

    # ------------------------------------------------------------------
    # Hot-path hooks (thin active-gated wrappers over the model's)
    # ------------------------------------------------------------------
    def hop_delay(self, link_key, arrival: float, hop_cycles: int) -> float:
        if not self.active:
            return 0.0
        extra = self.model.hop_delay(self, link_key, arrival, hop_cycles)
        if extra > 0.0:
            self.hits += 1
            self._perf.fault_hits += 1
        return extra

    def loss_delay(self, packet_id: int) -> float:
        if not self.active:
            return 0.0
        extra = self.model.loss_delay(self, packet_id)
        if extra > 0.0:
            self.hits += 1
            self._perf.fault_hits += 1
        return extra

    def issue_penalty(self, core_id: int) -> float:
        if not self.active:
            return 0.0
        extra = self.model.issue_penalty(self, core_id)
        if extra > 0.0:
            self.hits += 1
            self._perf.fault_hits += 1
        return extra

    def core_rejects(self, core_id: int) -> bool:
        if not self.active:
            return False
        if self.model.core_rejects(self, core_id):
            self.hits += 1
            self._perf.fault_hits += 1
            return True
        return False

    def directory_retry(self, addr: int, attempt: int) -> float:
        if not self.active:
            return 0.0
        extra = self.model.directory_retry(self, addr, attempt)
        if extra > 0.0:
            self.hits += 1
            self._perf.fault_hits += 1
        return extra


class FaultInjector:
    """Installs a fault model on a machine and toggles it per schedule."""

    def __init__(self, machine, model: FaultModel, schedule: FaultSchedule,
                 core_ids: Sequence[int] = (),
                 cascade: Optional[FaultCascade] = None,
                 cascade_model: Optional[FaultModel] = None) -> None:
        if (cascade is None) != (cascade_model is None):
            raise FaultError("a fault cascade needs both a trigger spec and a model")
        self.machine = machine
        self.model = model
        self.schedule = schedule
        self.core_ids = list(core_ids)
        self.cascade = cascade
        self.cascade_model = cascade_model
        self._primary = FaultState(model)
        if cascade_model is not None:
            self._secondary: Optional[FaultState] = FaultState(cascade_model)
            self.state: Union[FaultState, CascadeFaultState] = CascadeFaultState(
                self._primary, self._secondary
            )
        else:
            self._secondary = None
            self.state = self._primary
        #: The realized windows (set by :meth:`install`).
        self.windows: List[Tuple[float, float]] = []
        #: The realized cascade windows and trigger count (set by install).
        self.cascade_windows: List[Tuple[float, float]] = []
        self.triggered = 0
        self._events: List[Event] = []
        self._installed = False

    def fingerprint(self) -> str:
        """Content hash identifying the injected fault exactly.

        Combines the model identity (name, intensity, seed) with the
        schedule's window fingerprint — two injectors share a fingerprint
        iff they would perturb a run identically.  A configured cascade
        extends the payload with the secondary model's identity and the
        trigger parameters; together with the schedule fingerprint these
        pin the realized cascade windows, which are a pure function of
        them (so the extension keeps the iff property).
        """
        payload = "%s:%.9g:%d:%s" % (
            self.model.name, self.model.intensity, self.model.seed,
            self.schedule.schedule_fingerprint(),
        )
        if self.cascade is not None and self.cascade_model is not None:
            payload += "|cascade:%s:%.9g:%d:%.9g:%.9g:%.9g:%d" % (
                self.cascade_model.name, self.cascade_model.intensity,
                self.cascade_model.seed, self.cascade.probability,
                self.cascade.delay_cycles, self.cascade.mttr_cycles,
                self.cascade.seed,
            )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self, horizon: Optional[float] = None) -> None:
        """Bind targets, attach the state, schedule every window's toggles.

        ``horizon`` bounds drawn schedules to windows activating before it
        (normally the run's warm-up + measurement length).  Windows whose
        activation already passed are clamped to *now*; fully-elapsed
        windows are skipped.
        """
        if self._installed:
            raise FaultError("fault injector is already installed")
        self._installed = True
        machine = self.machine
        sim = machine.sim
        self.model.bind(machine, self.core_ids)
        if self.cascade_model is not None:
            self.cascade_model.bind(machine, self.core_ids)
        fabric = getattr(machine, "fabric", None)
        if fabric is not None:
            fabric.faults = self.state
        machine.fault_state = self.state
        coherence = getattr(machine, "coherence", None)
        if coherence is not None:
            coherence.faults = self.state
        self.windows = self.schedule.windows(horizon)
        now = sim.now
        self._schedule_toggles(sim, self._primary, self.windows, now)
        if self.cascade is not None and self._secondary is not None:
            realized = self.cascade.windows(self.windows)
            self.triggered = len(realized)
            if horizon is not None:
                realized = [(on, off) for on, off in realized if on < horizon]
            self.cascade_windows = realized
            self._schedule_toggles(sim, self._secondary, realized, now)

    def _schedule_toggles(self, sim, state: FaultState,
                          windows: Sequence[Tuple[float, float]], now: float) -> None:
        for on, off in windows:
            if off <= now:
                continue
            self._events.append(sim.schedule_at(max(on, now), self._activate, state, off))
            self._events.append(sim.schedule_at(max(off, now), self._deactivate, state))

    def _activate(self, state: FaultState, until: float) -> None:
        state.active = True
        state.window_until = until
        state.windows += 1
        state._perf.fault_windows += 1

    def _deactivate(self, state: FaultState) -> None:
        state.active = False

    def cancel(self) -> None:
        """Cancel every pending toggle and detach the state from the machine."""
        sim = self.machine.sim
        for event in self._events:
            sim.cancel(event)
        self._events = []
        self._primary.active = False
        if self._secondary is not None:
            self._secondary.active = False
        fabric = getattr(self.machine, "fabric", None)
        if fabric is not None and getattr(fabric, "faults", None) is self.state:
            fabric.faults = None
        if getattr(self.machine, "fault_state", None) is self.state:
            self.machine.fault_state = None
        coherence = getattr(self.machine, "coherence", None)
        if coherence is not None and getattr(coherence, "faults", None) is self.state:
            coherence.faults = None


def validate_fault_params(faults: str, fault_params: Mapping[str, object]) -> str:
    """Fail fast on unknown ``fault_params`` keys, with spelling suggestions.

    Checks the flat parameter dict against every namespace
    :func:`build_fault_injector` splits it into — the universal knobs, the
    schedule's, the cascade's and the resolved model's — so a typo like
    ``penalty_cycle`` surfaces at spec-resolution time (with a difflib
    "did you mean" hint) instead of mid-simulation.  Returns the resolved
    canonical model name.
    """
    name = FAULT_MODELS.resolve(faults)
    model_cls = FAULT_MODELS.get(name)
    known = (
        {"intensity", "tail_window_cycles"}
        | SCHEDULE_PARAM_KEYS | CASCADE_PARAM_KEYS
        | set(model_cls.param_defaults)
    )
    unknown = sorted(set(str(key) for key in fault_params) - known)
    if unknown:
        hints = []
        for key in unknown:
            close = difflib.get_close_matches(key, sorted(known), n=1)
            if close:
                hints.append("%r (did you mean %r?)" % (key, close[0]))
            else:
                hints.append(repr(key))
        raise FaultError(
            "unknown fault parameter(s) %s for model %r; accepted: %s"
            % (", ".join(hints), name, ", ".join(sorted(known)))
        )
    cascade_name = fault_params.get("cascade")
    if cascade_name:
        secondary = FAULT_MODELS.resolve(str(cascade_name))
        FAULT_MODELS.get(secondary)
    return name


def build_fault_injector(machine, faults: str, fault_params: Mapping[str, object],
                         seed: int = 1, core_ids: Sequence[int] = ()) -> FaultInjector:
    """Assemble an injector from a registry name and a flat parameter dict.

    ``fault_params`` mixes four namespaces the way scenario specs carry
    them: the universal ``intensity``, the schedule knobs
    (:attr:`FaultSchedule.param_defaults`), the cascade knobs
    (:data:`~repro.faults.cascade.CASCADE_PARAM_KEYS`) and the model's own
    parameters.  Model, schedule and cascade seeds are derived from
    ``seed`` so one driver seed pins the whole faulted run.
    """
    name = FAULT_MODELS.resolve(faults)
    model_cls = FAULT_MODELS.get(name)
    params = dict(fault_params)
    intensity = params.pop("intensity", DEFAULT_INTENSITY)
    try:
        intensity = float(intensity)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise FaultError("fault intensity must be a number, got %r" % (intensity,)) from None
    schedule_params = {key: params.pop(key) for key in list(params)
                       if key in SCHEDULE_PARAM_KEYS}
    cascade_params = {key: params.pop(key) for key in list(params)
                      if key in CASCADE_PARAM_KEYS}
    schedule = FaultSchedule.from_params(
        seed=derive_seed(seed, "schedule", name), **schedule_params
    )
    model = model_cls.from_params(
        intensity, seed=derive_seed(seed, "model", name), **params
    )
    cascade: Optional[FaultCascade] = None
    cascade_model: Optional[FaultModel] = None
    cascade_name = cascade_params.pop("cascade", None)
    if cascade_name:
        secondary = FAULT_MODELS.resolve(str(cascade_name))
        secondary_cls = FAULT_MODELS.get(secondary)
        cascade_intensity = cascade_params.pop("cascade_intensity", DEFAULT_INTENSITY)
        try:
            cascade_intensity = float(cascade_intensity)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise FaultError(
                "cascade intensity must be a number, got %r" % (cascade_intensity,)
            ) from None
        cascade = FaultCascade(
            probability=float(cascade_params.pop(  # type: ignore[arg-type]
                "cascade_probability", CASCADE_DEFAULTS["cascade_probability"])),
            delay_cycles=float(cascade_params.pop(  # type: ignore[arg-type]
                "cascade_delay_cycles", CASCADE_DEFAULTS["cascade_delay_cycles"])),
            mttr_cycles=float(cascade_params.pop(  # type: ignore[arg-type]
                "cascade_mttr_cycles", CASCADE_DEFAULTS["cascade_mttr_cycles"])),
            seed=derive_seed(seed, "cascade", secondary),
        )
        cascade_model = secondary_cls.from_params(
            cascade_intensity, seed=derive_seed(seed, "cascade-model", secondary)
        )
    elif cascade_params:
        raise FaultError(
            "cascade parameter(s) %s given without a 'cascade' model name"
            % ", ".join(sorted(repr(key) for key in cascade_params))
        )
    return FaultInjector(machine, model, schedule, core_ids=core_ids,
                         cascade=cascade, cascade_model=cascade_model)
