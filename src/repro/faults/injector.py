"""Fault-state toggling on the simulation clock.

The :class:`FaultInjector` owns the glue between a
:class:`~repro.faults.models.FaultModel`, its
:class:`~repro.faults.schedule.FaultSchedule` and a built machine: it binds
the model's targets, attaches a shared :class:`FaultState` to the hot paths
(``machine.fabric.faults`` for the NOC, ``machine.fault_state`` for the core
issue path) and schedules one *cancellable* activation/deactivation event
per window through :meth:`~repro.sim.engine.Simulator.schedule_at`.

Keeping the toggles as ordinary queue-resident events is what makes fault
injection safe under the NOC's lookahead hop fusion with no extra mechanism:
``next_event_time()`` can never exceed the next pending toggle, so a fused
walk's strict ``arrival < head`` bound stops it at the fault boundary and
the walk falls back to per-hop events exactly like the queue-head tie case.
Toggle events are scheduled at install time (before any deferred hop can be
scheduled at the same timestamp), so at a shared boundary cycle the toggle's
lower sequence number makes it fire first — a hop held until recovery always
observes the recovered state.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.faults.models import FaultModel
from repro.faults.schedule import FaultSchedule
from repro.scenario.registry import FAULT_MODELS
from repro.sim import perf
from repro.sim.engine import Event

#: Default fraction of targets affected when ``fault_params`` omits it.
DEFAULT_INTENSITY = 0.25

#: ``fault_params`` keys consumed by the schedule rather than the model.
SCHEDULE_PARAM_KEYS = frozenset(FaultSchedule.param_defaults)


class FaultState:
    """The shared mutable record every fault-aware hot path consults.

    ``active`` flips on the injector's toggle events; the per-hook methods
    gate on it first so an installed-but-idle fault (or an empty schedule)
    costs one attribute check and leaves behaviour bit-identical to a run
    with no fault model at all.  ``hits`` counts hook invocations that
    actually perturbed something — the fault analogue of ``fused_hops``.
    """

    __slots__ = ("model", "active", "window_until", "windows", "hits", "_perf")

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self.active = False
        #: Recovery time of the window currently active (meaningless while
        #: inactive); lets models like ``link_down`` defer work to recovery.
        self.window_until = 0.0
        self.windows = 0
        self.hits = 0
        self._perf = perf.register_faults(self)

    # ------------------------------------------------------------------
    # Hot-path hooks (thin active-gated wrappers over the model's)
    # ------------------------------------------------------------------
    def hop_delay(self, link_key, arrival: float, hop_cycles: int) -> float:
        if not self.active:
            return 0.0
        extra = self.model.hop_delay(self, link_key, arrival, hop_cycles)
        if extra > 0.0:
            self.hits += 1
            self._perf.fault_hits += 1
        return extra

    def loss_delay(self, packet_id: int) -> float:
        if not self.active:
            return 0.0
        extra = self.model.loss_delay(self, packet_id)
        if extra > 0.0:
            self.hits += 1
            self._perf.fault_hits += 1
        return extra

    def issue_penalty(self, core_id: int) -> float:
        if not self.active:
            return 0.0
        extra = self.model.issue_penalty(self, core_id)
        if extra > 0.0:
            self.hits += 1
            self._perf.fault_hits += 1
        return extra

    def core_rejects(self, core_id: int) -> bool:
        if not self.active:
            return False
        if self.model.core_rejects(self, core_id):
            self.hits += 1
            self._perf.fault_hits += 1
            return True
        return False


class FaultInjector:
    """Installs a fault model on a machine and toggles it per schedule."""

    def __init__(self, machine, model: FaultModel, schedule: FaultSchedule,
                 core_ids: Sequence[int] = ()) -> None:
        self.machine = machine
        self.model = model
        self.schedule = schedule
        self.core_ids = list(core_ids)
        self.state = FaultState(model)
        #: The realized windows (set by :meth:`install`).
        self.windows: List[Tuple[float, float]] = []
        self._events: List[Event] = []
        self._installed = False

    def fingerprint(self) -> str:
        """Content hash identifying the injected fault exactly.

        Combines the model identity (name, intensity, seed) with the
        schedule's window fingerprint — two injectors share a fingerprint
        iff they would perturb a run identically.
        """
        payload = "%s:%.9g:%d:%s" % (
            self.model.name, self.model.intensity, self.model.seed,
            self.schedule.schedule_fingerprint(),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self, horizon: Optional[float] = None) -> None:
        """Bind targets, attach the state, schedule every window's toggles.

        ``horizon`` bounds drawn schedules to windows activating before it
        (normally the run's warm-up + measurement length).  Windows whose
        activation already passed are clamped to *now*; fully-elapsed
        windows are skipped.
        """
        if self._installed:
            raise FaultError("fault injector is already installed")
        self._installed = True
        machine = self.machine
        sim = machine.sim
        self.model.bind(machine, self.core_ids)
        fabric = getattr(machine, "fabric", None)
        if fabric is not None:
            fabric.faults = self.state
        machine.fault_state = self.state
        self.windows = self.schedule.windows(horizon)
        now = sim.now
        for on, off in self.windows:
            if off <= now:
                continue
            self._events.append(sim.schedule_at(max(on, now), self._activate, off))
            self._events.append(sim.schedule_at(max(off, now), self._deactivate))

    def _activate(self, until: float) -> None:
        self.state.active = True
        self.state.window_until = until
        self.state.windows += 1
        self.state._perf.fault_windows += 1

    def _deactivate(self) -> None:
        self.state.active = False

    def cancel(self) -> None:
        """Cancel every pending toggle and detach the state from the machine."""
        sim = self.machine.sim
        for event in self._events:
            sim.cancel(event)
        self._events = []
        self.state.active = False
        fabric = getattr(self.machine, "fabric", None)
        if fabric is not None and getattr(fabric, "faults", None) is self.state:
            fabric.faults = None
        if getattr(self.machine, "fault_state", None) is self.state:
            self.machine.fault_state = None


def derive_seed(seed: int, kind: str, name: str) -> int:
    """A decorrelated per-purpose seed (same recipe as per-tenant seeds)."""
    return seed * 1_000_003 + zlib.crc32(("%s:%s" % (kind, name)).encode("utf-8"))


def build_fault_injector(machine, faults: str, fault_params: Mapping[str, object],
                         seed: int = 1, core_ids: Sequence[int] = ()) -> FaultInjector:
    """Assemble an injector from a registry name and a flat parameter dict.

    ``fault_params`` mixes three namespaces the way scenario specs carry
    them: the universal ``intensity``, the schedule knobs
    (:attr:`FaultSchedule.param_defaults`) and the model's own parameters.
    Model and schedule seeds are derived from ``seed`` so one driver seed
    pins the whole faulted run.
    """
    name = FAULT_MODELS.resolve(faults)
    model_cls = FAULT_MODELS.get(name)
    params = dict(fault_params)
    intensity = params.pop("intensity", DEFAULT_INTENSITY)
    try:
        intensity = float(intensity)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise FaultError("fault intensity must be a number, got %r" % (intensity,)) from None
    schedule_params = {key: params.pop(key) for key in list(params)
                       if key in SCHEDULE_PARAM_KEYS}
    schedule = FaultSchedule.from_params(
        seed=derive_seed(seed, "schedule", name), **schedule_params
    )
    model = model_cls.from_params(
        intensity, seed=derive_seed(seed, "model", name), **params
    )
    return FaultInjector(machine, model, schedule, core_ids=core_ids)
