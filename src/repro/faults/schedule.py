"""Seeded activation/recovery window schedules for fault injection.

A :class:`FaultSchedule` decides *when* a fault is active on the simulation
clock: a sequence of ``(on, off)`` windows, either drawn from seeded
exponential MTBF/MTTR distributions or given explicitly.  Schedules follow
the same reproducibility contract as the load subsystem's arrival processes
(:meth:`repro.load.arrivals.ArrivalProcess.schedule_fingerprint`): the same
``(params, seed)`` pair always yields the same windows, on any worker
process, and :meth:`schedule_fingerprint` content-hashes the boundary times
so determinism tests can compare schedules across runs and across
``--parallel`` campaign workers.

``max_windows=0`` is the *empty* schedule: a fault model installed with it
never activates, which must leave every simulated output byte-identical to a
run with no fault model at all (the no-fault equivalence suite checks this).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FaultError


class FaultSchedule:
    """Seeded, fingerprinted activation windows on the simulation clock.

    Windows are generated lazily: a gap drawn from an exponential with mean
    ``mtbf_cycles`` (time between failures) opens each window, and the window
    stays open for an exponential duration with mean ``mttr_cycles`` (time to
    repair).  ``windows`` (explicit ``[on, off]`` pairs) overrides the drawn
    schedule entirely; ``max_windows`` caps the number of windows (``0``
    means never activate, ``-1`` means unbounded).
    """

    #: Universal schedule parameters, split off a scenario's ``fault_params``
    #: by :func:`repro.faults.injector.build_fault_injector`.
    param_defaults: Mapping[str, object] = {
        "mtbf_cycles": 6000.0,
        "mttr_cycles": 1500.0,
        "start_cycles": 0.0,
        "max_windows": -1,
        "windows": (),
    }

    def __init__(
        self,
        mtbf_cycles: float = 6000.0,
        mttr_cycles: float = 1500.0,
        start_cycles: float = 0.0,
        max_windows: int = -1,
        windows: Sequence[Sequence[float]] = (),
        seed: int = 0,
    ) -> None:
        if mtbf_cycles <= 0 or mttr_cycles <= 0:
            raise FaultError("MTBF and MTTR must be positive cycle counts")
        if start_cycles < 0:
            raise FaultError("the fault schedule cannot start in the past")
        self.mtbf_cycles = float(mtbf_cycles)
        self.mttr_cycles = float(mttr_cycles)
        self.start_cycles = float(start_cycles)
        self.max_windows = int(max_windows)
        self.seed = int(seed)
        self.explicit_windows: Tuple[Tuple[float, float], ...] = tuple(
            self._validated_explicit(windows)
        )

    @staticmethod
    def _validated_explicit(windows: Sequence[Sequence[float]]) -> List[Tuple[float, float]]:
        validated: List[Tuple[float, float]] = []
        previous_off = 0.0
        for window in windows:
            try:
                on, off = (float(window[0]), float(window[1]))
            except (TypeError, ValueError, IndexError):
                raise FaultError(
                    "explicit fault windows must be [on, off] cycle pairs, got %r"
                    % (window,)
                ) from None
            if on < previous_off or off < on:
                raise FaultError(
                    "explicit fault windows must be ordered and non-overlapping "
                    "(window [%g, %g] after %g)" % (on, off, previous_off)
                )
            validated.append((on, off))
            previous_off = off
        return validated

    @classmethod
    def from_params(cls, seed: int = 0, **params: object) -> "FaultSchedule":
        """Instantiate with validated parameters (unknown names fail loudly)."""
        unknown = sorted(set(params) - set(cls.param_defaults))
        if unknown:
            raise FaultError(
                "fault schedule does not accept parameter(s) %s (accepted: %s)"
                % (", ".join(repr(name) for name in unknown),
                   ", ".join(sorted(cls.param_defaults)))
            )
        return cls(seed=seed, **params)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # The windows
    # ------------------------------------------------------------------
    def _iter_windows(self) -> Iterator[Tuple[float, float]]:
        """Every window in order, restarting from the seed on each call."""
        if self.max_windows == 0:
            return
        emitted = 0
        if self.explicit_windows:
            for window in self.explicit_windows:
                yield window
                emitted += 1
                if 0 <= self.max_windows <= emitted:
                    return
            return
        rng = random.Random(self.seed)
        now = self.start_cycles
        while True:
            now += rng.expovariate(1.0 / self.mtbf_cycles)
            on = now
            now += rng.expovariate(1.0 / self.mttr_cycles)
            yield (on, now)
            emitted += 1
            if 0 <= self.max_windows <= emitted:
                return

    def windows(self, horizon: Optional[float] = None) -> List[Tuple[float, float]]:
        """Windows whose activation falls before ``horizon`` (all when None).

        A window straddling the horizon is kept whole: the injector clamps
        nothing, the run simply ends while the fault is still active.
        ``horizon=None`` on an unbounded drawn schedule would never return,
        so it requires ``max_windows >= 0`` or explicit windows.
        """
        if horizon is None and not self.explicit_windows and self.max_windows < 0:
            raise FaultError("an unbounded fault schedule needs a horizon")
        collected: List[Tuple[float, float]] = []
        for on, off in self._iter_windows():
            if horizon is not None and on >= horizon:
                break
            collected.append((on, off))
        return collected

    def schedule_fingerprint(self, count: int = 64) -> str:
        """Content hash of the first ``count`` windows (fewer if finite).

        Two schedules share a fingerprint iff they would toggle identically;
        the determinism tests compare fingerprints across runs and across
        parallel campaign workers — the same contract as
        :meth:`repro.load.arrivals.ArrivalProcess.schedule_fingerprint`.
        """
        boundaries: List[float] = []
        for on, off in self._iter_windows():
            boundaries.extend((on, off))
            if len(boundaries) >= 2 * count:
                break
        payload = ",".join("%.9g" % t for t in boundaries)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]
