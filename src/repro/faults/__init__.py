"""Seeded fault injection and resilience analysis.

The fifth scenario axis: fault models are registered components
(:data:`repro.scenario.registry.FAULT_MODELS`), activated on a seeded,
fingerprinted window schedule by a :class:`FaultInjector`, with a metrics
layer quantifying tail amplification, degraded throughput and recovery
transients.  See the README's "Injecting faults" section for usage.
"""

from repro.faults.cascade import (
    CASCADE_PARAM_KEYS,
    CascadeFaultState,
    FaultCascade,
)
from repro.faults.injector import (
    DEFAULT_INTENSITY,
    FaultInjector,
    FaultState,
    SCHEDULE_PARAM_KEYS,
    build_fault_injector,
    derive_seed,
    validate_fault_params,
)
from repro.faults.metrics import (
    WindowedTails,
    recovery_transient_cycles,
    tail_amplification,
)
from repro.faults.models import FaultModel
from repro.faults.schedule import FaultSchedule

__all__ = [
    "CASCADE_PARAM_KEYS",
    "CascadeFaultState",
    "DEFAULT_INTENSITY",
    "FaultCascade",
    "FaultInjector",
    "FaultModel",
    "FaultSchedule",
    "FaultState",
    "SCHEDULE_PARAM_KEYS",
    "WindowedTails",
    "build_fault_injector",
    "derive_seed",
    "recovery_transient_cycles",
    "tail_amplification",
    "validate_fault_params",
]
