"""Correlated faults: a secondary model triggered by the primary's windows.

At rack scale faults are rarely independent — a failing router takes its
neighborhood with it, a shed node overloads its peers.  A
:class:`FaultCascade` models that correlation as a seeded trigger: each of
the primary schedule's realized windows fires the secondary model with
probability ``probability``, after a ``delay_cycles`` propagation delay, for
an exponential duration with mean ``mttr_cycles``.  The derived windows are
an ordinary non-overlapping window list, so the injector toggles them with
the same cancellable queue events as the primary schedule — cascades are
fusion-safe by the same argument (``next_event_time()`` never exceeds the
next pending toggle).

Reproducibility mirrors :class:`~repro.faults.schedule.FaultSchedule`: the
trigger stream restarts from the cascade seed on every realization, windows
are a pure function of ``(primary windows, params, seed)``, and
:meth:`FaultCascade.cascade_fingerprint` content-hashes the realized
boundaries for determinism tests.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, Tuple

from repro.errors import FaultError

#: ``fault_params`` keys consumed by the cascade layer rather than the
#: primary model or its schedule (split off by ``build_fault_injector``).
CASCADE_PARAM_KEYS = frozenset((
    "cascade",
    "cascade_intensity",
    "cascade_probability",
    "cascade_delay_cycles",
    "cascade_mttr_cycles",
))

#: Defaults for the cascade knobs when ``fault_params`` names a ``cascade``
#: model but omits them.
CASCADE_DEFAULTS = {
    "cascade_probability": 1.0,
    "cascade_delay_cycles": 250.0,
    "cascade_mttr_cycles": 750.0,
}


class FaultCascade:
    """Seeded trigger mapping primary fault windows to secondary windows."""

    def __init__(self, probability: float = 1.0, delay_cycles: float = 250.0,
                 mttr_cycles: float = 750.0, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise FaultError(
                "cascade trigger probability must be in [0, 1], got %r" % (probability,)
            )
        if delay_cycles < 0:
            raise FaultError("cascade propagation delay cannot be negative")
        if mttr_cycles <= 0:
            raise FaultError("cascade MTTR must be a positive cycle count")
        self.probability = float(probability)
        self.delay_cycles = float(delay_cycles)
        self.mttr_cycles = float(mttr_cycles)
        self.seed = int(seed)

    def windows(
        self, primary_windows: Sequence[Tuple[float, float]]
    ) -> List[Tuple[float, float]]:
        """The secondary windows triggered by the given primary windows.

        One seeded stream is consumed in primary-window order (a trigger
        draw, then a duration draw when it fires), so the realization is a
        pure function of the primary windows and the cascade's ``(params,
        seed)``.  Windows are clamped non-overlapping the same way the
        schedule validates explicit windows; a window squeezed to nothing by
        the clamp is dropped.
        """
        rng = random.Random(self.seed)
        realized: List[Tuple[float, float]] = []
        previous_off = 0.0
        for on, _off in primary_windows:
            if rng.random() >= self.probability:
                continue
            duration = rng.expovariate(1.0 / self.mttr_cycles)
            start = max(on + self.delay_cycles, previous_off)
            end = on + self.delay_cycles + duration
            if end <= start:
                continue
            realized.append((start, end))
            previous_off = end
        return realized

    def cascade_fingerprint(
        self, primary_windows: Sequence[Tuple[float, float]], count: int = 64
    ) -> str:
        """Content hash of the realized secondary boundaries.

        The cascade analogue of
        :meth:`~repro.faults.schedule.FaultSchedule.schedule_fingerprint`:
        two cascades share a fingerprint for the same primary windows iff
        they would toggle the secondary model identically.
        """
        boundaries: List[float] = []
        for on, off in self.windows(primary_windows):
            boundaries.extend((on, off))
            if len(boundaries) >= 2 * count:
                break
        payload = ",".join("%.9g" % t for t in boundaries)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


class CascadeFaultState:
    """Both member fault states behind the single hot-path interface.

    The fabric, core and directory hooks see one ``faults`` attachment
    point; this composite delegates to the primary and cascade
    :class:`~repro.faults.injector.FaultState` members (each gating on its
    own ``active`` flag and keeping its own hit accounting) and sums their
    perturbations.  The aggregate ``windows``/``hits`` properties keep the
    driver's result collection and the ``fault_windows`` probe working
    unchanged on cascading runs.
    """

    __slots__ = ("primary", "cascade")

    def __init__(self, primary, cascade) -> None:
        self.primary = primary
        self.cascade = cascade

    @property
    def model(self):
        return self.primary.model

    @property
    def active(self) -> bool:
        return self.primary.active or self.cascade.active

    @property
    def windows(self) -> int:
        return self.primary.windows + self.cascade.windows

    @property
    def hits(self) -> int:
        return self.primary.hits + self.cascade.hits

    def hop_delay(self, link_key, arrival: float, hop_cycles: int) -> float:
        return (self.primary.hop_delay(link_key, arrival, hop_cycles)
                + self.cascade.hop_delay(link_key, arrival, hop_cycles))

    def loss_delay(self, packet_id: int) -> float:
        return (self.primary.loss_delay(packet_id)
                + self.cascade.loss_delay(packet_id))

    def issue_penalty(self, core_id: int) -> float:
        return (self.primary.issue_penalty(core_id)
                + self.cascade.issue_penalty(core_id))

    def core_rejects(self, core_id: int) -> bool:
        # Both members must be consulted (no short-circuit) so each keeps
        # its own hit accounting regardless of the other's verdict.
        primary = self.primary.core_rejects(core_id)
        cascade = self.cascade.core_rejects(core_id)
        return primary or cascade

    def directory_retry(self, addr: int, attempt: int) -> float:
        return (self.primary.directory_retry(addr, attempt)
                + self.cascade.directory_retry(addr, attempt))
