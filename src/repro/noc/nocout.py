"""NOC-Out topology (§6.3, [Lotfi-Kamran et al., MICRO'12]).

In NOC-Out, the LLC tiles form a row in the middle of the chip and are richly
interconnected by a flattened butterfly; the cores of each column are chained
by simple reduction/dispersion trees that connect them to their column's LLC
tile.  The memory controllers and the chip-to-chip network router also hang
off the flattened butterfly.

Node identifiers
----------------
``("llc", i)``          LLC tile ``i`` (0..columns-1) on the central row.
``("core", col, k)``    core ``k`` (0..cores_per_column-1) of column ``col``;
                        cores 0..3 chain on one side of the LLC row and
                        4..7 on the other, so the distance to the LLC tile is
                        ``(k mod 4) + 1`` tree hops.
``("mc", j)``           memory controller ``j`` attached to LLC tile ``j``.
``("netrouter", 0)``    the chip-to-chip network router.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.config import MessageClass, NocConfig
from repro.errors import TopologyError
from repro.noc.topology import Link, Topology

NOCOUT_LLC = "llc"
NOCOUT_CORE = "core"
NOCOUT_MC = "mc"
NOCOUT_EDGE = "netrouter"


class NocOutTopology(Topology):
    """Flattened-butterfly LLC row plus per-column core trees."""

    def __init__(
        self,
        columns: int = 8,
        cores_per_column: int = 8,
        noc_config: NocConfig = NocConfig(),
    ) -> None:
        if columns <= 0 or cores_per_column <= 0:
            raise TopologyError("NOC-Out requires positive column/core counts")
        self.columns = columns
        self.cores_per_column = cores_per_column
        self.config = noc_config
        self.tree_hop_cycles = noc_config.noc_out_tree_hop_cycles
        self.butterfly_tiles_per_cycle = noc_config.noc_out_tiles_per_cycle
        self._nodes = self._build_nodes()
        self._node_set = set(self._nodes)

    def _build_nodes(self) -> List[Hashable]:
        nodes: List[Hashable] = [(NOCOUT_LLC, i) for i in range(self.columns)]
        nodes.extend(
            (NOCOUT_CORE, col, k)
            for col in range(self.columns)
            for k in range(self.cores_per_column)
        )
        nodes.extend((NOCOUT_MC, j) for j in range(self.columns))
        nodes.append((NOCOUT_EDGE, 0))
        return nodes

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------
    def nodes(self) -> Iterable[Hashable]:
        return list(self._nodes)

    def route(
        self,
        src: Hashable,
        dst: Hashable,
        msg_class: MessageClass,
        packet_id: int = 0,
    ) -> Sequence[Link]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        links: List[Link] = []
        # Descend from a core to its column's LLC tile.
        position = src
        if position[0] == NOCOUT_CORE:
            links.extend(self._tree_links(position, down=True))
            position = (NOCOUT_LLC, position[1])
        elif position[0] in (NOCOUT_MC, NOCOUT_EDGE):
            anchor = self._anchor_llc(position)
            links.append(Link(position, anchor, self.tree_hop_cycles))
            position = anchor
        # Determine the LLC tile nearest the destination.
        target_anchor = self._anchor_llc(dst)
        if position != target_anchor and position == dst:
            return links
        if position != target_anchor:
            links.append(self._butterfly_link(position, target_anchor))
            position = target_anchor
        if dst == position:
            return links
        # Ascend to the destination endpoint.
        if dst[0] == NOCOUT_CORE:
            links.extend(self._tree_links(dst, down=False))
        elif dst[0] in (NOCOUT_MC, NOCOUT_EDGE):
            links.append(Link(position, dst, self.tree_hop_cycles))
        return links

    def route_cache_key(
        self,
        src: Hashable,
        dst: Hashable,
        msg_class: MessageClass,
        packet_id: int = 0,
    ) -> Optional[Hashable]:
        """NOC-Out routes depend only on the endpoints (no class routing)."""
        return (src, dst)

    def hop_count(self, src: Hashable, dst: Hashable) -> int:
        return len(self.route_cached(src, dst, MessageClass.MEMORY_REQUEST))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def core_node(self, tile_id: int) -> Tuple[str, int, int]:
        """Map a flat core tile id (0..columns*cores_per_column-1) to a node."""
        total = self.columns * self.cores_per_column
        if not 0 <= tile_id < total:
            raise TopologyError("core id %d outside NOC-Out with %d cores" % (tile_id, total))
        return (NOCOUT_CORE, tile_id % self.columns, tile_id // self.columns)

    def llc_node(self, bank: int) -> Tuple[str, int]:
        if not 0 <= bank < self.columns:
            raise TopologyError("LLC bank %d outside NOC-Out" % bank)
        return (NOCOUT_LLC, bank)

    def mc_node(self, index: int) -> Tuple[str, int]:
        if not 0 <= index < self.columns:
            raise TopologyError("MC %d outside NOC-Out" % index)
        return (NOCOUT_MC, index)

    def edge_node(self) -> Tuple[str, int]:
        return (NOCOUT_EDGE, 0)

    def tree_depth(self, core_node: Hashable) -> int:
        """Tree hops between a core and its column's LLC tile."""
        if core_node[0] != NOCOUT_CORE:
            raise TopologyError("%r is not a core node" % (core_node,))
        _, _, k = core_node
        return (k % (self.cores_per_column // 2 or 1)) + 1

    def _anchor_llc(self, node: Hashable) -> Tuple[str, int]:
        """The LLC tile through which ``node`` attaches to the butterfly."""
        kind = node[0]
        if kind == NOCOUT_LLC:
            return node
        if kind == NOCOUT_CORE:
            return (NOCOUT_LLC, node[1])
        if kind == NOCOUT_MC:
            return (NOCOUT_LLC, node[1])
        if kind == NOCOUT_EDGE:
            return (NOCOUT_LLC, 0)
        raise TopologyError("unknown NOC-Out node kind %r" % (node,))

    def _butterfly_link(self, src: Hashable, dst: Hashable) -> Link:
        """Single-hop flattened-butterfly link; latency scales with distance."""
        distance = abs(src[1] - dst[1])
        cycles = max(1, math.ceil(distance / self.butterfly_tiles_per_cycle))
        return Link(src, dst, cycles)

    def _tree_links(self, core_node: Hashable, down: bool) -> List[Link]:
        """Links along the column tree between a core and its LLC tile."""
        _, col, k = core_node
        half = self.cores_per_column // 2 or 1
        depth = (k % half) + 1
        side_offset = (k // half) * half
        chain: List[Hashable] = [(NOCOUT_LLC, col)]
        chain.extend((NOCOUT_CORE, col, side_offset + d) for d in range(depth))
        # ``chain`` goes LLC -> shallowest core -> ... -> target core.
        if down:
            ordered = list(reversed(chain))
        else:
            ordered = chain
        links = []
        for a, b in zip(ordered, ordered[1:]):
            links.append(Link(a, b, self.tree_hop_cycles))
        return links

    def _check(self, node: Hashable) -> None:
        if node not in self._node_set:
            raise TopologyError("node %r is not part of this NOC-Out topology" % (node,))
