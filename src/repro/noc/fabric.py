"""Packet-granularity NOC contention model.

Every directed link of the topology is backed by a FIFO
:class:`~repro.sim.resource.Channel`; a packet occupies each link it crosses
for its flit count (one flit per cycle on the 16-byte links of Table 2).  The
head of the packet advances one hop per ``hop_cycles`` after it is granted a
link, and the tail arrives ``flits - 1`` cycles after the head at the final
hop, so the zero-load latency is ``hops * hop_cycles + (flits - 1)`` and
contended links introduce queuing exactly where the paper observes it (the MC
and NI edge columns, the mesh bisection, the per-tile unroll paths).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.config import MessageClass, NocConfig
from repro.noc.packet import Packet
from repro.noc.topology import Link, Topology
from repro.sim.engine import Simulator
from repro.sim.resource import Channel

DeliveryCallback = Callable[[Packet], None]


class NocFabric:
    """Routes packets over a :class:`Topology` with per-link contention."""

    #: Cycles charged for a message whose source and destination agents share
    #: a router (e.g. a core talking to its own tile's LLC slice).
    LOCAL_DELIVERY_CYCLES = 1

    def __init__(self, sim: Simulator, topology: Topology, noc_config: NocConfig) -> None:
        self.sim = sim
        self.topology = topology
        self.config = noc_config
        self.link_bytes = noc_config.link_bytes
        self._channels: Dict[Tuple[Hashable, Hashable], Channel] = {}
        # Statistics
        self.packets_sent = 0
        self.packets_delivered = 0
        self.payload_bytes_delivered = 0
        self.wire_bytes_sent = 0
        self.bytes_by_class: Dict[MessageClass, int] = {cls: 0 for cls in MessageClass}
        self._bisection_keys = self._compute_bisection_keys()
        self.bisection_bytes = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send(
        self,
        src: Hashable,
        dst: Hashable,
        payload_bytes: int,
        msg_class: MessageClass,
        callback: Optional[DeliveryCallback] = None,
        payload: Any = None,
    ) -> Packet:
        """Inject a packet; ``callback(packet)`` fires at delivery time."""
        packet = Packet(
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            msg_class=msg_class,
            payload=payload,
            created_at=self.sim.now,
        )
        self.packets_sent += 1
        wire = packet.wire_bytes(self.link_bytes)
        self.wire_bytes_sent += wire
        self.bytes_by_class[msg_class] += wire
        if src == dst:
            self.sim.schedule(self.LOCAL_DELIVERY_CYCLES, self._deliver, packet, callback)
            return packet
        links = list(self.topology.route(src, dst, msg_class, packet.packet_id))
        if not links:
            self.sim.schedule(self.LOCAL_DELIVERY_CYCLES, self._deliver, packet, callback)
            return packet
        self._hop(packet, links, 0, callback)
        return packet

    def zero_load_latency(self, src: Hashable, dst: Hashable, payload_bytes: int,
                          msg_class: MessageClass = MessageClass.MEMORY_REQUEST) -> float:
        """Latency of a packet on an otherwise idle NOC (no queuing)."""
        if src == dst:
            return float(self.LOCAL_DELIVERY_CYCLES)
        links = self.topology.route(src, dst, msg_class)
        if not links:
            return float(self.LOCAL_DELIVERY_CYCLES)
        head = sum(link.hop_cycles for link in links)
        flits = Packet(src, dst, payload_bytes, msg_class).flits(self.link_bytes)
        return head + (flits - 1)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def aggregate_wire_gbps(self, frequency_ghz: float, elapsed_cycles: Optional[float] = None) -> float:
        """Total NOC bandwidth consumed (header + padding included), in GBps."""
        elapsed = self.sim.now if elapsed_cycles is None else elapsed_cycles
        if elapsed <= 0:
            return 0.0
        return self.wire_bytes_sent / elapsed * frequency_ghz

    def bisection_gbps(self, frequency_ghz: float, elapsed_cycles: Optional[float] = None) -> float:
        """Bandwidth crossing the mesh bisection, in GBps (0 for non-mesh topologies)."""
        elapsed = self.sim.now if elapsed_cycles is None else elapsed_cycles
        if elapsed <= 0:
            return 0.0
        return self.bisection_bytes / elapsed * frequency_ghz

    def link_utilization(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """Utilization of every link that has carried at least one packet."""
        return {key: channel.utilization() for key, channel in self._channels.items()}

    def max_link_utilization(self) -> float:
        """Utilization of the most loaded link (the NOC bottleneck)."""
        if not self._channels:
            return 0.0
        return max(channel.utilization() for channel in self._channels.values())

    def reset_stats(self) -> None:
        """Zero all counters (used at the end of the warm-up phase)."""
        self.packets_sent = 0
        self.packets_delivered = 0
        self.payload_bytes_delivered = 0
        self.wire_bytes_sent = 0
        self.bisection_bytes = 0
        self.bytes_by_class = {cls: 0 for cls in MessageClass}
        for channel in self._channels.values():
            channel.reset_stats()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _channel(self, link: Link) -> Channel:
        channel = self._channels.get(link.key)
        if channel is None:
            channel = Channel(self.sim, bytes_per_cycle=self.link_bytes,
                              name="link %r->%r" % (link.src, link.dst))
            self._channels[link.key] = channel
        return channel

    def _hop(self, packet: Packet, links: Sequence[Link], index: int,
             callback: Optional[DeliveryCallback]) -> None:
        if index >= len(links):
            self._deliver(packet, callback)
            return
        link = links[index]
        channel = self._channel(link)
        flit_cycles = packet.flits(self.link_bytes)
        grant = channel.acquire(flit_cycles)
        channel.bytes_transferred += packet.wire_bytes(self.link_bytes)
        if link.key in self._bisection_keys:
            self.bisection_bytes += packet.wire_bytes(self.link_bytes)
        arrival = grant + link.hop_cycles
        if index == len(links) - 1:
            arrival += flit_cycles - 1
        self.sim.schedule(arrival - self.sim.now, self._hop, packet, links, index + 1, callback)

    def _deliver(self, packet: Packet, callback: Optional[DeliveryCallback]) -> None:
        packet.delivered_at = self.sim.now
        self.packets_delivered += 1
        self.payload_bytes_delivered += packet.payload_bytes
        if callback is not None:
            callback(packet)

    def _compute_bisection_keys(self) -> set:
        bisection = getattr(self.topology, "bisection_links", None)
        if bisection is None:
            return set()
        return set(bisection())
